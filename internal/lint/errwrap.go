package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// ErrWrap requires fmt.Errorf calls that pass an error operand to wrap it
// with %w, so errors.Is/As keep working across layers — the repo's error
// taxonomy (smb.ErrUnknownHandle, kvstore.ErrNotFound, ...) is matched
// with errors.Is throughout the tests and the TCP client even
// reconstructs wrapped sentinels from the wire; a single %v in the chain
// silently severs it.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "fmt.Errorf with an error operand must wrap it with %w",
	Run:  runErrWrap,
}

var wrapVerbRE = regexp.MustCompile(`%(\[\d+\])?w`)

func runErrWrap(pass *Pass) error {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.FullName() != "fmt.Errorf" {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true // dynamic format string: out of scope
			}
			format := constant.StringVal(tv.Value)
			errArgs := 0
			for _, arg := range call.Args[1:] {
				if t := pass.TypesInfo.TypeOf(arg); t != nil && types.Implements(t, errType) {
					errArgs++
				}
			}
			if errArgs == 0 {
				return true
			}
			// Count %w verbs, ignoring literal %%.
			clean := strings.ReplaceAll(format, "%%", "")
			wraps := len(wrapVerbRE.FindAllString(clean, -1))
			if wraps < errArgs {
				pass.Reportf(call.Pos(),
					"fmt.Errorf passes %d error operand(s) but format %q has %d %%w verb(s); wrap with %%w to keep errors.Is working",
					errArgs, format, wraps)
			}
			return true
		})
	}
	return nil
}
