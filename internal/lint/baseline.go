package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// A Baseline is the committed set of accepted findings: CI fails only on
// findings not in it, so a new analyzer can land before every legacy
// finding is fixed, without ratcheting backwards. Entries are keyed on
// (analyzer, file, message) with an occurrence count — deliberately NOT on
// line numbers, so unrelated edits that shift a finding up or down do not
// break the build; adding a second identical finding in the same file
// still does, because the count is exceeded.
type Baseline struct {
	// Entries maps baselineKey strings to accepted occurrence counts.
	Entries map[string]int `json:"entries"`
}

// baselineKey renders a diagnostic's identity, line-number-free.
func baselineKey(d Diagnostic) string {
	return fmt.Sprintf("%s\x00%s\x00%s", d.Analyzer, d.Pos.Filename, d.Message)
}

// NewBaseline builds a baseline accepting exactly the given findings.
func NewBaseline(diags []Diagnostic) *Baseline {
	b := &Baseline{Entries: make(map[string]int)}
	for _, d := range diags {
		b.Entries[baselineKey(d)]++
	}
	return b
}

// Filter returns the findings not covered by the baseline, preserving
// order. Each accepted entry absorbs up to its count of matching findings.
func (b *Baseline) Filter(diags []Diagnostic) []Diagnostic {
	if b == nil || len(b.Entries) == 0 {
		return diags
	}
	budget := make(map[string]int, len(b.Entries))
	for k, n := range b.Entries {
		budget[k] = n
	}
	var out []Diagnostic
	for _, d := range diags {
		k := baselineKey(d)
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		out = append(out, d)
	}
	return out
}

// baselineFile is the on-disk shape: a sorted array, so diffs are stable
// and reviewable.
type baselineFile struct {
	// Comment documents the file's purpose for people reading the diff.
	Comment  string          `json:"comment"`
	Findings []baselineEntry `json:"findings"`
}

type baselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

const baselineComment = "Accepted shmlint findings; CI fails only on findings not listed here. Regenerate with: go run ./cmd/shmlint -write-baseline -baseline <path> ./..."

// Write renders the baseline deterministically.
func (b *Baseline) Write(w io.Writer) error {
	f := baselineFile{Comment: baselineComment, Findings: []baselineEntry{}}
	for k, n := range b.Entries {
		var e baselineEntry
		parts := splitBaselineKey(k)
		e.Analyzer, e.File, e.Message, e.Count = parts[0], parts[1], parts[2], n
		f.Findings = append(f.Findings, e)
	}
	sort.Slice(f.Findings, func(i, j int) bool {
		a, b := f.Findings[i], f.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

func splitBaselineKey(k string) [3]string {
	var out [3]string
	idx := 0
	start := 0
	for i := 0; i < len(k) && idx < 2; i++ {
		if k[i] == '\x00' {
			out[idx] = k[start:i]
			start = i + 1
			idx++
		}
	}
	out[2] = k[start:]
	return out
}

// ReadBaseline loads a baseline file. A missing file is an empty baseline,
// so a repo without one simply fails on every finding.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return &Baseline{Entries: map[string]int{}}, nil
		}
		return nil, err
	}
	var f baselineFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	b := &Baseline{Entries: make(map[string]int, len(f.Findings))}
	for _, e := range f.Findings {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		b.Entries[fmt.Sprintf("%s\x00%s\x00%s", e.Analyzer, e.File, e.Message)] += n
	}
	return b, nil
}
