package nn

import (
	"math"
	"testing"
	"testing/quick"

	"shmcaffe/internal/tensor"
)

func TestNewNetworkValidatesShapes(t *testing.T) {
	// Dense expecting 10 features after a conv producing 4*2*2=16: error.
	_, err := NewNetwork("bad", []int{1, 4, 4},
		NewConv2D("c", 1, 4, 3, 1, 1),
		NewMaxPool2D("p", 2, 2),
		NewFlatten("f"),
		NewDense("d", 10, 3),
	)
	if err == nil {
		t.Fatal("expected shape validation error")
	}
	if _, err := NewNetwork("empty", []int{4}); err == nil {
		t.Fatal("expected error for empty network")
	}
}

func TestFlatWeightsRoundTrip(t *testing.T) {
	net, err := MLP("rt", 4, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	net.InitWeights(tensor.NewRNG(1))
	w := net.FlatWeights(nil)
	if len(w) != net.NumParams() {
		t.Fatalf("flat len %d, want %d", len(w), net.NumParams())
	}
	// Perturb and restore.
	w2 := make([]float32, len(w))
	for i := range w2 {
		w2[i] = float32(i)
	}
	if err := net.SetFlatWeights(w2); err != nil {
		t.Fatal(err)
	}
	got := net.FlatWeights(nil)
	for i := range got {
		if got[i] != w2[i] {
			t.Fatalf("flat round trip [%d] = %v, want %v", i, got[i], w2[i])
		}
	}
	if err := net.SetFlatWeights(w2[:3]); err == nil {
		t.Fatal("expected error for short weight vector")
	}
}

func TestFlatGradsRoundTrip(t *testing.T) {
	net, err := MLP("g", 4, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(2)
	net.InitWeights(rng)
	x := tensor.New(2, 4)
	rng.FillNormal(x, 0, 1)
	net.ZeroGrads()
	if _, _, err := net.TrainStep(x, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	g := net.FlatGrads(nil)
	var nonzero int
	for _, v := range g {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("gradients all zero after TrainStep")
	}
	net.ZeroGrads()
	if err := net.SetFlatGrads(g); err != nil {
		t.Fatal(err)
	}
	g2 := net.FlatGrads(nil)
	for i := range g {
		if g[i] != g2[i] {
			t.Fatal("SetFlatGrads/FlatGrads round trip broken")
		}
	}
}

// TestSameSeedSameWeights: two replicas initialized with the same seed are
// bit-identical — the property the master relies on when seeding Wg.
func TestSameSeedSameWeights(t *testing.T) {
	a, _ := SmallCNN("a", 1, 8, 4, 0)
	b, _ := SmallCNN("b", 1, 8, 4, 0)
	a.InitWeights(tensor.NewRNG(77))
	b.InitWeights(tensor.NewRNG(77))
	wa := a.FlatWeights(nil)
	wb := b.FlatWeights(nil)
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("same-seed replicas differ")
		}
	}
}

// TestSGDLearnsXORishTask trains the MLP on a small linearly separable task
// and checks the loss decreases — the end-to-end sanity check of the solver.
func TestSGDLearnsSeparableTask(t *testing.T) {
	net, err := MLP("learn", 2, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(3)
	net.InitWeights(rng)
	cfg := DefaultSolverConfig()
	cfg.BaseLR = 0.05
	solver := NewSGDSolver(net, cfg)

	const batch = 16
	makeBatch := func() (*tensor.Tensor, []int) {
		x := tensor.New(batch, 2)
		labels := make([]int, batch)
		for i := 0; i < batch; i++ {
			cls := rng.Intn(2)
			labels[i] = cls
			cx := float64(2*cls - 1) // class centers at ±1
			x.Data()[2*i] = float32(cx + 0.3*rng.NormFloat64())
			x.Data()[2*i+1] = float32(-cx + 0.3*rng.NormFloat64())
		}
		return x, labels
	}

	var first, last float64
	for iter := 0; iter < 120; iter++ {
		x, labels := makeBatch()
		loss, err := solver.Step(x, labels)
		if err != nil {
			t.Fatal(err)
		}
		if iter == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first*0.5 {
		t.Fatalf("loss did not halve: first %v, last %v", first, last)
	}

	x, labels := makeBatch()
	_, acc, err := net.Evaluate(x, labels, 1)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Fatalf("accuracy %v < 0.8 after training", acc)
	}
}

func TestLearningRateStepPolicy(t *testing.T) {
	cfg := SolverConfig{BaseLR: 0.1, Gamma: 0.1, StepSize: 100}
	tests := []struct {
		iter int
		want float64
	}{
		{0, 0.1}, {99, 0.1}, {100, 0.01}, {250, 0.001},
	}
	for _, tt := range tests {
		if got := cfg.LearningRate(tt.iter); math.Abs(got-tt.want) > 1e-12 {
			t.Fatalf("LR(%d) = %v, want %v", tt.iter, got, tt.want)
		}
	}
	// StepSize 0 disables the policy.
	cfg.StepSize = 0
	if got := cfg.LearningRate(1000); got != 0.1 {
		t.Fatalf("LR with no policy = %v, want 0.1", got)
	}
}

func TestSolverConfigValidate(t *testing.T) {
	good := DefaultSolverConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.BaseLR = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero LR")
	}
	bad = good
	bad.Momentum = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for momentum 1")
	}
	bad = good
	bad.WeightDecay = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for negative decay")
	}
}

func TestProfiles(t *testing.T) {
	models := PaperModels()
	if len(models) != 4 {
		t.Fatalf("expected 4 paper models, got %d", len(models))
	}
	for _, m := range models {
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// The paper's key size relationships.
	if !(VGG16.ParamBytes > InceptionResNetV2.ParamBytes &&
		InceptionResNetV2.ParamBytes > ResNet50.ParamBytes &&
		ResNet50.ParamBytes > InceptionV1.ParamBytes) {
		t.Fatal("model size ordering violated")
	}
	p, err := ProfileByName("vgg16")
	if err != nil || p.Name != "vgg16" {
		t.Fatalf("ProfileByName: %v %v", p, err)
	}
	if _, err := ProfileByName("alexnet"); err == nil {
		t.Fatal("expected error for unknown profile")
	}
	if InceptionResNetV2.ParamMB() != 214 {
		t.Fatalf("InceptionResNetV2 = %v MB, want 214 (paper Sec. IV-E)", InceptionResNetV2.ParamMB())
	}
}

// Property: SetFlatWeights(FlatWeights()) is the identity for any weight
// assignment.
func TestFlatWeightsProperty(t *testing.T) {
	net, err := TinyConvNet("prop", 1, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		w := make([]float32, net.NumParams())
		for i := range w {
			w[i] = float32(rng.NormFloat64())
		}
		if err := net.SetFlatWeights(w); err != nil {
			return false
		}
		got := net.FlatWeights(nil)
		for i := range w {
			if got[i] != w[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
