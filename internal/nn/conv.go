package nn

import (
	"fmt"

	"shmcaffe/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW batches, lowered to GEMM via
// im2col exactly as Caffe does.
type Conv2D struct {
	name     string
	inC      int
	outC     int
	geom     tensor.ConvParams
	w, b     *Param
	lastIn   *tensor.Tensor
	lastCols []*tensor.Tensor // per-sample im2col buffers kept for backward
	inH, inW int
}

var _ Layer = (*Conv2D)(nil)
var _ initializer = (*Conv2D)(nil)

// NewConv2D returns a convolution layer with outC filters of size
// kernel×kernel over inC channels.
func NewConv2D(name string, inC, outC, kernel, stride, pad int) *Conv2D {
	geom := tensor.ConvParams{
		KernelH: kernel, KernelW: kernel,
		StrideH: stride, StrideW: stride,
		PadH: pad, PadW: pad,
	}
	return &Conv2D{
		name: name,
		inC:  inC,
		outC: outC,
		geom: geom,
		w:    newParam(name+".w", outC, inC*kernel*kernel),
		b:    newParam(name+".b", outC),
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// OutShape implements Layer.
func (c *Conv2D) OutShape(in []int) ([]int, error) {
	if len(in) != 3 || in[0] != c.inC {
		return nil, fmt.Errorf("nn: conv %q wants (%d,H,W), got %v: %w", c.name, c.inC, in, ErrBadShape)
	}
	if err := c.geom.Validate(in[1], in[2]); err != nil {
		return nil, err
	}
	oh, ow := c.geom.OutSize(in[1], in[2])
	return []int{c.outC, oh, ow}, nil
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

func (c *Conv2D) initWeights(rng *tensor.RNG) {
	fanIn := c.inC * c.geom.KernelH * c.geom.KernelW
	rng.XavierInit(c.w.W, fanIn)
	c.b.W.Zero()
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, error) {
	n, rest, err := batchOf(x)
	if err != nil {
		return nil, err
	}
	if len(rest) != 3 || rest[0] != c.inC {
		return nil, fmt.Errorf("nn: conv %q input %v: %w", c.name, x.Shape(), ErrBadShape)
	}
	h, w := rest[1], rest[2]
	if err := c.geom.Validate(h, w); err != nil {
		return nil, err
	}
	oh, ow := c.geom.OutSize(h, w)
	kvol := c.inC * c.geom.KernelH * c.geom.KernelW

	c.lastIn = x
	c.inH, c.inW = h, w
	c.lastCols = make([]*tensor.Tensor, n)

	out := tensor.New(n, c.outC, oh, ow)
	sampleIn := h * w * c.inC
	sampleOut := c.outC * oh * ow
	for i := 0; i < n; i++ {
		col := tensor.New(kvol, oh*ow)
		tensor.Im2Col(x.Data()[i*sampleIn:(i+1)*sampleIn], c.inC, h, w, c.geom, col.Data())
		c.lastCols[i] = col
		y, err := tensor.FromSlice(out.Data()[i*sampleOut:(i+1)*sampleOut], c.outC, oh*ow)
		if err != nil {
			return nil, err
		}
		if err := tensor.MatMul(c.w.W, col, y); err != nil {
			return nil, err
		}
		// Bias per output channel.
		for oc := 0; oc < c.outC; oc++ {
			bias := c.b.W.Data()[oc]
			row := y.Data()[oc*oh*ow : (oc+1)*oh*ow]
			for j := range row {
				row[j] += bias
			}
		}
	}
	return out, nil
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if c.lastIn == nil {
		return nil, fmt.Errorf("nn: conv %q backward before forward", c.name)
	}
	n := c.lastIn.Dim(0)
	h, w := c.inH, c.inW
	oh, ow := c.geom.OutSize(h, w)
	kvol := c.inC * c.geom.KernelH * c.geom.KernelW
	sampleIn := c.inC * h * w
	sampleOut := c.outC * oh * ow
	if grad.Len() != n*sampleOut {
		return nil, fmt.Errorf("nn: conv %q grad %v: %w", c.name, grad.Shape(), ErrBadShape)
	}

	dx := tensor.New(n, c.inC, h, w)
	dwTmp := tensor.New(c.outC, kvol)
	for i := 0; i < n; i++ {
		g, err := tensor.FromSlice(grad.Data()[i*sampleOut:(i+1)*sampleOut], c.outC, oh*ow)
		if err != nil {
			return nil, err
		}
		// dW += g · colᵀ
		if err := tensor.MatMulTransB(g, c.lastCols[i], dwTmp); err != nil {
			return nil, err
		}
		tensor.AxpySlice(1, dwTmp.Data(), c.w.Grad.Data())
		// db += row sums of g
		for oc := 0; oc < c.outC; oc++ {
			row := g.Data()[oc*oh*ow : (oc+1)*oh*ow]
			var s float32
			for _, v := range row {
				s += v
			}
			c.b.Grad.Data()[oc] += s
		}
		// dcol = Wᵀ g ; dX via col2im
		dcol := tensor.New(kvol, oh*ow)
		if err := tensor.MatMulTransA(c.w.W, g, dcol); err != nil {
			return nil, err
		}
		tensor.Col2Im(dcol.Data(), c.inC, h, w, c.geom, dx.Data()[i*sampleIn:(i+1)*sampleIn])
	}
	return dx, nil
}

// MaxPool2D is a max pooling layer over NCHW batches.
type MaxPool2D struct {
	name   string
	geom   tensor.ConvParams
	argmax []int // flat input index chosen for each output element
	inN    int
	inC    int
	inH    int
	inW    int
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D returns a pooling layer with a square window.
func NewMaxPool2D(name string, window, stride int) *MaxPool2D {
	return &MaxPool2D{
		name: name,
		geom: tensor.ConvParams{
			KernelH: window, KernelW: window,
			StrideH: stride, StrideW: stride,
		},
	}
}

// Name implements Layer.
func (m *MaxPool2D) Name() string { return m.name }

// OutShape implements Layer.
func (m *MaxPool2D) OutShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("nn: maxpool %q wants (C,H,W), got %v: %w", m.name, in, ErrBadShape)
	}
	if err := m.geom.Validate(in[1], in[2]); err != nil {
		return nil, err
	}
	oh, ow := m.geom.OutSize(in[1], in[2])
	return []int{in[0], oh, ow}, nil
}

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, error) {
	n, rest, err := batchOf(x)
	if err != nil {
		return nil, err
	}
	if len(rest) != 3 {
		return nil, fmt.Errorf("nn: maxpool %q input %v: %w", m.name, x.Shape(), ErrBadShape)
	}
	ch, h, w := rest[0], rest[1], rest[2]
	oh, ow := m.geom.OutSize(h, w)
	m.inN, m.inC, m.inH, m.inW = n, ch, h, w

	out := tensor.New(n, ch, oh, ow)
	m.argmax = make([]int, out.Len())
	outIdx := 0
	for i := 0; i < n; i++ {
		for cc := 0; cc < ch; cc++ {
			plane := x.Data()[(i*ch+cc)*h*w : (i*ch+cc+1)*h*w]
			planeBase := (i*ch + cc) * h * w
			for y := 0; y < oh; y++ {
				for xx := 0; xx < ow; xx++ {
					bestVal := float32(0)
					bestIdx := -1
					for ky := 0; ky < m.geom.KernelH; ky++ {
						iy := y*m.geom.StrideH + ky
						if iy >= h {
							continue
						}
						for kx := 0; kx < m.geom.KernelW; kx++ {
							ix := xx*m.geom.StrideW + kx
							if ix >= w {
								continue
							}
							v := plane[iy*w+ix]
							if bestIdx < 0 || v > bestVal {
								bestVal = v
								bestIdx = planeBase + iy*w + ix
							}
						}
					}
					out.Data()[outIdx] = bestVal
					m.argmax[outIdx] = bestIdx
					outIdx++
				}
			}
		}
	}
	return out, nil
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if m.argmax == nil {
		return nil, fmt.Errorf("nn: maxpool %q backward before forward", m.name)
	}
	if grad.Len() != len(m.argmax) {
		return nil, fmt.Errorf("nn: maxpool %q grad %v: %w", m.name, grad.Shape(), ErrBadShape)
	}
	dx := tensor.New(m.inN, m.inC, m.inH, m.inW)
	for i, src := range m.argmax {
		if src >= 0 {
			dx.Data()[src] += grad.Data()[i]
		}
	}
	return dx, nil
}

// AvgPool2D performs global average pooling over each channel plane,
// reducing (N,C,H,W) to (N,C,1,1). Inception-style heads end with it.
type AvgPool2D struct {
	name string
	inN  int
	inC  int
	inH  int
	inW  int
}

var _ Layer = (*AvgPool2D)(nil)

// NewGlobalAvgPool returns a global average pooling layer.
func NewGlobalAvgPool(name string) *AvgPool2D { return &AvgPool2D{name: name} }

// Name implements Layer.
func (a *AvgPool2D) Name() string { return a.name }

// OutShape implements Layer.
func (a *AvgPool2D) OutShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("nn: avgpool %q wants (C,H,W), got %v: %w", a.name, in, ErrBadShape)
	}
	return []int{in[0], 1, 1}, nil
}

// Params implements Layer.
func (a *AvgPool2D) Params() []*Param { return nil }

// Forward implements Layer.
func (a *AvgPool2D) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, error) {
	n, rest, err := batchOf(x)
	if err != nil {
		return nil, err
	}
	if len(rest) != 3 {
		return nil, fmt.Errorf("nn: avgpool %q input %v: %w", a.name, x.Shape(), ErrBadShape)
	}
	ch, h, w := rest[0], rest[1], rest[2]
	a.inN, a.inC, a.inH, a.inW = n, ch, h, w
	out := tensor.New(n, ch, 1, 1)
	inv := 1 / float32(h*w)
	for i := 0; i < n*ch; i++ {
		plane := x.Data()[i*h*w : (i+1)*h*w]
		var s float32
		for _, v := range plane {
			s += v
		}
		out.Data()[i] = s * inv
	}
	return out, nil
}

// Backward implements Layer.
func (a *AvgPool2D) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if a.inH == 0 {
		return nil, fmt.Errorf("nn: avgpool %q backward before forward", a.name)
	}
	if grad.Len() != a.inN*a.inC {
		return nil, fmt.Errorf("nn: avgpool %q grad %v: %w", a.name, grad.Shape(), ErrBadShape)
	}
	dx := tensor.New(a.inN, a.inC, a.inH, a.inW)
	inv := 1 / float32(a.inH*a.inW)
	for i := 0; i < a.inN*a.inC; i++ {
		g := grad.Data()[i] * inv
		plane := dx.Data()[i*a.inH*a.inW : (i+1)*a.inH*a.inW]
		for j := range plane {
			plane[j] = g
		}
	}
	return dx, nil
}
