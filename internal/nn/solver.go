package nn

import (
	"fmt"
	"math"

	"shmcaffe/internal/tensor"
)

// LRPolicy selects the learning-rate schedule, mirroring Caffe's lr_policy
// strings.
type LRPolicy string

// Caffe's learning-rate policies.
const (
	// LRFixed keeps base_lr constant.
	LRFixed LRPolicy = "fixed"
	// LRStep drops by gamma every StepSize iterations (the paper's
	// setting: gamma 0.1, step 4 epochs).
	LRStep LRPolicy = "step"
	// LRExp decays as base_lr · gamma^iter.
	LRExp LRPolicy = "exp"
	// LRInv decays as base_lr · (1 + gamma·iter)^(−power).
	LRInv LRPolicy = "inv"
	// LRPoly decays as base_lr · (1 − iter/max_iter)^power.
	LRPoly LRPolicy = "poly"
)

// SolverConfig mirrors the Caffe SGD solver hyper-parameters used in the
// paper's experiments (Sec. IV-C: base_lr 0.1, gamma 0.1, momentum 0.9,
// step size 4 epochs, max 15 epochs).
type SolverConfig struct {
	BaseLR       float64 // base learning rate (η)
	Momentum     float64
	Nesterov     bool // use Nesterov accelerated gradient
	WeightDecay  float64
	Policy       LRPolicy // defaults to LRStep when StepSize > 0, else LRFixed
	Gamma        float64  // multiplicative LR drop at each step
	Power        float64  // exponent for inv/poly policies
	StepSize     int      // iterations between LR drops; 0 disables the policy
	GradClip     float64  // elementwise gradient clamp; 0 disables
	MaxIteration int      // training length in iterations (poly policy)
}

// DefaultSolverConfig returns the paper's hyper-parameters scaled for the
// functional (laptop-size) models.
func DefaultSolverConfig() SolverConfig {
	return SolverConfig{
		BaseLR:      0.1,
		Momentum:    0.9,
		WeightDecay: 1e-4,
		Gamma:       0.1,
		StepSize:    0,
		GradClip:    5,
	}
}

// LearningRate evaluates the configured schedule at iteration iter.
func (c SolverConfig) LearningRate(iter int) float64 {
	policy := c.Policy
	if policy == "" {
		if c.StepSize > 0 {
			policy = LRStep
		} else {
			policy = LRFixed
		}
	}
	switch policy {
	case LRStep:
		lr := c.BaseLR
		if c.StepSize > 0 && c.Gamma > 0 {
			for k := iter / c.StepSize; k > 0; k-- {
				lr *= c.Gamma
			}
		}
		return lr
	case LRExp:
		return c.BaseLR * math.Pow(c.Gamma, float64(iter))
	case LRInv:
		return c.BaseLR * math.Pow(1+c.Gamma*float64(iter), -c.Power)
	case LRPoly:
		if c.MaxIteration <= 0 {
			return c.BaseLR
		}
		frac := 1 - float64(iter)/float64(c.MaxIteration)
		if frac < 0 {
			frac = 0
		}
		return c.BaseLR * math.Pow(frac, c.Power)
	default: // LRFixed
		return c.BaseLR
	}
}

// SGDSolver applies momentum SGD to a network, replicating Caffe's update:
//
//	v = momentum·v + lr·(grad + weight_decay·w)
//	w = w − v
//
// This is the "SGD optimizer of Caffe" that ShmCaffe reuses unchanged for
// the local update (Eq. 2 of the paper).
type SGDSolver struct {
	cfg      SolverConfig
	net      *Network
	velocity []*tensor.Tensor
	iter     int
}

// NewSGDSolver returns a solver bound to net.
func NewSGDSolver(net *Network, cfg SolverConfig) *SGDSolver {
	vel := make([]*tensor.Tensor, len(net.Params()))
	for i, p := range net.Params() {
		vel[i] = tensor.New(p.W.Shape()...)
	}
	return &SGDSolver{cfg: cfg, net: net, velocity: vel}
}

// Iter returns the number of Step calls so far.
func (s *SGDSolver) Iter() int { return s.iter }

// Config returns the solver configuration.
func (s *SGDSolver) Config() SolverConfig { return s.cfg }

// Step trains one minibatch: zero grads, forward/backward, apply the
// momentum update. It returns the minibatch loss.
func (s *SGDSolver) Step(x *tensor.Tensor, labels []int) (float64, error) {
	s.net.ZeroGrads()
	loss, _, err := s.net.TrainStep(x, labels)
	if err != nil {
		return 0, err
	}
	s.ApplyUpdate()
	return loss, nil
}

// ApplyUpdate applies the momentum update using the gradients currently
// stored in the network. Split out from Step so distributed solvers can
// aggregate gradients (allreduce) between backward and update. With
// Nesterov enabled it applies the NAG form w −= (1+μ)v_new − μ·v_old.
func (s *SGDSolver) ApplyUpdate() {
	lr := float32(s.cfg.LearningRate(s.iter))
	mom := float32(s.cfg.Momentum)
	wd := float32(s.cfg.WeightDecay)
	clip := float32(s.cfg.GradClip)
	for i, p := range s.net.Params() {
		if p.Frozen {
			continue
		}
		if clip > 0 {
			tensor.ClipInPlace(p.Grad, clip)
		}
		v := s.velocity[i].Data()
		w := p.W.Data()
		g := p.Grad.Data()
		if s.cfg.Nesterov {
			for j := range v {
				prev := v[j]
				v[j] = mom*v[j] + lr*(g[j]+wd*w[j])
				w[j] -= (1+mom)*v[j] - mom*prev
			}
		} else {
			for j := range v {
				v[j] = mom*v[j] + lr*(g[j]+wd*w[j])
				w[j] -= v[j]
			}
		}
	}
	s.iter++
}

// ResetMomentum clears the velocity buffers; the elastic-averaging update
// (Eq. 3/6) replaces weights outside the momentum path, after which stale
// velocity can destabilize training at high worker counts.
func (s *SGDSolver) ResetMomentum() {
	for _, v := range s.velocity {
		v.Zero()
	}
}

// Validate checks the configuration for obviously unusable values.
func (c SolverConfig) Validate() error {
	if c.BaseLR <= 0 {
		return fmt.Errorf("nn: solver base LR %v must be positive", c.BaseLR)
	}
	if c.Momentum < 0 || c.Momentum >= 1 {
		return fmt.Errorf("nn: solver momentum %v outside [0,1)", c.Momentum)
	}
	if c.WeightDecay < 0 {
		return fmt.Errorf("nn: solver weight decay %v negative", c.WeightDecay)
	}
	if c.StepSize < 0 {
		return fmt.Errorf("nn: solver step size %d negative", c.StepSize)
	}
	switch c.Policy {
	case "", LRFixed, LRStep, LRExp, LRInv, LRPoly:
	default:
		return fmt.Errorf("nn: unknown LR policy %q", c.Policy)
	}
	return nil
}
