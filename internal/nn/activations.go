package nn

import (
	"fmt"
	"math"

	"shmcaffe/internal/tensor"
)

// Sigmoid is the logistic activation.
type Sigmoid struct {
	name string
	out  *tensor.Tensor
}

var _ Layer = (*Sigmoid)(nil)

// NewSigmoid returns a sigmoid activation layer.
func NewSigmoid(name string) *Sigmoid { return &Sigmoid{name: name} }

// Name implements Layer.
func (s *Sigmoid) Name() string { return s.name }

// OutShape implements Layer.
func (s *Sigmoid) OutShape(in []int) ([]int, error) { return in, nil }

// Params implements Layer.
func (s *Sigmoid) Params() []*Param { return nil }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, error) {
	y := x.Clone()
	for i, v := range y.Data() {
		y.Data()[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	s.out = y
	return y, nil
}

// Backward implements Layer.
func (s *Sigmoid) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if s.out == nil {
		return nil, fmt.Errorf("nn: sigmoid %q backward before forward", s.name)
	}
	if grad.Len() != s.out.Len() {
		return nil, fmt.Errorf("nn: sigmoid %q grad size: %w", s.name, ErrBadShape)
	}
	dx := grad.Clone()
	for i, g := range dx.Data() {
		y := s.out.Data()[i]
		dx.Data()[i] = g * y * (1 - y)
	}
	return dx, nil
}

// Tanh is the hyperbolic tangent activation.
type Tanh struct {
	name string
	out  *tensor.Tensor
}

var _ Layer = (*Tanh)(nil)

// NewTanh returns a tanh activation layer.
func NewTanh(name string) *Tanh { return &Tanh{name: name} }

// Name implements Layer.
func (t *Tanh) Name() string { return t.name }

// OutShape implements Layer.
func (t *Tanh) OutShape(in []int) ([]int, error) { return in, nil }

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, error) {
	y := x.Clone()
	for i, v := range y.Data() {
		y.Data()[i] = float32(math.Tanh(float64(v)))
	}
	t.out = y
	return y, nil
}

// Backward implements Layer.
func (t *Tanh) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if t.out == nil {
		return nil, fmt.Errorf("nn: tanh %q backward before forward", t.name)
	}
	if grad.Len() != t.out.Len() {
		return nil, fmt.Errorf("nn: tanh %q grad size: %w", t.name, ErrBadShape)
	}
	dx := grad.Clone()
	for i, g := range dx.Data() {
		y := t.out.Data()[i]
		dx.Data()[i] = g * (1 - y*y)
	}
	return dx, nil
}
