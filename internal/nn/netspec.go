package nn

import (
	"fmt"
	"strconv"
	"strings"
)

// NetSpec is a small declarative model format playing the role of Caffe's
// prototxt: networks defined as text, instantiated by the library. One
// directive per line; `#` starts a comment. Layer parameters are
// key=value pairs; input channels / feature counts are inferred from the
// running shape, so specs stay minimal.
//
//	name: demo
//	input: 1x8x8
//	conv out=8 kernel=3 stride=1 pad=1
//	relu
//	lrn
//	maxpool window=2 stride=2
//	residual {
//	    conv out=8 kernel=3 pad=1
//	    batchnorm
//	    relu
//	    conv out=8 kernel=3 pad=1
//	    batchnorm
//	}
//	parallel {
//	    branch {
//	        conv out=4 kernel=1
//	        relu
//	    }
//	    branch {
//	        conv out=8 kernel=3 pad=1
//	        relu
//	    }
//	}
//	gap
//	flatten
//	dense out=4
//
// Supported layers: conv, dense, relu, sigmoid, tanh, maxpool, gap,
// flatten, dropout, lrn, batchnorm, residual {...}, parallel {...} with
// branch {...} children.

// ParseNetSpec builds a network from a spec.
func ParseNetSpec(src string) (*Network, error) {
	p := &specParser{lines: splitSpecLines(src)}
	name, inShape, err := p.header()
	if err != nil {
		return nil, err
	}
	layers, _, err := p.block(name, inShape, false)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		return nil, fmt.Errorf("netspec line %d: unexpected %q", p.lineNo(), p.lines[p.pos].text)
	}
	return NewNetwork(name, inShape, layers...)
}

type specLine struct {
	no   int
	text string
}

func splitSpecLines(src string) []specLine {
	var out []specLine
	for i, raw := range strings.Split(src, "\n") {
		line := raw
		if idx := strings.Index(line, "#"); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		out = append(out, specLine{no: i + 1, text: line})
	}
	return out
}

type specParser struct {
	lines []specLine
	pos   int
	seq   int
}

func (p *specParser) lineNo() int {
	if p.pos < len(p.lines) {
		return p.lines[p.pos].no
	}
	if len(p.lines) > 0 {
		return p.lines[len(p.lines)-1].no
	}
	return 0
}

func (p *specParser) next() (specLine, bool) {
	if p.pos >= len(p.lines) {
		return specLine{}, false
	}
	l := p.lines[p.pos]
	p.pos++
	return l, true
}

func (p *specParser) peek() (specLine, bool) {
	if p.pos >= len(p.lines) {
		return specLine{}, false
	}
	return p.lines[p.pos], true
}

// header parses `name:` and `input:` directives.
func (p *specParser) header() (string, []int, error) {
	name := "netspec"
	var inShape []int
	for {
		l, ok := p.peek()
		if !ok {
			break
		}
		switch {
		case strings.HasPrefix(l.text, "name:"):
			name = strings.TrimSpace(strings.TrimPrefix(l.text, "name:"))
			p.pos++
		case strings.HasPrefix(l.text, "input:"):
			spec := strings.TrimSpace(strings.TrimPrefix(l.text, "input:"))
			for _, part := range strings.Split(spec, "x") {
				d, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil || d < 1 {
					return "", nil, fmt.Errorf("netspec line %d: bad input shape %q", l.no, spec)
				}
				inShape = append(inShape, d)
			}
			p.pos++
		default:
			if inShape == nil {
				return "", nil, fmt.Errorf("netspec line %d: need input: before layers", l.no)
			}
			return name, inShape, nil
		}
	}
	if inShape == nil {
		return "", nil, fmt.Errorf("netspec: missing input: directive")
	}
	return name, inShape, nil
}

// block parses layer lines until EOF or a closing brace (when sub=true),
// threading the running per-sample shape through shape inference.
func (p *specParser) block(prefix string, shape []int, sub bool) ([]Layer, []int, error) {
	var layers []Layer
	for {
		l, ok := p.peek()
		if !ok {
			if sub {
				return nil, nil, fmt.Errorf("netspec: missing closing }")
			}
			return layers, shape, nil
		}
		if l.text == "}" {
			if !sub {
				return nil, nil, fmt.Errorf("netspec line %d: unmatched }", l.no)
			}
			p.pos++
			return layers, shape, nil
		}
		layer, outShape, err := p.layer(prefix, shape)
		if err != nil {
			return nil, nil, err
		}
		layers = append(layers, layer)
		shape = outShape
	}
}

// layer parses one layer directive (possibly a braced composite).
func (p *specParser) layer(prefix string, shape []int) (Layer, []int, error) {
	l, _ := p.next()
	fields := strings.Fields(l.text)
	kind := fields[0]
	args, err := parseArgs(fields[1:])
	if err != nil {
		return nil, nil, fmt.Errorf("netspec line %d: %w", l.no, err)
	}
	p.seq++
	name := args.str("name", fmt.Sprintf("%s/%s%d", prefix, strings.TrimSuffix(kind, "{"), p.seq))

	build := func(layer Layer) (Layer, []int, error) {
		out, err := layer.OutShape(shape)
		if err != nil {
			return nil, nil, fmt.Errorf("netspec line %d: %w", l.no, err)
		}
		return layer, out, nil
	}

	opensBlock := strings.HasSuffix(l.text, "{")
	switch strings.TrimSuffix(kind, "{") {
	case "conv":
		if len(shape) != 3 {
			return nil, nil, fmt.Errorf("netspec line %d: conv needs (C,H,W) input, have %v", l.no, shape)
		}
		out, err := args.positiveInt("out")
		if err != nil {
			return nil, nil, fmt.Errorf("netspec line %d: %w", l.no, err)
		}
		kernel := args.integer("kernel", 3)
		stride := args.integer("stride", 1)
		pad := args.integer("pad", 0)
		if kernel < 1 || stride < 1 || pad < 0 {
			return nil, nil, fmt.Errorf("netspec line %d: conv kernel=%d stride=%d pad=%d invalid",
				l.no, kernel, stride, pad)
		}
		return build(NewConv2D(name, shape[0], out, kernel, stride, pad))
	case "dense":
		out, err := args.positiveInt("out")
		if err != nil {
			return nil, nil, fmt.Errorf("netspec line %d: %w", l.no, err)
		}
		return build(NewDense(name, shapeVolume(shape), out))
	case "relu":
		return build(NewReLU(name))
	case "sigmoid":
		return build(NewSigmoid(name))
	case "tanh":
		return build(NewTanh(name))
	case "maxpool":
		window := args.integer("window", 2)
		stride := args.integer("stride", 2)
		if window < 1 || stride < 1 {
			return nil, nil, fmt.Errorf("netspec line %d: maxpool window=%d stride=%d invalid",
				l.no, window, stride)
		}
		return build(NewMaxPool2D(name, window, stride))
	case "gap":
		return build(NewGlobalAvgPool(name))
	case "flatten":
		return build(NewFlatten(name))
	case "dropout":
		p := args.float("p", 0.5)
		if p < 0 || p >= 1 {
			return nil, nil, fmt.Errorf("netspec line %d: dropout p=%v outside [0,1)", l.no, p)
		}
		return build(NewDropout(name, p, uint64(args.integer("seed", 1))))
	case "lrn":
		return build(NewLRN(name))
	case "batchnorm":
		if len(shape) != 3 {
			return nil, nil, fmt.Errorf("netspec line %d: batchnorm needs (C,H,W) input, have %v", l.no, shape)
		}
		return build(NewBatchNorm(name, shape[0]))
	case "residual":
		if !opensBlock {
			return nil, nil, fmt.Errorf("netspec line %d: residual needs {", l.no)
		}
		inner, _, err := p.block(name, shape, true)
		if err != nil {
			return nil, nil, err
		}
		return build(NewResidual(name, NewStack(name+"/f", inner...)))
	case "parallel":
		if !opensBlock {
			return nil, nil, fmt.Errorf("netspec line %d: parallel needs {", l.no)
		}
		branches, err := p.branches(name, shape)
		if err != nil {
			return nil, nil, err
		}
		return build(NewParallel(name, branches...))
	default:
		return nil, nil, fmt.Errorf("netspec line %d: unknown layer %q", l.no, kind)
	}
}

// branches parses `branch { ... }` children inside a parallel block.
func (p *specParser) branches(prefix string, shape []int) ([]Layer, error) {
	var out []Layer
	for {
		l, ok := p.peek()
		if !ok {
			return nil, fmt.Errorf("netspec: missing closing } in parallel")
		}
		if l.text == "}" {
			p.pos++
			if len(out) == 0 {
				return nil, fmt.Errorf("netspec line %d: parallel without branches", l.no)
			}
			return out, nil
		}
		if !strings.HasPrefix(l.text, "branch") || !strings.HasSuffix(l.text, "{") {
			return nil, fmt.Errorf("netspec line %d: expected branch { inside parallel, got %q", l.no, l.text)
		}
		p.pos++
		p.seq++
		name := fmt.Sprintf("%s/b%d", prefix, p.seq)
		inner, _, err := p.block(name, shape, true)
		if err != nil {
			return nil, err
		}
		out = append(out, NewStack(name, inner...))
	}
}

// specArgs holds one directive's key=value pairs.
type specArgs map[string]string

func parseArgs(fields []string) (specArgs, error) {
	args := make(specArgs)
	for _, f := range fields {
		if f == "{" {
			continue
		}
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return nil, fmt.Errorf("bad argument %q (want key=value)", f)
		}
		args[k] = v
	}
	return args, nil
}

func (a specArgs) str(key, def string) string {
	if v, ok := a[key]; ok {
		return v
	}
	return def
}

func (a specArgs) integer(key string, def int) int {
	if v, ok := a[key]; ok {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

func (a specArgs) positiveInt(key string) (int, error) {
	v, ok := a[key]
	if !ok {
		return 0, fmt.Errorf("missing required %s=", key)
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("bad %s=%q (want positive integer)", key, v)
	}
	return n, nil
}

func (a specArgs) float(key string, def float64) float64 {
	if v, ok := a[key]; ok {
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			return f
		}
	}
	return def
}
