package nn

import (
	"fmt"
	"math"

	"shmcaffe/internal/tensor"
)

// SoftmaxLoss couples a softmax with a cross-entropy loss, numerically
// stabilized, exactly like Caffe's SoftmaxWithLoss layer. It is the head of
// every classification network in this repository.
type SoftmaxLoss struct {
	probs  *tensor.Tensor
	labels []int
}

// Forward computes class probabilities and the mean cross-entropy loss for
// logits (N×C) against labels (len N). The probabilities are retained for
// Backward.
func (s *SoftmaxLoss) Forward(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor, error) {
	n, rest, err := batchOf(logits)
	if err != nil {
		return 0, nil, err
	}
	classes := shapeVolume(rest)
	if len(labels) != n {
		return 0, nil, fmt.Errorf("nn: softmax %d labels for batch %d: %w", len(labels), n, ErrBadShape)
	}
	flat, err := logits.Reshape(n, classes)
	if err != nil {
		return 0, nil, err
	}
	probs := tensor.New(n, classes)
	var loss float64
	for i := 0; i < n; i++ {
		row := flat.Data()[i*classes : (i+1)*classes]
		out := probs.Data()[i*classes : (i+1)*classes]
		maxv := row[0]
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			out[j] = float32(e)
			sum += e
		}
		invSum := float32(1 / sum)
		for j := range out {
			out[j] *= invSum
		}
		lbl := labels[i]
		if lbl < 0 || lbl >= classes {
			return 0, nil, fmt.Errorf("nn: softmax label %d out of range [0,%d)", lbl, classes)
		}
		p := float64(out[lbl])
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
	}
	s.probs = probs
	s.labels = labels
	return loss / float64(n), probs, nil
}

// Backward returns dL/dlogits = (probs - onehot)/N.
func (s *SoftmaxLoss) Backward() (*tensor.Tensor, error) {
	if s.probs == nil {
		return nil, fmt.Errorf("nn: softmax backward before forward")
	}
	n := s.probs.Dim(0)
	classes := s.probs.Dim(1)
	grad := s.probs.Clone()
	inv := float32(1.0 / float64(n))
	for i := 0; i < n; i++ {
		row := grad.Data()[i*classes : (i+1)*classes]
		row[s.labels[i]] -= 1
		for j := range row {
			row[j] *= inv
		}
	}
	return grad, nil
}

// TopKAccuracy returns the fraction of rows whose true label is within the
// k largest probabilities. The paper reports top-5 accuracy throughout.
func TopKAccuracy(probs *tensor.Tensor, labels []int, k int) (float64, error) {
	n, rest, err := batchOf(probs)
	if err != nil {
		return 0, err
	}
	classes := shapeVolume(rest)
	if len(labels) != n {
		return 0, fmt.Errorf("nn: accuracy %d labels for batch %d: %w", len(labels), n, ErrBadShape)
	}
	if k <= 0 || k > classes {
		return 0, fmt.Errorf("nn: top-%d accuracy with %d classes", k, classes)
	}
	flat, err := probs.Reshape(n, classes)
	if err != nil {
		return 0, err
	}
	hits := 0
	for i := 0; i < n; i++ {
		row := flat.Data()[i*classes : (i+1)*classes]
		target := row[labels[i]]
		// The label is in the top-k iff fewer than k entries exceed it
		// (ties resolved optimistically, matching Caffe's accuracy layer).
		larger := 0
		for _, v := range row {
			if v > target {
				larger++
			}
		}
		if larger < k {
			hits++
		}
	}
	return float64(hits) / float64(n), nil
}
