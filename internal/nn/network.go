package nn

import (
	"fmt"

	"shmcaffe/internal/tensor"
)

// Network is a sequential stack of layers with a softmax cross-entropy head.
// It exposes Caffe-style flat weight/gradient vectors: every distributed
// solver in this repository moves parameters as one contiguous float32
// vector, which is exactly what ShmCaffe stores in SMB segments.
type Network struct {
	name    string
	inShape []int // per-sample input shape
	layers  []Layer
	loss    SoftmaxLoss
	params  []*Param
	total   int // total parameter elements
}

// NewNetwork assembles a network for per-sample input shape inShape,
// validating layer-to-layer shape compatibility.
func NewNetwork(name string, inShape []int, layers ...Layer) (*Network, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("nn: network %q has no layers", name)
	}
	shape := append([]int(nil), inShape...)
	var params []*Param
	total := 0
	for _, l := range layers {
		out, err := l.OutShape(shape)
		if err != nil {
			return nil, fmt.Errorf("network %q layer %q: %w", name, l.Name(), err)
		}
		shape = out
		for _, p := range l.Params() {
			params = append(params, p)
			total += p.W.Len()
		}
	}
	if shapeVolume(shape) < 2 {
		return nil, fmt.Errorf("nn: network %q final shape %v is not a class distribution", name, shape)
	}
	return &Network{
		name:    name,
		inShape: append([]int(nil), inShape...),
		layers:  layers,
		params:  params,
		total:   total,
	}, nil
}

// Name returns the network name.
func (n *Network) Name() string { return n.name }

// InShape returns the per-sample input shape.
func (n *Network) InShape() []int { return append([]int(nil), n.inShape...) }

// NumParams returns the number of learnable scalar parameters.
func (n *Network) NumParams() int { return n.total }

// Params returns the parameter blobs in network order.
func (n *Network) Params() []*Param { return n.params }

// InitWeights seeds every parameter using the given RNG (Xavier for weights,
// zero for biases). Workers sharing a seed start from identical replicas.
func (n *Network) InitWeights(rng *tensor.RNG) {
	for _, l := range n.layers {
		if init, ok := l.(initializer); ok {
			init.initWeights(rng)
		}
	}
}

// Forward runs the network on batch x (batch-first) and returns the logits.
func (n *Network) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	cur := x
	for _, l := range n.layers {
		next, err := l.Forward(cur, train)
		if err != nil {
			return nil, fmt.Errorf("network %q forward %q: %w", n.name, l.Name(), err)
		}
		cur = next
	}
	return cur, nil
}

// TrainStep runs forward + loss + backward for one minibatch, accumulating
// parameter gradients (callers must ZeroGrads first). It returns the mean
// loss and the probability tensor.
func (n *Network) TrainStep(x *tensor.Tensor, labels []int) (float64, *tensor.Tensor, error) {
	logits, err := n.Forward(x, true)
	if err != nil {
		return 0, nil, err
	}
	loss, probs, err := n.loss.Forward(logits, labels)
	if err != nil {
		return 0, nil, err
	}
	grad, err := n.loss.Backward()
	if err != nil {
		return 0, nil, err
	}
	for i := len(n.layers) - 1; i >= 0; i-- {
		grad, err = n.layers[i].Backward(grad)
		if err != nil {
			return 0, nil, fmt.Errorf("network %q backward %q: %w", n.name, n.layers[i].Name(), err)
		}
	}
	return loss, probs, nil
}

// Evaluate computes mean loss and top-k accuracy on a batch without
// touching gradients.
func (n *Network) Evaluate(x *tensor.Tensor, labels []int, topK int) (loss, acc float64, err error) {
	logits, err := n.Forward(x, false)
	if err != nil {
		return 0, 0, err
	}
	var head SoftmaxLoss
	loss, probs, err := head.Forward(logits, labels)
	if err != nil {
		return 0, 0, err
	}
	acc, err = TopKAccuracy(probs, labels, topK)
	if err != nil {
		return 0, 0, err
	}
	return loss, acc, nil
}

// ZeroGrads clears all parameter gradients.
func (n *Network) ZeroGrads() {
	for _, p := range n.params {
		p.Grad.Zero()
	}
}

// FlatWeights copies all parameters into dst (len NumParams) in network
// order and returns dst; if dst is nil a new slice is allocated.
func (n *Network) FlatWeights(dst []float32) []float32 {
	if dst == nil {
		dst = make([]float32, n.total)
	}
	off := 0
	for _, p := range n.params {
		copy(dst[off:], p.W.Data())
		off += p.W.Len()
	}
	return dst
}

// SetFlatWeights overwrites all parameters from src (len >= NumParams).
func (n *Network) SetFlatWeights(src []float32) error {
	if len(src) < n.total {
		return fmt.Errorf("nn: network %q needs %d weights, got %d: %w", n.name, n.total, len(src), ErrBadShape)
	}
	off := 0
	for _, p := range n.params {
		copy(p.W.Data(), src[off:off+p.W.Len()])
		off += p.W.Len()
	}
	return nil
}

// FlatGrads copies all gradients into dst in network order (allocating when
// dst is nil) and returns dst.
func (n *Network) FlatGrads(dst []float32) []float32 {
	if dst == nil {
		dst = make([]float32, n.total)
	}
	off := 0
	for _, p := range n.params {
		copy(dst[off:], p.Grad.Data())
		off += p.Grad.Len()
	}
	return dst
}

// SetFlatGrads overwrites all gradients from src; used after collective
// gradient aggregation (allreduce) replaces local gradients.
func (n *Network) SetFlatGrads(src []float32) error {
	if len(src) < n.total {
		return fmt.Errorf("nn: network %q needs %d grads, got %d: %w", n.name, n.total, len(src), ErrBadShape)
	}
	off := 0
	for _, p := range n.params {
		copy(p.Grad.Data(), src[off:off+p.Grad.Len()])
		off += p.Grad.Len()
	}
	return nil
}
