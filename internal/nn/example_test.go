package nn_test

import (
	"fmt"

	"shmcaffe/internal/nn"
)

// Declarative model definition — the prototxt stand-in.
func ExampleParseNetSpec() {
	net, err := nn.ParseNetSpec(`
name: tiny
input: 1x8x8
conv out=4 kernel=3 pad=1
relu
maxpool window=2 stride=2
flatten
dense out=3
`)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(net.Name(), net.NumParams(), "parameters")
	// Output: tiny 235 parameters
}

// The paper's four evaluation models (Table IV).
func ExamplePaperModels() {
	for _, p := range nn.PaperModels() {
		fmt.Printf("%s: %.0f MB\n", p.Name, p.ParamMB())
	}
	// Output:
	// inception_v1: 53 MB
	// resnet_50: 102 MB
	// inception_resnet_v2: 214 MB
	// vgg16: 528 MB
}
