package nn

import (
	"bytes"
	"errors"
	"testing"

	"shmcaffe/internal/tensor"
)

// trainSteps drives n solver steps on deterministic data.
func trainSteps(t *testing.T, solver *SGDSolver, rng *tensor.RNG, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		x := tensor.New(4, 4)
		rng.FillNormal(x, 0, 1)
		labels := []int{0, 1, 0, 1}
		if _, err := solver.Step(x, labels); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSolverStateResumeIsBitExact: train 10 steps, snapshot, train 10
// more; separately restore the snapshot into a fresh solver and replay the
// same 10 steps — the weights must match bit for bit. This is the property
// that distinguishes a solverstate from a plain weight checkpoint.
func TestSolverStateResumeIsBitExact(t *testing.T) {
	build := func() (*Network, *SGDSolver) {
		net, err := MLP("ss", 4, 8, 2)
		if err != nil {
			t.Fatal(err)
		}
		net.InitWeights(tensor.NewRNG(1))
		cfg := DefaultSolverConfig()
		cfg.BaseLR = 0.05
		cfg.StepSize = 12 // make the LR schedule iteration-dependent
		cfg.Gamma = 0.5
		return net, NewSGDSolver(net, cfg)
	}

	// Reference: 20 uninterrupted steps.
	netA, solverA := build()
	rngA := tensor.NewRNG(7)
	trainSteps(t, solverA, rngA, 10)
	var snap bytes.Buffer
	if err := solverA.SaveState(&snap); err != nil {
		t.Fatal(err)
	}
	trainSteps(t, solverA, rngA, 10)
	want := netA.FlatWeights(nil)

	// Resumed: restore at step 10 and replay the same remaining data.
	netB, solverB := build()
	if err := solverB.RestoreState(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	if solverB.Iter() != 10 {
		t.Fatalf("restored iter %d", solverB.Iter())
	}
	// Recreate the data stream position: consume the first 10 batches.
	rngB := tensor.NewRNG(7)
	for i := 0; i < 10; i++ {
		x := tensor.New(4, 4)
		rngB.FillNormal(x, 0, 1)
	}
	trainSteps(t, solverB, rngB, 10)
	got := netB.FlatWeights(nil)

	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("weight %d differs after resume: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestWeightOnlyCheckpointIsNotEnough: restoring only the weights (cold
// momentum + reset iteration) diverges from the uninterrupted run —
// demonstrating why the solverstate exists.
func TestWeightOnlyCheckpointIsNotEnough(t *testing.T) {
	build := func() (*Network, *SGDSolver) {
		net, _ := MLP("wo", 4, 8, 2)
		net.InitWeights(tensor.NewRNG(1))
		cfg := DefaultSolverConfig()
		cfg.BaseLR = 0.05
		cfg.StepSize = 12
		cfg.Gamma = 0.5
		return net, NewSGDSolver(net, cfg)
	}
	netA, solverA := build()
	rngA := tensor.NewRNG(7)
	trainSteps(t, solverA, rngA, 10)
	var weightsOnly bytes.Buffer
	if err := SaveCheckpoint(&weightsOnly, netA); err != nil {
		t.Fatal(err)
	}
	trainSteps(t, solverA, rngA, 10)
	want := netA.FlatWeights(nil)

	netB, solverB := build()
	if _, err := LoadCheckpoint(bytes.NewReader(weightsOnly.Bytes()), netB); err != nil {
		t.Fatal(err)
	}
	rngB := tensor.NewRNG(7)
	for i := 0; i < 10; i++ {
		x := tensor.New(4, 4)
		rngB.FillNormal(x, 0, 1)
	}
	trainSteps(t, solverB, rngB, 10)
	got := netB.FlatWeights(nil)

	same := true
	for i := range want {
		if want[i] != got[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("weight-only restore unexpectedly matched the full-state run")
	}
}

func TestSolverStateErrors(t *testing.T) {
	net, _ := MLP("e", 4, 8, 2)
	solver := NewSGDSolver(net, DefaultSolverConfig())
	var snap bytes.Buffer
	if err := solver.SaveState(&snap); err != nil {
		t.Fatal(err)
	}
	other, _ := MLP("e2", 8, 8, 2) // different architecture
	otherSolver := NewSGDSolver(other, DefaultSolverConfig())
	if err := otherSolver.RestoreState(bytes.NewReader(snap.Bytes())); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("want ErrBadCheckpoint, got %v", err)
	}
	if err := solver.RestoreState(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("expected error for garbage")
	}
}
