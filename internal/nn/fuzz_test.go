package nn

import (
	"bytes"
	"testing"
)

// FuzzParseNetSpec: arbitrary spec text must parse or error, never panic.
func FuzzParseNetSpec(f *testing.F) {
	f.Add("input: 4\ndense out=2")
	f.Add("name: x\ninput: 1x8x8\nconv out=4 kernel=3 pad=1\nrelu\ngap\nflatten\ndense out=2")
	f.Add("input: 1x4x4\nresidual {\nconv out=1 kernel=3 pad=1\n}")
	f.Add("parallel { branch {")
	f.Add("input: 0x0")
	f.Add("}")
	f.Fuzz(func(t *testing.T, src string) {
		net, err := ParseNetSpec(src)
		if err != nil {
			return
		}
		// A parseable spec must yield a usable network.
		if net.NumParams() < 0 {
			t.Fatal("negative param count")
		}
	})
}

// FuzzLoadCheckpoint: arbitrary snapshot bytes must be rejected cleanly.
func FuzzLoadCheckpoint(f *testing.F) {
	net, err := MLP("fuzz", 4, 4, 2)
	if err != nil {
		f.Fatal(err)
	}
	var good bytes.Buffer
	if err := SaveCheckpoint(&good, net); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte("SHMCAFF1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		target, err := MLP("target", 4, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = LoadCheckpoint(bytes.NewReader(data), target)
	})
}
