package nn

import (
	"strings"
	"testing"

	"shmcaffe/internal/tensor"
)

const demoSpec = `
# A miniature with every directive.
name: demo
input: 1x8x8
conv out=8 kernel=3 stride=1 pad=1
relu
lrn
maxpool window=2 stride=2
residual {
    conv out=8 kernel=3 pad=1
    batchnorm
    relu
    conv out=8 kernel=3 pad=1
    batchnorm
}
parallel {
    branch {
        conv out=4 kernel=1
        relu
    }
    branch {
        conv out=8 kernel=3 pad=1
        relu
    }
}
gap
flatten
dense out=16
tanh
dropout p=0.2
dense out=4
`

func TestParseNetSpecFull(t *testing.T) {
	net, err := ParseNetSpec(demoSpec)
	if err != nil {
		t.Fatal(err)
	}
	if net.Name() != "demo" {
		t.Fatalf("name %q", net.Name())
	}
	in := net.InShape()
	if len(in) != 3 || in[0] != 1 || in[1] != 8 {
		t.Fatalf("input shape %v", in)
	}
	// The net must train.
	rng := tensor.NewRNG(1)
	net.InitWeights(rng)
	x := tensor.New(2, 1, 8, 8)
	rng.FillNormal(x, 0, 1)
	net.ZeroGrads()
	loss, _, err := net.TrainStep(x, []int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 {
		t.Fatalf("loss %v", loss)
	}
}

func TestParseNetSpecMLP(t *testing.T) {
	net, err := ParseNetSpec(`
input: 16
dense out=8
sigmoid
dense out=3
`)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumParams() != 16*8+8+8*3+3 {
		t.Fatalf("param count %d", net.NumParams())
	}
}

func TestParseNetSpecCustomNames(t *testing.T) {
	net, err := ParseNetSpec(`
input: 4
dense name=mylayer out=2
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := net.Params()[0].Name; !strings.HasPrefix(got, "mylayer") {
		t.Fatalf("param name %q", got)
	}
}

func TestParseNetSpecErrors(t *testing.T) {
	cases := map[string]string{
		"no input":        "dense out=2",
		"bad shape":       "input: 3xzebra\ndense out=2",
		"unknown layer":   "input: 4\nrnn out=2",
		"missing out":     "input: 4\ndense",
		"bad arg":         "input: 4\ndense out",
		"unmatched close": "input: 4\ndense out=2\n}",
		"unclosed block":  "input: 1x4x4\nresidual {\nconv out=1 kernel=3 pad=1",
		"conv on flat":    "input: 4\nconv out=2",
		"bn on flat":      "input: 4\nbatchnorm",
		"residual brace":  "input: 1x4x4\nresidual\nconv out=1",
		"empty parallel":  "input: 1x4x4\nparallel {\n}",
		"junk in par":     "input: 1x4x4\nparallel {\ndense out=2\n}",
		"shape mismatch":  "input: 1x4x4\nresidual {\nconv out=3 kernel=3 pad=1\n}",
		"zero out":        "input: 1x4x4\nconv out=0 kernel=3",
		"zero kernel":     "input: 1x4x4\nconv out=2 kernel=0",
		"bad dropout":     "input: 4\ndropout p=1.5",
		"zero pool":       "input: 1x4x4\nmaxpool window=0",
	}
	for label, spec := range cases {
		if _, err := ParseNetSpec(spec); err == nil {
			t.Fatalf("%s: expected error for %q", label, spec)
		}
	}
}

// TestNetSpecMatchesHandBuilt: the spec-built network and the hand-built
// equivalent have identical parameter structure, so checkpoints are
// interchangeable.
func TestNetSpecMatchesHandBuilt(t *testing.T) {
	spec, err := ParseNetSpec(`
name: twin
input: 1x8x8
conv name=twin/conv1 out=8 kernel=3 stride=1 pad=1
relu
maxpool window=2 stride=2
conv name=twin/conv2 out=16 kernel=3 stride=1 pad=1
relu
maxpool window=2 stride=2
flatten
dense name=twin/fc1 out=64
relu
dense name=twin/fc2 out=4
`)
	if err != nil {
		t.Fatal(err)
	}
	hand, err := SmallCNN("twin", 1, 8, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if spec.NumParams() != hand.NumParams() {
		t.Fatalf("spec %d params, hand-built %d", spec.NumParams(), hand.NumParams())
	}
	// Weight transfer works across the two construction paths.
	hand.InitWeights(tensor.NewRNG(2))
	if err := spec.SetFlatWeights(hand.FlatWeights(nil)); err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(3)
	x := tensor.New(2, 1, 8, 8)
	rng.FillNormal(x, 0, 1)
	ya, err := hand.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	yb, err := spec.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ya.Data() {
		if ya.Data()[i] != yb.Data()[i] {
			t.Fatalf("outputs differ at %d", i)
		}
	}
}
