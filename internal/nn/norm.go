package nn

import (
	"fmt"
	"math"

	"shmcaffe/internal/tensor"
)

// BatchNorm normalizes each channel over the batch and spatial dimensions,
// then applies a learned scale and shift — the normalization layer
// ResNet-50 and Inception-ResNet-v2 depend on. At evaluation time it uses
// running statistics accumulated with the given momentum, like Caffe's
// BatchNorm+Scale pair.
type BatchNorm struct {
	name     string
	channels int
	eps      float32
	momentum float32

	gamma, beta *Param
	// meanP/varP hold the running statistics as frozen parameters so they
	// travel inside the flat weight vector with the learnable weights.
	meanP, varP *Param

	// forward caches for backward
	xhat   *tensor.Tensor
	std    []float32 // per-channel 1/sqrt(var+eps)
	counts int       // elements per channel in the batch
	inN    int
	inH    int
	inW    int
}

var _ Layer = (*BatchNorm)(nil)
var _ initializer = (*BatchNorm)(nil)

// NewBatchNorm returns a batch normalization layer over `channels` feature
// maps of NCHW input.
func NewBatchNorm(name string, channels int) *BatchNorm {
	meanP := newParam(name+".mean", channels)
	meanP.Frozen = true
	varP := newParam(name+".var", channels)
	varP.Frozen = true
	return &BatchNorm{
		name:     name,
		channels: channels,
		eps:      1e-5,
		momentum: 0.9,
		gamma:    newParam(name+".gamma", channels),
		beta:     newParam(name+".beta", channels),
		meanP:    meanP,
		varP:     varP,
	}
}

// Name implements Layer.
func (b *BatchNorm) Name() string { return b.name }

// OutShape implements Layer.
func (b *BatchNorm) OutShape(in []int) ([]int, error) {
	if len(in) != 3 || in[0] != b.channels {
		return nil, fmt.Errorf("nn: batchnorm %q wants (%d,H,W), got %v: %w",
			b.name, b.channels, in, ErrBadShape)
	}
	return in, nil
}

// Params implements Layer. The running statistics ride along as frozen
// parameters.
func (b *BatchNorm) Params() []*Param {
	return []*Param{b.gamma, b.beta, b.meanP, b.varP}
}

func (b *BatchNorm) initWeights(_ *tensor.RNG) {
	b.gamma.W.Fill(1)
	b.beta.W.Zero()
	b.meanP.W.Zero()
	b.varP.W.Fill(1)
}

// Forward implements Layer.
func (b *BatchNorm) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	n, rest, err := batchOf(x)
	if err != nil {
		return nil, err
	}
	if len(rest) != 3 || rest[0] != b.channels {
		return nil, fmt.Errorf("nn: batchnorm %q input %v: %w", b.name, x.Shape(), ErrBadShape)
	}
	h, w := rest[1], rest[2]
	b.inN, b.inH, b.inW = n, h, w
	plane := h * w
	count := n * plane

	y := tensor.New(n, b.channels, h, w)
	if train {
		b.xhat = tensor.New(n, b.channels, h, w)
		b.std = make([]float32, b.channels)
		b.counts = count
	}
	for c := 0; c < b.channels; c++ {
		var mean, variance float32
		if train {
			var sum float64
			for i := 0; i < n; i++ {
				base := (i*b.channels + c) * plane
				for j := 0; j < plane; j++ {
					sum += float64(x.Data()[base+j])
				}
			}
			mean = float32(sum / float64(count))
			var sq float64
			for i := 0; i < n; i++ {
				base := (i*b.channels + c) * plane
				for j := 0; j < plane; j++ {
					d := float64(x.Data()[base+j] - mean)
					sq += d * d
				}
			}
			variance = float32(sq / float64(count))
			rm := b.meanP.W.Data()
			rv := b.varP.W.Data()
			rm[c] = b.momentum*rm[c] + (1-b.momentum)*mean
			rv[c] = b.momentum*rv[c] + (1-b.momentum)*variance
		} else {
			mean = b.meanP.W.Data()[c]
			variance = b.varP.W.Data()[c]
		}
		inv := float32(1 / math.Sqrt(float64(variance)+float64(b.eps)))
		g := b.gamma.W.Data()[c]
		bt := b.beta.W.Data()[c]
		for i := 0; i < n; i++ {
			base := (i*b.channels + c) * plane
			for j := 0; j < plane; j++ {
				xh := (x.Data()[base+j] - mean) * inv
				if train {
					b.xhat.Data()[base+j] = xh
				}
				y.Data()[base+j] = g*xh + bt
			}
		}
		if train {
			b.std[c] = inv
		}
	}
	return y, nil
}

// Backward implements Layer (training-mode statistics).
func (b *BatchNorm) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if b.xhat == nil {
		return nil, fmt.Errorf("nn: batchnorm %q backward before training forward", b.name)
	}
	if grad.Len() != b.xhat.Len() {
		return nil, fmt.Errorf("nn: batchnorm %q grad size: %w", b.name, ErrBadShape)
	}
	n, h, w := b.inN, b.inH, b.inW
	plane := h * w
	m := float32(b.counts)
	dx := tensor.New(n, b.channels, h, w)
	for c := 0; c < b.channels; c++ {
		// Accumulate dgamma, dbeta and the two correction sums.
		var dg, db, sumDxhat, sumDxhatXhat float64
		for i := 0; i < n; i++ {
			base := (i*b.channels + c) * plane
			for j := 0; j < plane; j++ {
				g := float64(grad.Data()[base+j])
				xh := float64(b.xhat.Data()[base+j])
				dg += g * xh
				db += g
			}
		}
		b.gamma.Grad.Data()[c] += float32(dg)
		b.beta.Grad.Data()[c] += float32(db)

		gamma := b.gamma.W.Data()[c]
		inv := b.std[c]
		// dxhat = gamma * dy; standard batchnorm backward:
		// dx = (1/m)·inv·(m·dxhat − Σdxhat − xhat·Σ(dxhat·xhat))
		for i := 0; i < n; i++ {
			base := (i*b.channels + c) * plane
			for j := 0; j < plane; j++ {
				dxh := float64(gamma * grad.Data()[base+j])
				sumDxhat += dxh
				sumDxhatXhat += dxh * float64(b.xhat.Data()[base+j])
			}
		}
		for i := 0; i < n; i++ {
			base := (i*b.channels + c) * plane
			for j := 0; j < plane; j++ {
				dxh := float64(gamma * grad.Data()[base+j])
				xh := float64(b.xhat.Data()[base+j])
				dx.Data()[base+j] = float32(float64(inv) / float64(m) *
					(float64(m)*dxh - sumDxhat - xh*sumDxhatXhat))
			}
		}
	}
	return dx, nil
}

// LRN is local response normalization across channels — the normalization
// GoogLeNet (Inception-v1) uses:
//
//	y = x / (k + α/size · Σ x²)^β
//
// summed over `size` adjacent channels.
type LRN struct {
	name  string
	size  int
	alpha float32
	beta  float32
	k     float32

	lastIn *tensor.Tensor
	scale  *tensor.Tensor // (k + α/size·Σx²) per element
	inN    int
	inC    int
	inH    int
	inW    int
}

var _ Layer = (*LRN)(nil)

// NewLRN returns an LRN layer with Caffe's defaults (size 5, α 1e-4, β 0.75).
func NewLRN(name string) *LRN {
	return &LRN{name: name, size: 5, alpha: 1e-4, beta: 0.75, k: 1}
}

// Name implements Layer.
func (l *LRN) Name() string { return l.name }

// OutShape implements Layer.
func (l *LRN) OutShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("nn: lrn %q wants (C,H,W), got %v: %w", l.name, in, ErrBadShape)
	}
	return in, nil
}

// Params implements Layer.
func (l *LRN) Params() []*Param { return nil }

// Forward implements Layer.
func (l *LRN) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, error) {
	n, rest, err := batchOf(x)
	if err != nil {
		return nil, err
	}
	if len(rest) != 3 {
		return nil, fmt.Errorf("nn: lrn %q input %v: %w", l.name, x.Shape(), ErrBadShape)
	}
	c, h, w := rest[0], rest[1], rest[2]
	l.inN, l.inC, l.inH, l.inW = n, c, h, w
	plane := h * w
	half := l.size / 2

	l.lastIn = x
	l.scale = tensor.New(n, c, h, w)
	y := tensor.New(n, c, h, w)
	coef := l.alpha / float32(l.size)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * plane
			lo := ch - half
			if lo < 0 {
				lo = 0
			}
			hi := ch + half
			if hi >= c {
				hi = c - 1
			}
			for j := 0; j < plane; j++ {
				var sq float32
				for cc := lo; cc <= hi; cc++ {
					v := x.Data()[(i*c+cc)*plane+j]
					sq += v * v
				}
				s := l.k + coef*sq
				l.scale.Data()[base+j] = s
				y.Data()[base+j] = x.Data()[base+j] * float32(math.Pow(float64(s), -float64(l.beta)))
			}
		}
	}
	return y, nil
}

// Backward implements Layer.
func (l *LRN) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if l.lastIn == nil {
		return nil, fmt.Errorf("nn: lrn %q backward before forward", l.name)
	}
	if grad.Len() != l.lastIn.Len() {
		return nil, fmt.Errorf("nn: lrn %q grad size: %w", l.name, ErrBadShape)
	}
	n, c, h, w := l.inN, l.inC, l.inH, l.inW
	plane := h * w
	half := l.size / 2
	coef := l.alpha / float32(l.size)
	dx := tensor.New(n, c, h, w)
	// dy_q/dx_p = δ(p==q)·s_q^(−β) − 2β·coef·x_p·x_q·s_q^(−β−1) for p in
	// q's window; accumulate over all q whose window contains p.
	for i := 0; i < n; i++ {
		for p := 0; p < c; p++ {
			lo := p - half
			if lo < 0 {
				lo = 0
			}
			hi := p + half
			if hi >= c {
				hi = c - 1
			}
			for j := 0; j < plane; j++ {
				xp := l.lastIn.Data()[(i*c+p)*plane+j]
				var acc float64
				for q := lo; q <= hi; q++ {
					idxQ := (i*c+q)*plane + j
					s := float64(l.scale.Data()[idxQ])
					g := float64(grad.Data()[idxQ])
					xq := float64(l.lastIn.Data()[idxQ])
					term := -2 * float64(l.beta) * float64(coef) * float64(xp) * xq *
						math.Pow(s, -float64(l.beta)-1)
					if q == p {
						term += math.Pow(s, -float64(l.beta))
					}
					acc += g * term
				}
				dx.Data()[(i*c+p)*plane+j] = float32(acc)
			}
		}
	}
	return dx, nil
}
