package nn

import (
	"math"
	"testing"

	"shmcaffe/internal/tensor"
)

// numericalGrad estimates dLoss/dparam[i] by central differences.
func numericalGrad(t *testing.T, net *Network, x *tensor.Tensor, labels []int, p *Param, i int) float64 {
	t.Helper()
	const eps = 1e-2
	orig := p.W.Data()[i]

	lossAt := func(v float32) float64 {
		p.W.Data()[i] = v
		logits, err := net.Forward(x, false)
		if err != nil {
			t.Fatal(err)
		}
		var head SoftmaxLoss
		loss, _, err := head.Forward(logits, labels)
		if err != nil {
			t.Fatal(err)
		}
		return loss
	}
	plus := lossAt(orig + eps)
	minus := lossAt(orig - eps)
	p.W.Data()[i] = orig
	return (plus - minus) / (2 * eps)
}

// TestGradientCheck verifies the analytic backward pass of a conv+dense
// network against central differences. This is the load-bearing correctness
// test for the entire computation substrate. The network is kink-free
// (no ReLU/max-pool) so central differences are exact up to float32 noise;
// the pooling/activation gradients have their own exact-value tests in
// layers_test.go.
func TestGradientCheck(t *testing.T) {
	net, err := NewNetwork("gc", []int{1, 4, 4},
		NewConv2D("gc/conv", 1, 4, 3, 1, 1),
		NewGlobalAvgPool("gc/gap"),
		NewFlatten("gc/flat"),
		NewDense("gc/fc", 4, 3),
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(5)
	net.InitWeights(rng)

	x := tensor.New(2, 1, 4, 4)
	rng.FillNormal(x, 0, 1)
	labels := []int{0, 2}

	net.ZeroGrads()
	if _, _, err := net.TrainStep(x, labels); err != nil {
		t.Fatal(err)
	}

	for _, p := range net.Params() {
		// Sample a handful of coordinates per blob.
		n := p.W.Len()
		step := n / 5
		if step == 0 {
			step = 1
		}
		for i := 0; i < n; i += step {
			analytic := float64(p.Grad.Data()[i])
			numeric := numericalGrad(t, net, x, labels, p, i)
			diff := math.Abs(analytic - numeric)
			scale := math.Abs(analytic) + math.Abs(numeric) + 1e-4
			if diff/scale > 0.05 {
				t.Fatalf("param %s[%d]: analytic %v vs numeric %v", p.Name, i, analytic, numeric)
			}
		}
	}
}

func TestGradientCheckMLP(t *testing.T) {
	net, err := MLP("gc-mlp", 6, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(9)
	net.InitWeights(rng)

	x := tensor.New(3, 6)
	rng.FillNormal(x, 0, 1)
	labels := []int{2, 0, 1}

	net.ZeroGrads()
	if _, _, err := net.TrainStep(x, labels); err != nil {
		t.Fatal(err)
	}
	for _, p := range net.Params() {
		for i := 0; i < p.W.Len(); i += 7 {
			analytic := float64(p.Grad.Data()[i])
			numeric := numericalGrad(t, net, x, labels, p, i)
			diff := math.Abs(analytic - numeric)
			scale := math.Abs(analytic) + math.Abs(numeric) + 1e-4
			if diff/scale > 0.05 {
				t.Fatalf("param %s[%d]: analytic %v vs numeric %v", p.Name, i, analytic, numeric)
			}
		}
	}
}
