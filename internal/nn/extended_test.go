package nn

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"shmcaffe/internal/tensor"
)

func TestSigmoidTanhValues(t *testing.T) {
	s := NewSigmoid("s")
	x := tensor.MustFromSlice([]float32{0, 100, -100}, 1, 3)
	y, err := s.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(y.Data()[0])-0.5) > 1e-6 || y.Data()[1] < 0.999 || y.Data()[2] > 0.001 {
		t.Fatalf("sigmoid %v", y.Data())
	}
	th := NewTanh("t")
	y2, err := th.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	if y2.Data()[0] != 0 || y2.Data()[1] < 0.999 || y2.Data()[2] > -0.999 {
		t.Fatalf("tanh %v", y2.Data())
	}
}

// TestSmoothActivationGradients checks sigmoid/tanh backward against
// central differences (both are smooth, so the check is tight).
func TestSmoothActivationGradients(t *testing.T) {
	rng := tensor.NewRNG(1)
	for _, mk := range []func() Layer{
		func() Layer { return NewSigmoid("s") },
		func() Layer { return NewTanh("t") },
	} {
		layer := mk()
		x := tensor.New(1, 5)
		rng.FillNormal(x, 0, 1)
		y, err := layer.Forward(x, true)
		if err != nil {
			t.Fatal(err)
		}
		g := tensor.New(1, 5)
		g.Fill(1)
		dx, err := layer.Backward(g)
		if err != nil {
			t.Fatal(err)
		}
		_ = y
		const eps = 1e-3
		for i := 0; i < 5; i++ {
			orig := x.Data()[i]
			x.Data()[i] = orig + eps
			yp, _ := mk().Forward(x, true)
			x.Data()[i] = orig - eps
			ym, _ := mk().Forward(x, true)
			x.Data()[i] = orig
			numeric := (yp.Data()[i] - ym.Data()[i]) / (2 * eps)
			if math.Abs(float64(numeric-dx.Data()[i])) > 1e-3 {
				t.Fatalf("%s grad[%d]: analytic %v vs numeric %v",
					layer.Name(), i, dx.Data()[i], numeric)
			}
		}
	}
}

func TestBatchNormTrainStats(t *testing.T) {
	bn := NewBatchNorm("bn", 2)
	bn.initWeights(nil)
	// Channel 0: values {1,3}; channel 1: values {10,20}.
	x := tensor.MustFromSlice([]float32{1, 10, 3, 20}, 2, 2, 1, 1)
	y, err := bn.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	// Normalized channel 0: mean 2, var 1 → {-1, 1} (up to eps).
	if math.Abs(float64(y.At(0, 0, 0, 0))+1) > 1e-2 || math.Abs(float64(y.At(1, 0, 0, 0))-1) > 1e-2 {
		t.Fatalf("bn channel 0: %v %v", y.At(0, 0, 0, 0), y.At(1, 0, 0, 0))
	}
	// Eval mode uses running stats without touching them.
	before := bn.meanP.W.Data()[0]
	if _, err := bn.Forward(x, false); err != nil {
		t.Fatal(err)
	}
	if bn.meanP.W.Data()[0] != before {
		t.Fatal("eval forward mutated running stats")
	}
	// Running stats are carried as frozen parameters in the flat vector.
	frozen := 0
	for _, p := range bn.Params() {
		if p.Frozen {
			frozen++
		}
	}
	if frozen != 2 {
		t.Fatalf("batchnorm exposes %d frozen params, want 2", frozen)
	}
}

func TestBatchNormShapeErrors(t *testing.T) {
	bn := NewBatchNorm("bn", 3)
	if _, err := bn.OutShape([]int{2, 4, 4}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("want ErrBadShape, got %v", err)
	}
	if _, err := bn.Backward(tensor.New(1, 3, 2, 2)); err == nil {
		t.Fatal("expected backward-before-forward error")
	}
}

// TestBatchNormGradientCheck verifies the batchnorm backward against
// central differences through a small conv-bn-dense network.
func TestBatchNormGradientCheck(t *testing.T) {
	net, err := NewNetwork("bn-gc", []int{1, 4, 4},
		NewConv2D("c", 1, 3, 3, 1, 1),
		NewBatchNorm("bn", 3),
		NewGlobalAvgPool("gap"),
		NewFlatten("f"),
		NewDense("d", 3, 2),
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(3)
	net.InitWeights(rng)
	x := tensor.New(3, 1, 4, 4)
	rng.FillNormal(x, 0, 1)
	labels := []int{0, 1, 0}
	net.ZeroGrads()
	if _, _, err := net.TrainStep(x, labels); err != nil {
		t.Fatal(err)
	}
	for _, p := range net.Params() {
		step := p.W.Len() / 4
		if step == 0 {
			step = 1
		}
		for i := 0; i < p.W.Len(); i += step {
			analytic := float64(p.Grad.Data()[i])
			numeric := numericalGradTrain(t, net, x, labels, p, i)
			diff := math.Abs(analytic - numeric)
			scale := math.Abs(analytic) + math.Abs(numeric) + 1e-3
			if diff/scale > 0.08 {
				t.Fatalf("param %s[%d]: analytic %v vs numeric %v", p.Name, i, analytic, numeric)
			}
		}
	}
}

// numericalGradTrain is numericalGrad with train-mode forwards, needed for
// batch-norm whose analytic gradient is defined w.r.t. batch statistics.
func numericalGradTrain(t *testing.T, net *Network, x *tensor.Tensor, labels []int, p *Param, i int) float64 {
	t.Helper()
	const eps = 1e-2
	orig := p.W.Data()[i]
	lossAt := func(v float32) float64 {
		p.W.Data()[i] = v
		logits, err := net.Forward(x, true)
		if err != nil {
			t.Fatal(err)
		}
		var head SoftmaxLoss
		loss, _, err := head.Forward(logits, labels)
		if err != nil {
			t.Fatal(err)
		}
		return loss
	}
	plus := lossAt(orig + eps)
	minus := lossAt(orig - eps)
	p.W.Data()[i] = orig
	return (plus - minus) / (2 * eps)
}

// TestLRNGradientCheck verifies the LRN backward the same way.
func TestLRNGradientCheck(t *testing.T) {
	net, err := NewNetwork("lrn-gc", []int{1, 4, 4},
		NewConv2D("c", 1, 4, 3, 1, 1),
		NewLRN("lrn"),
		NewGlobalAvgPool("gap"),
		NewFlatten("f"),
		NewDense("d", 4, 2),
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(7)
	net.InitWeights(rng)
	x := tensor.New(2, 1, 4, 4)
	rng.FillNormal(x, 0, 1)
	labels := []int{1, 0}
	net.ZeroGrads()
	if _, _, err := net.TrainStep(x, labels); err != nil {
		t.Fatal(err)
	}
	for _, p := range net.Params() {
		step := p.W.Len() / 4
		if step == 0 {
			step = 1
		}
		for i := 0; i < p.W.Len(); i += step {
			analytic := float64(p.Grad.Data()[i])
			numeric := numericalGrad(t, net, x, labels, p, i)
			diff := math.Abs(analytic - numeric)
			scale := math.Abs(analytic) + math.Abs(numeric) + 1e-3
			if diff/scale > 0.08 {
				t.Fatalf("param %s[%d]: analytic %v vs numeric %v", p.Name, i, analytic, numeric)
			}
		}
	}
}

func TestParallelConcatAndBackward(t *testing.T) {
	// Two 1×1-conv branches with identity-like kernels.
	b1 := NewConv2D("b1", 1, 1, 1, 1, 0)
	b2 := NewConv2D("b2", 1, 2, 1, 1, 0)
	par := NewParallel("par", b1, b2)
	out, err := par.OutShape([]int{1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 3 || out[1] != 2 {
		t.Fatalf("parallel out shape %v", out)
	}
	b1.w.W.Fill(2) // branch 1 doubles
	b2.w.W.Fill(1) // branch 2 copies twice
	x := tensor.MustFromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	y, err := par.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	if y.Dim(1) != 3 {
		t.Fatalf("concat channels %v", y.Shape())
	}
	if y.At(0, 0, 0, 0) != 2 || y.At(0, 1, 0, 0) != 1 || y.At(0, 2, 0, 0) != 1 {
		t.Fatalf("concat values %v", y.Data())
	}
	g := tensor.New(1, 3, 2, 2)
	g.Fill(1)
	dx, err := par.Backward(g)
	if err != nil {
		t.Fatal(err)
	}
	// dx = 2·g (branch1) + 1·g + 1·g (branch2's two filters) = 4 per pixel.
	if dx.At(0, 0, 0, 0) != 4 {
		t.Fatalf("parallel dx %v", dx.Data())
	}
}

func TestParallelSpatialMismatch(t *testing.T) {
	par := NewParallel("bad",
		NewConv2D("b1", 1, 1, 3, 1, 1), // preserves size
		NewConv2D("b2", 1, 1, 3, 1, 0), // shrinks by 2
	)
	if _, err := par.OutShape([]int{1, 6, 6}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("want ErrBadShape, got %v", err)
	}
}

func TestResidualIdentity(t *testing.T) {
	inner := NewConv2D("f", 1, 1, 3, 1, 1)
	inner.w.W.Zero() // F(x) = bias = 0 ⇒ y = x
	res := NewResidual("res", inner)
	x := tensor.MustFromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	y, err := res.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x.Data() {
		if y.Data()[i] != x.Data()[i] {
			t.Fatalf("residual with zero F changed input: %v", y.Data())
		}
	}
	// Gradient: dy/dx = I + dF/dx; with zero weights dF/dx = 0 ⇒ dx = g.
	g := tensor.New(1, 1, 2, 2)
	g.Fill(3)
	dx, err := res.Backward(g)
	if err != nil {
		t.Fatal(err)
	}
	if dx.Data()[0] != 3 {
		t.Fatalf("residual dx %v", dx.Data())
	}
}

func TestResidualShapeGuard(t *testing.T) {
	res := NewResidual("res", NewConv2D("f", 1, 2, 3, 1, 1)) // changes channels
	if _, err := res.OutShape([]int{1, 4, 4}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("want ErrBadShape, got %v", err)
	}
}

// TestMiniModelsTrain: every miniature builds, gradchecks are covered by
// layer tests; here we verify each one learns the pattern task.
func TestMiniModelsTrain(t *testing.T) {
	builders := map[string]func() (*Network, error){
		"inception": func() (*Network, error) { return MiniInception("mi", 1, 8, 3) },
		"resnet":    func() (*Network, error) { return MiniResNet("mr", 1, 8, 3) },
		"vgg":       func() (*Network, error) { return MiniVGG("mv", 1, 8, 3) },
	}
	for name, build := range builders {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			net, err := build()
			if err != nil {
				t.Fatal(err)
			}
			rng := tensor.NewRNG(5)
			net.InitWeights(rng)
			cfg := DefaultSolverConfig()
			cfg.BaseLR = 0.05
			solver := NewSGDSolver(net, cfg)

			// Three-pattern task: constant, vertical stripes, checker.
			makeBatch := func() (*tensor.Tensor, []int) {
				const n = 6
				x := tensor.New(n, 1, 8, 8)
				labels := make([]int, n)
				for s := 0; s < n; s++ {
					cls := rng.Intn(3)
					labels[s] = cls
					for i := 0; i < 8; i++ {
						for j := 0; j < 8; j++ {
							var v float32
							switch cls {
							case 0:
								v = 1
							case 1:
								if j%2 == 0 {
									v = 1
								} else {
									v = -1
								}
							default:
								if (i+j)%2 == 0 {
									v = 1
								} else {
									v = -1
								}
							}
							x.Set(v+float32(0.1*rng.NormFloat64()), s, 0, i, j)
						}
					}
				}
				return x, labels
			}
			var first, last float64
			for iter := 0; iter < 60; iter++ {
				x, labels := makeBatch()
				loss, err := solver.Step(x, labels)
				if err != nil {
					t.Fatal(err)
				}
				if iter == 0 {
					first = loss
				}
				last = loss
			}
			if last >= first*0.8 {
				t.Fatalf("%s miniature did not learn: %v -> %v", name, first, last)
			}
		})
	}
}

func TestMiniModelByName(t *testing.T) {
	for _, profile := range []string{"inception_v1", "resnet_50", "inception_resnet_v2", "vgg16"} {
		if _, err := MiniModelByName(profile, "m", 1, 8, 3); err != nil {
			t.Fatalf("%s: %v", profile, err)
		}
	}
	if _, err := MiniModelByName("alexnet", "m", 1, 8, 3); err == nil {
		t.Fatal("expected error for unknown profile")
	}
}

func TestLRPolicies(t *testing.T) {
	base := SolverConfig{BaseLR: 1, Gamma: 0.5, Power: 2, StepSize: 10, MaxIteration: 100}
	tests := []struct {
		policy LRPolicy
		iter   int
		want   float64
	}{
		{LRFixed, 50, 1},
		{LRStep, 25, 0.25},
		{LRExp, 2, 0.25},
		{LRInv, 2, 1 / 4.0}, // (1+0.5·2)^-2 = 2^-2
		{LRPoly, 50, 0.25},  // (1-0.5)^2
		{LRPoly, 200, 0},    // clamped past max_iter
	}
	for _, tt := range tests {
		cfg := base
		cfg.Policy = tt.policy
		if got := cfg.LearningRate(tt.iter); math.Abs(got-tt.want) > 1e-9 {
			t.Fatalf("%s at %d = %v, want %v", tt.policy, tt.iter, got, tt.want)
		}
	}
	bad := base
	bad.Policy = "cosine"
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}

func TestNesterovLearns(t *testing.T) {
	net, err := MLP("nag", 2, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(9)
	net.InitWeights(rng)
	cfg := DefaultSolverConfig()
	cfg.BaseLR = 0.05
	cfg.Nesterov = true
	solver := NewSGDSolver(net, cfg)
	var first, last float64
	for iter := 0; iter < 80; iter++ {
		x := tensor.New(8, 2)
		labels := make([]int, 8)
		for i := 0; i < 8; i++ {
			cls := rng.Intn(2)
			labels[i] = cls
			x.Data()[2*i] = float32(2*cls-1) + float32(0.2*rng.NormFloat64())
			x.Data()[2*i+1] = float32(1-2*cls) + float32(0.2*rng.NormFloat64())
		}
		loss, err := solver.Step(x, labels)
		if err != nil {
			t.Fatal(err)
		}
		if iter == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first*0.5 {
		t.Fatalf("nesterov did not learn: %v -> %v", first, last)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	net, err := SmallCNN("ckpt", 1, 8, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	net.InitWeights(tensor.NewRNG(3))
	want := net.FlatWeights(nil)

	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, net); err != nil {
		t.Fatal(err)
	}
	restored, err := SmallCNN("ckpt2", 1, 8, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	name, err := LoadCheckpoint(&buf, restored)
	if err != nil {
		t.Fatal(err)
	}
	if name != "ckpt" {
		t.Fatalf("saved name %q", name)
	}
	got := restored.FlatWeights(nil)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("weight %d differs after checkpoint round trip", i)
		}
	}
}

func TestCheckpointErrors(t *testing.T) {
	net, _ := MLP("x", 4, 4, 2)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, net); err != nil {
		t.Fatal(err)
	}
	other, _ := MLP("y", 8, 4, 2) // different param count
	if _, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), other); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("want ErrBadCheckpoint, got %v", err)
	}
	if _, err := LoadCheckpoint(bytes.NewReader([]byte("garbage header")), net); err == nil {
		t.Fatal("expected error for garbage input")
	}
}
