package nn

import (
	"fmt"

	"shmcaffe/internal/tensor"
)

// Parallel runs several branches on the same NCHW input and concatenates
// their outputs along the channel dimension — the structure of a GoogLeNet
// inception module. Branches must preserve the spatial size.
type Parallel struct {
	name     string
	branches []Layer
	// forward caches
	inShape  []int // (N,C,H,W)
	outChans []int // channels per branch
	outH     int
	outW     int
}

var _ Layer = (*Parallel)(nil)
var _ initializer = (*Parallel)(nil)

// NewParallel returns a channel-concatenating branch container.
func NewParallel(name string, branches ...Layer) *Parallel {
	return &Parallel{name: name, branches: branches}
}

// Name implements Layer.
func (p *Parallel) Name() string { return p.name }

// Params implements Layer.
func (p *Parallel) Params() []*Param {
	var out []*Param
	for _, b := range p.branches {
		out = append(out, b.Params()...)
	}
	return out
}

func (p *Parallel) initWeights(rng *tensor.RNG) {
	for _, b := range p.branches {
		if init, ok := b.(initializer); ok {
			init.initWeights(rng)
		}
	}
}

// OutShape implements Layer.
func (p *Parallel) OutShape(in []int) ([]int, error) {
	if len(p.branches) == 0 {
		return nil, fmt.Errorf("nn: parallel %q has no branches", p.name)
	}
	if len(in) != 3 {
		return nil, fmt.Errorf("nn: parallel %q wants (C,H,W), got %v: %w", p.name, in, ErrBadShape)
	}
	totalC := 0
	var h, w int
	for i, b := range p.branches {
		out, err := b.OutShape(in)
		if err != nil {
			return nil, fmt.Errorf("branch %d: %w", i, err)
		}
		if len(out) != 3 {
			return nil, fmt.Errorf("nn: parallel %q branch %d output %v: %w", p.name, i, out, ErrBadShape)
		}
		if i == 0 {
			h, w = out[1], out[2]
		} else if out[1] != h || out[2] != w {
			return nil, fmt.Errorf("nn: parallel %q branch %d spatial %dx%d != %dx%d: %w",
				p.name, i, out[1], out[2], h, w, ErrBadShape)
		}
		totalC += out[0]
	}
	return []int{totalC, h, w}, nil
}

// Forward implements Layer.
func (p *Parallel) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	n, rest, err := batchOf(x)
	if err != nil {
		return nil, err
	}
	if len(rest) != 3 {
		return nil, fmt.Errorf("nn: parallel %q input %v: %w", p.name, x.Shape(), ErrBadShape)
	}
	p.inShape = append([]int{n}, rest...)
	outs := make([]*tensor.Tensor, len(p.branches))
	p.outChans = make([]int, len(p.branches))
	totalC := 0
	for i, b := range p.branches {
		out, err := b.Forward(x, train)
		if err != nil {
			return nil, fmt.Errorf("parallel %q branch %d: %w", p.name, i, err)
		}
		outs[i] = out
		p.outChans[i] = out.Dim(1)
		totalC += out.Dim(1)
	}
	h, w := outs[0].Dim(2), outs[0].Dim(3)
	p.outH, p.outW = h, w
	plane := h * w
	y := tensor.New(n, totalC, h, w)
	// Concatenate per sample along channels.
	for s := 0; s < n; s++ {
		dstOff := s * totalC * plane
		for i, out := range outs {
			chunk := p.outChans[i] * plane
			srcOff := s * chunk
			copy(y.Data()[dstOff:dstOff+chunk], out.Data()[srcOff:srcOff+chunk])
			dstOff += chunk
		}
	}
	return y, nil
}

// Backward implements Layer.
func (p *Parallel) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if p.inShape == nil {
		return nil, fmt.Errorf("nn: parallel %q backward before forward", p.name)
	}
	n := p.inShape[0]
	plane := p.outH * p.outW
	totalC := 0
	for _, c := range p.outChans {
		totalC += c
	}
	if grad.Len() != n*totalC*plane {
		return nil, fmt.Errorf("nn: parallel %q grad %v: %w", p.name, grad.Shape(), ErrBadShape)
	}
	dx := tensor.New(p.inShape...)
	chanOff := 0
	for i, b := range p.branches {
		chunk := p.outChans[i] * plane
		gslice := tensor.New(n, p.outChans[i], p.outH, p.outW)
		for s := 0; s < n; s++ {
			srcOff := s*totalC*plane + chanOff*plane
			copy(gslice.Data()[s*chunk:(s+1)*chunk], grad.Data()[srcOff:srcOff+chunk])
		}
		dxi, err := b.Backward(gslice)
		if err != nil {
			return nil, fmt.Errorf("parallel %q branch %d backward: %w", p.name, i, err)
		}
		tensor.AxpySlice(1, dxi.Data(), dx.Data())
		chanOff += p.outChans[i]
	}
	return dx, nil
}

// Residual computes y = x + F(x), the identity-shortcut residual block of
// ResNet. The inner stack F must preserve the input shape.
type Residual struct {
	name  string
	inner Layer
}

var _ Layer = (*Residual)(nil)
var _ initializer = (*Residual)(nil)

// NewResidual wraps inner in an identity shortcut.
func NewResidual(name string, inner Layer) *Residual {
	return &Residual{name: name, inner: inner}
}

// Name implements Layer.
func (r *Residual) Name() string { return r.name }

// Params implements Layer.
func (r *Residual) Params() []*Param { return r.inner.Params() }

func (r *Residual) initWeights(rng *tensor.RNG) {
	if init, ok := r.inner.(initializer); ok {
		init.initWeights(rng)
	}
}

// OutShape implements Layer.
func (r *Residual) OutShape(in []int) ([]int, error) {
	out, err := r.inner.OutShape(in)
	if err != nil {
		return nil, err
	}
	if !shapeEqual(out, in) {
		return nil, fmt.Errorf("nn: residual %q inner maps %v to %v (must preserve): %w",
			r.name, in, out, ErrBadShape)
	}
	return out, nil
}

// Forward implements Layer.
func (r *Residual) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	fx, err := r.inner.Forward(x, train)
	if err != nil {
		return nil, fmt.Errorf("residual %q: %w", r.name, err)
	}
	if fx.Len() != x.Len() {
		return nil, fmt.Errorf("nn: residual %q inner changed volume: %w", r.name, ErrBadShape)
	}
	// One fused pass y = F(x) + x instead of clone-then-add.
	y := tensor.New(fx.Shape()...)
	tensor.FusedAxpyCopy(1, x.Data(), fx.Data(), y.Data())
	return y, nil
}

// Backward implements Layer.
func (r *Residual) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	dInner, err := r.inner.Backward(grad)
	if err != nil {
		return nil, fmt.Errorf("residual %q backward: %w", r.name, err)
	}
	// Shortcut gradient: dx = dF + grad in one fused pass.
	dx := tensor.New(dInner.Shape()...)
	tensor.FusedAxpyCopy(1, grad.Data(), dInner.Data(), dx.Data())
	return dx, nil
}

// Stack composes layers sequentially as one Layer, so Parallel branches and
// Residual inners can be multi-layer.
type Stack struct {
	name   string
	layers []Layer
}

var _ Layer = (*Stack)(nil)
var _ initializer = (*Stack)(nil)

// NewStack returns a sequential sub-network usable as a single layer.
func NewStack(name string, layers ...Layer) *Stack {
	return &Stack{name: name, layers: layers}
}

// Name implements Layer.
func (s *Stack) Name() string { return s.name }

// Params implements Layer.
func (s *Stack) Params() []*Param {
	var out []*Param
	for _, l := range s.layers {
		out = append(out, l.Params()...)
	}
	return out
}

func (s *Stack) initWeights(rng *tensor.RNG) {
	for _, l := range s.layers {
		if init, ok := l.(initializer); ok {
			init.initWeights(rng)
		}
	}
}

// OutShape implements Layer.
func (s *Stack) OutShape(in []int) ([]int, error) {
	if len(s.layers) == 0 {
		return nil, fmt.Errorf("nn: stack %q has no layers", s.name)
	}
	shape := in
	for _, l := range s.layers {
		out, err := l.OutShape(shape)
		if err != nil {
			return nil, fmt.Errorf("stack %q layer %q: %w", s.name, l.Name(), err)
		}
		shape = out
	}
	return shape, nil
}

// Forward implements Layer.
func (s *Stack) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	cur := x
	for _, l := range s.layers {
		next, err := l.Forward(cur, train)
		if err != nil {
			return nil, fmt.Errorf("stack %q layer %q: %w", s.name, l.Name(), err)
		}
		cur = next
	}
	return cur, nil
}

// Backward implements Layer.
func (s *Stack) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	cur := grad
	for i := len(s.layers) - 1; i >= 0; i-- {
		next, err := s.layers[i].Backward(cur)
		if err != nil {
			return nil, fmt.Errorf("stack %q layer %q backward: %w", s.name, s.layers[i].Name(), err)
		}
		cur = next
	}
	return cur, nil
}
