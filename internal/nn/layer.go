// Package nn implements the deep-learning computation substrate: layers,
// sequential networks, a softmax cross-entropy head, and Caffe-style solver
// mechanics (contiguous flat weight vectors, SGD with momentum and step
// learning-rate policy). It plays the role BVLC Caffe's computation library
// plays inside ShmCaffe: the distributed solvers in internal/core treat a
// network purely as "flat weights in, flat gradients out".
package nn

import (
	"errors"
	"fmt"

	"shmcaffe/internal/tensor"
)

// ErrBadShape is returned when a layer receives an input whose shape it
// cannot process.
var ErrBadShape = errors.New("nn: bad input shape")

// Param is one parameter blob with its gradient. Frozen parameters are
// carried in the flat weight vector (so replica synchronization, SEASGD
// exchanges, checkpoints and evaluation transfers preserve them) but are
// never touched by the solver — batch-norm running statistics are the
// canonical case, exactly like Caffe's lr_mult=0 blobs.
type Param struct {
	Name   string
	W      *tensor.Tensor
	Grad   *tensor.Tensor
	Frozen bool
}

// newParam allocates a parameter and a same-shaped gradient.
func newParam(name string, shape ...int) *Param {
	return &Param{
		Name: name,
		W:    tensor.New(shape...),
		Grad: tensor.New(shape...),
	}
}

// Layer is one differentiable stage of a network. Forward receives a
// batch-first activation tensor and returns the layer output; Backward
// receives dL/d(output) and returns dL/d(input), accumulating parameter
// gradients into Params. Layers are stateful (they cache forward inputs),
// so each worker must own its own replica.
type Layer interface {
	// Name identifies the layer for diagnostics and parameter naming.
	Name() string
	// OutShape returns the per-sample output shape for a per-sample input
	// shape (without the batch dimension).
	OutShape(in []int) ([]int, error)
	// Forward computes the layer output for batch x. train enables
	// training-only behaviour such as dropout.
	Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error)
	// Backward computes dL/dinput given dL/doutput and accumulates
	// parameter gradients.
	Backward(grad *tensor.Tensor) (*tensor.Tensor, error)
	// Params returns the learnable parameters (possibly empty).
	Params() []*Param
}

// initializer seeds layer weights; layers that have parameters implement it.
type initializer interface {
	initWeights(rng *tensor.RNG)
}

func batchOf(x *tensor.Tensor) (n int, rest []int, err error) {
	if x.Dims() < 2 {
		return 0, nil, fmt.Errorf("nn: batch tensor must have >=2 dims, got %v: %w", x.Shape(), ErrBadShape)
	}
	s := x.Shape()
	return s[0], s[1:], nil
}

func shapeVolume(s []int) int {
	v := 1
	for _, d := range s {
		v *= d
	}
	return v
}

func shapeEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
