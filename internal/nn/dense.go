package nn

import (
	"fmt"

	"shmcaffe/internal/tensor"
)

// Dense is a fully connected layer: y = xW + b with x (N×in), W (in×out).
type Dense struct {
	name    string
	in, out int
	w, b    *Param

	lastIn *tensor.Tensor // cached forward input for backward
}

var _ Layer = (*Dense)(nil)
var _ initializer = (*Dense)(nil)

// NewDense returns a fully connected layer mapping in features to out.
func NewDense(name string, in, out int) *Dense {
	return &Dense{
		name: name,
		in:   in,
		out:  out,
		w:    newParam(name+".w", in, out),
		b:    newParam(name+".b", out),
	}
}

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// OutShape implements Layer.
func (d *Dense) OutShape(in []int) ([]int, error) {
	if shapeVolume(in) != d.in {
		return nil, fmt.Errorf("nn: dense %q expects %d features, got shape %v: %w", d.name, d.in, in, ErrBadShape)
	}
	return []int{d.out}, nil
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

func (d *Dense) initWeights(rng *tensor.RNG) {
	rng.XavierInit(d.w.W, d.in)
	d.b.W.Zero()
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, error) {
	n, rest, err := batchOf(x)
	if err != nil {
		return nil, err
	}
	if shapeVolume(rest) != d.in {
		return nil, fmt.Errorf("nn: dense %q input %v: %w", d.name, x.Shape(), ErrBadShape)
	}
	x2, err := x.Reshape(n, d.in)
	if err != nil {
		return nil, err
	}
	d.lastIn = x2
	y := tensor.New(n, d.out)
	if err := tensor.MatMul(x2, d.w.W, y); err != nil {
		return nil, err
	}
	// Add bias per row.
	for i := 0; i < n; i++ {
		row := y.Data()[i*d.out : (i+1)*d.out]
		for j := range row {
			row[j] += d.b.W.Data()[j]
		}
	}
	return y, nil
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if d.lastIn == nil {
		return nil, fmt.Errorf("nn: dense %q backward before forward", d.name)
	}
	n := d.lastIn.Dim(0)
	g, err := grad.Reshape(n, d.out)
	if err != nil {
		return nil, err
	}
	// dW += xᵀ g
	dw := tensor.New(d.in, d.out)
	if err := tensor.MatMulTransA(d.lastIn, g, dw); err != nil {
		return nil, err
	}
	tensor.AxpySlice(1, dw.Data(), d.w.Grad.Data())
	// db += column sums of g
	for i := 0; i < n; i++ {
		row := g.Data()[i*d.out : (i+1)*d.out]
		for j, v := range row {
			d.b.Grad.Data()[j] += v
		}
	}
	// dX = g Wᵀ
	dx := tensor.New(n, d.in)
	if err := tensor.MatMulTransB(g, d.w.W, dx); err != nil {
		return nil, err
	}
	return dx, nil
}

// ReLU is a rectified linear activation.
type ReLU struct {
	name string
	mask []bool
}

var _ Layer = (*ReLU)(nil)

// NewReLU returns a ReLU activation layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// OutShape implements Layer.
func (r *ReLU) OutShape(in []int) ([]int, error) { return in, nil }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, error) {
	y := x.Clone()
	if cap(r.mask) < y.Len() {
		r.mask = make([]bool, y.Len())
	}
	r.mask = r.mask[:y.Len()]
	for i, v := range y.Data() {
		if v > 0 {
			r.mask[i] = true
		} else {
			r.mask[i] = false
			y.Data()[i] = 0
		}
	}
	return y, nil
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if len(r.mask) != grad.Len() {
		return nil, fmt.Errorf("nn: relu %q backward before forward: %w", r.name, ErrBadShape)
	}
	dx := grad.Clone()
	for i := range dx.Data() {
		if !r.mask[i] {
			dx.Data()[i] = 0
		}
	}
	return dx, nil
}

// Flatten reshapes (N, ...) into (N, volume).
type Flatten struct {
	name    string
	inShape []int
}

var _ Layer = (*Flatten)(nil)

// NewFlatten returns a flattening layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Layer.
func (f *Flatten) Name() string { return f.name }

// OutShape implements Layer.
func (f *Flatten) OutShape(in []int) ([]int, error) {
	return []int{shapeVolume(in)}, nil
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, error) {
	n, rest, err := batchOf(x)
	if err != nil {
		return nil, err
	}
	f.inShape = append([]int{n}, rest...)
	return x.Reshape(n, shapeVolume(rest))
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if f.inShape == nil {
		return nil, fmt.Errorf("nn: flatten %q backward before forward", f.name)
	}
	return grad.Reshape(f.inShape...)
}

// Dropout zeroes activations with probability p at train time and scales the
// survivors by 1/(1-p) (inverted dropout), passing through untouched at eval.
type Dropout struct {
	name string
	p    float64
	rng  *tensor.RNG
	keep []bool
}

var _ Layer = (*Dropout)(nil)

// NewDropout returns a dropout layer with drop probability p in [0, 1).
func NewDropout(name string, p float64, seed uint64) *Dropout {
	return &Dropout{name: name, p: p, rng: tensor.NewRNG(seed)}
}

// Name implements Layer.
func (d *Dropout) Name() string { return d.name }

// OutShape implements Layer.
func (d *Dropout) OutShape(in []int) ([]int, error) { return in, nil }

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if !train || d.p <= 0 {
		d.keep = nil
		return x, nil
	}
	y := x.Clone()
	if cap(d.keep) < y.Len() {
		d.keep = make([]bool, y.Len())
	}
	d.keep = d.keep[:y.Len()]
	scale := float32(1 / (1 - d.p))
	for i := range y.Data() {
		if d.rng.Float64() < d.p {
			d.keep[i] = false
			y.Data()[i] = 0
		} else {
			d.keep[i] = true
			y.Data()[i] *= scale
		}
	}
	return y, nil
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if d.keep == nil {
		return grad, nil
	}
	if len(d.keep) != grad.Len() {
		return nil, fmt.Errorf("nn: dropout %q grad size mismatch: %w", d.name, ErrBadShape)
	}
	dx := grad.Clone()
	scale := float32(1 / (1 - d.p))
	for i := range dx.Data() {
		if d.keep[i] {
			dx.Data()[i] *= scale
		} else {
			dx.Data()[i] = 0
		}
	}
	return dx, nil
}
