package nn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"shmcaffe/internal/tensor"
)

// Checkpointing: Caffe-style solver snapshots. The format is a small
// binary header plus the flat weight vector, so a snapshot taken by any
// worker (or read out of the SMB global buffer) restores into any replica
// of the same architecture.
//
//	[8B magic "SHMCAFF1"] [2B name len][name] [8B param count]
//	[param count × 4B little-endian float32]

var (
	// ErrBadCheckpoint reports a corrupt or incompatible snapshot.
	ErrBadCheckpoint = errors.New("nn: bad checkpoint")

	checkpointMagic = [8]byte{'S', 'H', 'M', 'C', 'A', 'F', 'F', '1'}
)

// SaveCheckpoint writes the network's weights to w.
func SaveCheckpoint(w io.Writer, net *Network) error {
	if _, err := w.Write(checkpointMagic[:]); err != nil {
		return fmt.Errorf("checkpoint magic: %w", err)
	}
	name := net.Name()
	if len(name) > 0xffff {
		name = name[:0xffff]
	}
	var nameLen [2]byte
	binary.LittleEndian.PutUint16(nameLen[:], uint16(len(name)))
	if _, err := w.Write(nameLen[:]); err != nil {
		return err
	}
	if _, err := io.WriteString(w, name); err != nil {
		return err
	}
	var count [8]byte
	binary.LittleEndian.PutUint64(count[:], uint64(net.NumParams()))
	if _, err := w.Write(count[:]); err != nil {
		return err
	}
	weights := net.FlatWeights(nil)
	if _, err := w.Write(tensor.Float32Bytes(weights)); err != nil {
		return fmt.Errorf("checkpoint weights: %w", err)
	}
	return nil
}

// LoadCheckpoint restores weights from r into net. The snapshot's parameter
// count must match; the model name is informational and returned.
func LoadCheckpoint(r io.Reader, net *Network) (savedName string, err error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return "", fmt.Errorf("checkpoint magic: %w", err)
	}
	if magic != checkpointMagic {
		return "", fmt.Errorf("magic %q: %w", magic, ErrBadCheckpoint)
	}
	var nameLen [2]byte
	if _, err := io.ReadFull(r, nameLen[:]); err != nil {
		return "", err
	}
	nameBuf := make([]byte, binary.LittleEndian.Uint16(nameLen[:]))
	if _, err := io.ReadFull(r, nameBuf); err != nil {
		return "", err
	}
	var countBuf [8]byte
	if _, err := io.ReadFull(r, countBuf[:]); err != nil {
		return "", err
	}
	count := binary.LittleEndian.Uint64(countBuf[:])
	if count != uint64(net.NumParams()) {
		return "", fmt.Errorf("snapshot has %d params, network has %d: %w",
			count, net.NumParams(), ErrBadCheckpoint)
	}
	raw := make([]byte, count*4)
	if _, err := io.ReadFull(r, raw); err != nil {
		return "", fmt.Errorf("checkpoint weights: %w", err)
	}
	weights, err := tensor.Float32FromBytes(raw)
	if err != nil {
		return "", err
	}
	if err := net.SetFlatWeights(weights); err != nil {
		return "", err
	}
	return string(nameBuf), nil
}
