package nn

import (
	"errors"
	"math"
	"testing"

	"shmcaffe/internal/tensor"
)

func TestDenseForwardKnown(t *testing.T) {
	d := NewDense("fc", 2, 2)
	copy(d.w.W.Data(), []float32{1, 2, 3, 4}) // W = [[1,2],[3,4]]
	copy(d.b.W.Data(), []float32{10, 20})
	x := tensor.MustFromSlice([]float32{1, 1}, 1, 2)
	y, err := d.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{14, 26} // [1+3+10, 2+4+20]
	for i, w := range want {
		if y.Data()[i] != w {
			t.Fatalf("y[%d] = %v, want %v", i, y.Data()[i], w)
		}
	}
}

func TestDenseShapeError(t *testing.T) {
	d := NewDense("fc", 4, 2)
	x := tensor.New(1, 3)
	if _, err := d.Forward(x, true); !errors.Is(err, ErrBadShape) {
		t.Fatalf("want ErrBadShape, got %v", err)
	}
	if _, err := d.OutShape([]int{3}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("OutShape want ErrBadShape, got %v", err)
	}
}

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU("relu")
	x := tensor.MustFromSlice([]float32{-1, 0, 2, -3}, 1, 4)
	y, err := r.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	wantY := []float32{0, 0, 2, 0}
	for i, w := range wantY {
		if y.Data()[i] != w {
			t.Fatalf("relu y[%d] = %v, want %v", i, y.Data()[i], w)
		}
	}
	g := tensor.MustFromSlice([]float32{5, 5, 5, 5}, 1, 4)
	dx, err := r.Backward(g)
	if err != nil {
		t.Fatal(err)
	}
	wantDx := []float32{0, 0, 5, 0}
	for i, w := range wantDx {
		if dx.Data()[i] != w {
			t.Fatalf("relu dx[%d] = %v, want %v", i, dx.Data()[i], w)
		}
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten("flat")
	x := tensor.New(2, 3, 4, 4)
	y, err := f.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	if y.Dim(0) != 2 || y.Dim(1) != 48 {
		t.Fatalf("flatten shape %v", y.Shape())
	}
	back, err := f.Backward(y)
	if err != nil {
		t.Fatal(err)
	}
	if !back.SameShape(x) {
		t.Fatalf("flatten backward shape %v", back.Shape())
	}
}

func TestDropoutEvalPassthroughAndTrainMask(t *testing.T) {
	d := NewDropout("drop", 0.5, 1)
	x := tensor.New(1, 100)
	x.Fill(1)

	// Eval: identity.
	y, err := d.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.Sum(y) != 100 {
		t.Fatalf("eval dropout changed values: sum %v", tensor.Sum(y))
	}

	// Train: some elements zeroed, survivors scaled by 2.
	y, err = d.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	zeros, twos := 0, 0
	for _, v := range y.Data() {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected dropout value %v", v)
		}
	}
	if zeros == 0 || twos == 0 {
		t.Fatalf("dropout mask degenerate: %d zeros, %d twos", zeros, twos)
	}
	// Backward respects the same mask.
	g := tensor.New(1, 100)
	g.Fill(1)
	dx, err := d.Backward(g)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range y.Data() {
		if (v == 0) != (dx.Data()[i] == 0) {
			t.Fatal("dropout backward mask differs from forward")
		}
	}
}

func TestMaxPoolKnown(t *testing.T) {
	m := NewMaxPool2D("pool", 2, 2)
	x := tensor.MustFromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 10, 13, 14,
		11, 12, 15, 16,
	}, 1, 1, 4, 4)
	y, err := m.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{4, 8, 12, 16}
	for i, w := range want {
		if y.Data()[i] != w {
			t.Fatalf("pool y[%d] = %v, want %v", i, y.Data()[i], w)
		}
	}
	g := tensor.MustFromSlice([]float32{1, 1, 1, 1}, 1, 1, 2, 2)
	dx, err := m.Backward(g)
	if err != nil {
		t.Fatal(err)
	}
	// Gradient flows only to the argmax positions.
	if tensor.Sum(dx) != 4 {
		t.Fatalf("pool grad sum %v, want 4", tensor.Sum(dx))
	}
	if dx.At(0, 0, 1, 1) != 1 || dx.At(0, 0, 3, 3) != 1 {
		t.Fatal("pool grad not routed to argmax")
	}
}

func TestGlobalAvgPool(t *testing.T) {
	a := NewGlobalAvgPool("gap")
	x := tensor.MustFromSlice([]float32{1, 2, 3, 4, 10, 20, 30, 40}, 1, 2, 2, 2)
	y, err := a.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	if y.Data()[0] != 2.5 || y.Data()[1] != 25 {
		t.Fatalf("avgpool %v", y.Data())
	}
	g := tensor.MustFromSlice([]float32{4, 8}, 1, 2, 1, 1)
	dx, err := a.Backward(g)
	if err != nil {
		t.Fatal(err)
	}
	if dx.At(0, 0, 0, 0) != 1 || dx.At(0, 1, 1, 1) != 2 {
		t.Fatalf("avgpool grad %v", dx.Data())
	}
}

func TestConvForwardKnown(t *testing.T) {
	// 1 input channel, 1 output channel, 2x2 kernel of ones, no pad.
	c := NewConv2D("conv", 1, 1, 2, 1, 0)
	for i := range c.w.W.Data() {
		c.w.W.Data()[i] = 1
	}
	x := tensor.MustFromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	y, err := c.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{12, 16, 24, 28} // window sums
	for i, w := range want {
		if y.Data()[i] != w {
			t.Fatalf("conv y[%d] = %v, want %v (%v)", i, y.Data()[i], w, y.Data())
		}
	}
}

func TestSoftmaxLossKnown(t *testing.T) {
	var s SoftmaxLoss
	logits := tensor.MustFromSlice([]float32{0, 0}, 1, 2)
	loss, probs, err := s.Forward(logits, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-math.Log(2)) > 1e-6 {
		t.Fatalf("loss = %v, want ln 2", loss)
	}
	if math.Abs(float64(probs.Data()[0])-0.5) > 1e-6 {
		t.Fatalf("probs = %v", probs.Data())
	}
	grad, err := s.Backward()
	if err != nil {
		t.Fatal(err)
	}
	// (p - onehot)/N = [0.5-1, 0.5]/1
	if math.Abs(float64(grad.Data()[0])+0.5) > 1e-6 || math.Abs(float64(grad.Data()[1])-0.5) > 1e-6 {
		t.Fatalf("grad = %v", grad.Data())
	}
}

func TestSoftmaxLossErrors(t *testing.T) {
	var s SoftmaxLoss
	logits := tensor.New(2, 3)
	if _, _, err := s.Forward(logits, []int{0}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("want ErrBadShape for label count, got %v", err)
	}
	if _, _, err := s.Forward(logits, []int{0, 7}); err == nil {
		t.Fatal("want error for out-of-range label")
	}
}

func TestTopKAccuracy(t *testing.T) {
	probs := tensor.MustFromSlice([]float32{
		0.5, 0.3, 0.2, // label 1 is 2nd
		0.1, 0.2, 0.7, // label 0 is 3rd
	}, 2, 3)
	acc1, err := TopKAccuracy(probs, []int{1, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if acc1 != 0 {
		t.Fatalf("top-1 = %v, want 0", acc1)
	}
	acc2, err := TopKAccuracy(probs, []int{1, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if acc2 != 0.5 {
		t.Fatalf("top-2 = %v, want 0.5", acc2)
	}
	acc3, err := TopKAccuracy(probs, []int{1, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if acc3 != 1 {
		t.Fatalf("top-3 = %v, want 1", acc3)
	}
	if _, err := TopKAccuracy(probs, []int{1, 0}, 4); err == nil {
		t.Fatal("want error for k > classes")
	}
}
