package nn

import "fmt"

// Laptop-scale miniatures of the paper's four evaluation architectures
// (Table IV). Each keeps the defining structural idea of its namesake —
// inception branches, residual shortcuts, plain deep convs — at a size the
// functional experiments can train in seconds. The timing experiments use
// the calibrated Profiles instead (profile.go); these miniatures exist so
// convergence runs exercise the same computational *patterns* the real
// models would.

// inceptionBlock builds a 3-branch inception module: 1×1 conv, 3×3 conv,
// and 3×3-pool→1×1-conv, concatenated along channels.
func inceptionBlock(name string, inC, c1, c3, cp int) Layer {
	return NewParallel(name,
		NewStack(name+"/b1",
			NewConv2D(name+"/b1/conv1x1", inC, c1, 1, 1, 0),
			NewReLU(name+"/b1/relu"),
		),
		NewStack(name+"/b3",
			NewConv2D(name+"/b3/conv3x3", inC, c3, 3, 1, 1),
			NewReLU(name+"/b3/relu"),
		),
		NewStack(name+"/bp",
			NewMaxPool2D(name+"/bp/pool", 3, 1), // stride 1: needs pad-free size math
			NewConv2D(name+"/bp/conv1x1", inC, cp, 1, 1, 1),
			NewReLU(name+"/bp/relu"),
		),
	)
}

// MiniInception is the Inception-v1 miniature: stem conv + LRN, two
// inception modules, global average pooling head (GoogLeNet's signature
// classifier).
func MiniInception(name string, channels, size, classes int) (*Network, error) {
	if size%2 != 0 {
		return nil, fmt.Errorf("nn: MiniInception input size %d must be even", size)
	}
	layers := []Layer{
		NewConv2D(name+"/stem", channels, 8, 3, 1, 1),
		NewReLU(name + "/stem/relu"),
		NewLRN(name + "/lrn"),
		NewMaxPool2D(name+"/pool1", 2, 2),
		inceptionBlock(name+"/inc1", 8, 4, 8, 4),
		inceptionBlock(name+"/inc2", 16, 8, 8, 8),
		NewGlobalAvgPool(name + "/gap"),
		NewFlatten(name + "/flat"),
		NewDense(name+"/fc", 24, classes),
	}
	return NewNetwork(name, []int{channels, size, size}, layers...)
}

// residualUnit is conv-BN-relu-conv-BN wrapped in an identity shortcut.
func residualUnit(name string, c int) Layer {
	return NewResidual(name, NewStack(name+"/f",
		NewConv2D(name+"/conv1", c, c, 3, 1, 1),
		NewBatchNorm(name+"/bn1", c),
		NewReLU(name+"/relu"),
		NewConv2D(name+"/conv2", c, c, 3, 1, 1),
		NewBatchNorm(name+"/bn2", c),
	))
}

// MiniResNet is the ResNet-50 miniature: stem conv + BN, two residual
// units, global average pooling head.
func MiniResNet(name string, channels, size, classes int) (*Network, error) {
	if size%2 != 0 {
		return nil, fmt.Errorf("nn: MiniResNet input size %d must be even", size)
	}
	layers := []Layer{
		NewConv2D(name+"/stem", channels, 8, 3, 1, 1),
		NewBatchNorm(name+"/stem/bn", 8),
		NewReLU(name + "/stem/relu"),
		NewMaxPool2D(name+"/pool1", 2, 2),
		residualUnit(name+"/res1", 8),
		NewReLU(name + "/relu1"),
		residualUnit(name+"/res2", 8),
		NewReLU(name + "/relu2"),
		NewGlobalAvgPool(name + "/gap"),
		NewFlatten(name + "/flat"),
		NewDense(name+"/fc", 8, classes),
	}
	return NewNetwork(name, []int{channels, size, size}, layers...)
}

// MiniVGG is the VGG16 miniature: plain stacked 3×3 convs with pooling and
// a deliberately fat fully connected head (VGG's defining cost structure —
// most parameters in the dense layers).
func MiniVGG(name string, channels, size, classes int) (*Network, error) {
	if size%4 != 0 {
		return nil, fmt.Errorf("nn: MiniVGG input size %d must be divisible by 4", size)
	}
	final := size / 4
	layers := []Layer{
		NewConv2D(name+"/conv1a", channels, 8, 3, 1, 1),
		NewReLU(name + "/relu1a"),
		NewConv2D(name+"/conv1b", 8, 8, 3, 1, 1),
		NewReLU(name + "/relu1b"),
		NewMaxPool2D(name+"/pool1", 2, 2),
		NewConv2D(name+"/conv2a", 8, 16, 3, 1, 1),
		NewReLU(name + "/relu2a"),
		NewMaxPool2D(name+"/pool2", 2, 2),
		NewFlatten(name + "/flat"),
		NewDense(name+"/fc1", 16*final*final, 128), // the fat VGG head
		NewReLU(name + "/relu3"),
		NewDropout(name+"/drop", 0.3, 1),
		NewDense(name+"/fc2", 128, classes),
	}
	return NewNetwork(name, []int{channels, size, size}, layers...)
}

// MiniModelByName builds the miniature matching a paper model profile name.
func MiniModelByName(profile, name string, channels, size, classes int) (*Network, error) {
	switch profile {
	case "inception_v1", "inception_resnet_v2":
		// The IRv2 miniature reuses the inception miniature; its
		// distinguishing property (huge parameter volume, large inputs)
		// matters only to the timing model.
		return MiniInception(name, channels, size, classes)
	case "resnet_50":
		return MiniResNet(name, channels, size, classes)
	case "vgg16":
		return MiniVGG(name, channels, size, classes)
	default:
		return nil, fmt.Errorf("nn: no miniature for profile %q", profile)
	}
}
