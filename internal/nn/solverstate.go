package nn

import (
	"encoding/binary"
	"fmt"
	"io"

	"shmcaffe/internal/tensor"
)

// Solver-state snapshots: Caffe's .solverstate counterpart. A weight
// checkpoint alone restarts training with cold momentum and a reset LR
// schedule; the solver state additionally captures the iteration counter
// and every velocity buffer, so a resumed run continues bit-for-bit.
//
//	[8B magic "SHMSOLV1"] [8B iter] [8B param count]
//	[count × 4B weights] [count × 4B velocities]

var solverMagic = [8]byte{'S', 'H', 'M', 'S', 'O', 'L', 'V', '1'}

// SaveState writes the solver's full training state (weights, velocity,
// iteration counter).
func (s *SGDSolver) SaveState(w io.Writer) error {
	if _, err := w.Write(solverMagic[:]); err != nil {
		return fmt.Errorf("solver state magic: %w", err)
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(s.iter))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(s.net.NumParams()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(tensor.Float32Bytes(s.net.FlatWeights(nil))); err != nil {
		return err
	}
	vel := make([]float32, 0, s.net.NumParams())
	for _, v := range s.velocity {
		vel = append(vel, v.Data()...)
	}
	if _, err := w.Write(tensor.Float32Bytes(vel)); err != nil {
		return err
	}
	return nil
}

// RestoreState loads a snapshot written by SaveState into this solver and
// its network. The architectures must match.
func (s *SGDSolver) RestoreState(r io.Reader) error {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("solver state magic: %w", err)
	}
	if magic != solverMagic {
		return fmt.Errorf("magic %q: %w", magic, ErrBadCheckpoint)
	}
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	iter := int(binary.LittleEndian.Uint64(hdr[0:]))
	count := binary.LittleEndian.Uint64(hdr[8:])
	if count != uint64(s.net.NumParams()) {
		return fmt.Errorf("snapshot has %d params, network has %d: %w",
			count, s.net.NumParams(), ErrBadCheckpoint)
	}
	raw := make([]byte, count*4)
	if _, err := io.ReadFull(r, raw); err != nil {
		return fmt.Errorf("solver state weights: %w", err)
	}
	weights, err := tensor.Float32FromBytes(raw)
	if err != nil {
		return err
	}
	if err := s.net.SetFlatWeights(weights); err != nil {
		return err
	}
	if _, err := io.ReadFull(r, raw); err != nil {
		return fmt.Errorf("solver state velocity: %w", err)
	}
	vel, err := tensor.Float32FromBytes(raw)
	if err != nil {
		return err
	}
	off := 0
	for _, v := range s.velocity {
		copy(v.Data(), vel[off:off+v.Len()])
		off += v.Len()
	}
	s.iter = iter
	return nil
}
