package nn

import (
	"fmt"
	"time"
)

// Profile describes one of the paper's CNN models for timing purposes: the
// parameter volume that must cross the network every iteration and the
// measured single-GPU computation time per iteration. The values are the
// paper's own calibration (Table IV/V, Sec. IV-E), so the discrete-event
// reproduction of Figs. 9–15 inherits the authors' measurements rather than
// our CPU's. ParamBytes is the float32 weight vector size; the SEASGD
// communication volume per iteration is 2×ParamBytes (read Wg + write ΔWx).
type Profile struct {
	Name string
	// ParamBytes is the size of the flat float32 weight vector.
	ParamBytes int64
	// CompTime is the forward+backward+local-update time for one
	// iteration on one GPU at the paper's batch size.
	CompTime time.Duration
	// BatchSize is the per-worker minibatch size used in the paper.
	BatchSize int
	// InputSide is the square input resolution (299/320/224...).
	InputSide int
}

// The four evaluation models of the paper. Parameter sizes: Inception-ResNet
// -v2 is the paper's own number (214 MB, Sec. IV-E); VGG16 and ResNet-50 use
// the standard Caffe model sizes; Inception-v1 uses the BVLC GoogLeNet
// weight size. Computation times come from Table V's one-worker column
// (VGG16: 389.8 ms per two 1-GPU iterations ⇒ 194.9 ms).
var (
	// InceptionV1 is GoogLeNet / Inception-v1.
	InceptionV1 = Profile{
		Name:       "inception_v1",
		ParamBytes: 53 * 1000 * 1000,
		CompTime:   257 * time.Millisecond,
		BatchSize:  60,
		InputSide:  224,
	}
	// ResNet50 is the 50-layer residual network.
	ResNet50 = Profile{
		Name:       "resnet_50",
		ParamBytes: 102 * 1000 * 1000,
		CompTime:   225 * time.Millisecond,
		BatchSize:  32,
		InputSide:  224,
	}
	// InceptionResNetV2 trains on 320×320 inputs in the paper.
	InceptionResNetV2 = Profile{
		Name:       "inception_resnet_v2",
		ParamBytes: 214 * 1000 * 1000,
		CompTime:   443 * time.Millisecond,
		BatchSize:  16,
		InputSide:  320,
	}
	// VGG16 has a short compute time and a very large parameter vector —
	// the paper's example of a model unsuited to multi-node scaling.
	VGG16 = Profile{
		Name:       "vgg16",
		ParamBytes: 528 * 1000 * 1000,
		CompTime:   194900 * time.Microsecond,
		BatchSize:  32,
		InputSide:  224,
	}
)

// PaperModels lists the four evaluation models in the paper's order.
func PaperModels() []Profile {
	return []Profile{InceptionV1, ResNet50, InceptionResNetV2, VGG16}
}

// ProfileByName returns the named paper model profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range PaperModels() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("nn: unknown model profile %q", name)
}

// ParamMB returns the parameter volume in megabytes (10^6 bytes).
func (p Profile) ParamMB() float64 { return float64(p.ParamBytes) / 1e6 }

// Validate checks the profile for usable values.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("nn: profile without name")
	}
	if p.ParamBytes <= 0 {
		return fmt.Errorf("nn: profile %q has non-positive param bytes", p.Name)
	}
	if p.CompTime <= 0 {
		return fmt.Errorf("nn: profile %q has non-positive comp time", p.Name)
	}
	return nil
}
