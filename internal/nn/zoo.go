package nn

import "fmt"

// The model zoo provides the trainable stand-ins used by the functional
// experiments. The paper trains Inception-v1 / ResNet-50 /
// Inception-ResNet-v2 / VGG16 on ImageNet; those models only make sense on
// GPU hardware, so convergence experiments here run laptop-scale CNNs whose
// *distributed update dynamics* (the thing the paper's Figs. 8 and 11
// measure) are identical. See Profile (profile.go) for the timing-side
// stand-ins.

// SmallCNN builds a LeNet-style CNN for c×size×size inputs and the given
// class count: conv-relu-pool ×2, dense-relu, dense. This is the default
// model for convergence experiments.
func SmallCNN(name string, channels, size, classes int, seed uint64) (*Network, error) {
	if size%4 != 0 {
		return nil, fmt.Errorf("nn: SmallCNN input size %d must be divisible by 4", size)
	}
	final := size / 4
	layers := []Layer{
		NewConv2D(name+"/conv1", channels, 8, 3, 1, 1),
		NewReLU(name + "/relu1"),
		NewMaxPool2D(name+"/pool1", 2, 2),
		NewConv2D(name+"/conv2", 8, 16, 3, 1, 1),
		NewReLU(name + "/relu2"),
		NewMaxPool2D(name+"/pool2", 2, 2),
		NewFlatten(name + "/flat"),
		NewDense(name+"/fc1", 16*final*final, 64),
		NewReLU(name + "/relu3"),
		NewDense(name+"/fc2", 64, classes),
	}
	return NewNetwork(name, []int{channels, size, size}, layers...)
}

// MLP builds a two-hidden-layer perceptron over flat feature vectors; the
// cheapest model for high-worker-count convergence sweeps.
func MLP(name string, features, hidden, classes int) (*Network, error) {
	layers := []Layer{
		NewDense(name+"/fc1", features, hidden),
		NewReLU(name + "/relu1"),
		NewDense(name+"/fc2", hidden, hidden),
		NewReLU(name + "/relu2"),
		NewDense(name+"/fc3", hidden, classes),
	}
	return NewNetwork(name, []int{features}, layers...)
}

// TinyConvNet builds the smallest useful CNN (one conv block); used by
// tests that need fast real forward/backward passes.
func TinyConvNet(name string, channels, size, classes int) (*Network, error) {
	if size%2 != 0 {
		return nil, fmt.Errorf("nn: TinyConvNet input size %d must be even", size)
	}
	half := size / 2
	layers := []Layer{
		NewConv2D(name+"/conv", channels, 4, 3, 1, 1),
		NewReLU(name + "/relu"),
		NewMaxPool2D(name+"/pool", 2, 2),
		NewFlatten(name + "/flat"),
		NewDense(name+"/fc", 4*half*half, classes),
	}
	return NewNetwork(name, []int{channels, size, size}, layers...)
}
