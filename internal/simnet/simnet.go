// Package simnet is a deterministic discrete-event network/compute fabric.
// It substitutes for the paper's physical testbed (56 Gbps FDR Infiniband,
// PCIe buses, GPUs): processes are cooperative coroutines that sleep for
// compute durations and move bytes through links; concurrent transfers share
// link bandwidth max-min fairly. All timing experiments (Figs. 7, 9, 10,
// 12–15) run on this fabric in virtual time, so they are exact, repeatable,
// and finish in milliseconds of wall clock.
package simnet

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Link is one shared transmission resource: an HCA port, a switch hop, or a
// PCIe bus. Bandwidth is in bytes per second of payload after protocol
// efficiency; Latency is the one-way propagation+setup delay added once per
// transfer crossing the link.
type Link struct {
	Name      string
	Bandwidth float64 // bytes/sec
	Latency   time.Duration
}

// NewLink validates and returns a link.
func NewLink(name string, bandwidth float64, latency time.Duration) (*Link, error) {
	if bandwidth <= 0 {
		return nil, fmt.Errorf("simnet: link %q bandwidth %v must be positive", name, bandwidth)
	}
	if latency < 0 {
		return nil, fmt.Errorf("simnet: link %q negative latency", name)
	}
	return &Link{Name: name, Bandwidth: bandwidth, Latency: latency}, nil
}

// flow is one in-flight transfer.
type flow struct {
	proc      *Proc
	links     []*Link
	remaining float64 // bytes
	rate      float64 // bytes/sec, recomputed on any flow-set change
	maxRate   float64 // per-flow cap (0 = uncapped)
	seq       int64
}

// yieldKind tells the scheduler why a process stopped running.
type yieldKind int

const (
	yieldSleep yieldKind = iota + 1
	yieldTransfer
	yieldDone
	yieldSpawn
)

type yieldMsg struct {
	kind  yieldKind
	proc  *Proc
	until time.Duration // for yieldSleep: absolute wake time
	fl    *flow         // for yieldTransfer
	child *Proc         // for yieldSpawn
}

// Proc is one simulated process (a worker's main thread, an update thread,
// an SMB server loop...). Its methods may only be called from inside the
// process function itself.
type Proc struct {
	id     int
	name   string
	sim    *Simulation
	resume chan struct{}
	fn     func(*Proc)
}

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.sim.now }

// Sleep advances the process by d of virtual time (e.g., a GPU compute
// phase).
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.sim.yield <- yieldMsg{kind: yieldSleep, proc: p, until: p.sim.now + d}
	<-p.resume
}

// Transfer moves bytes across the given links, blocking in virtual time
// until the transfer completes. The transfer shares each link's bandwidth
// max-min fairly with every other in-flight transfer.
func (p *Proc) Transfer(bytes float64, links ...*Link) {
	p.TransferCapped(bytes, 0, links...)
}

// TransferCapped is Transfer with a per-flow rate cap in bytes/sec
// (0 = uncapped). The cap models per-connection limits such as a single
// RDMA queue pair's message-rate ceiling.
func (p *Proc) TransferCapped(bytes, maxRate float64, links ...*Link) {
	if len(links) == 0 {
		panic("simnet: transfer without links")
	}
	var latency time.Duration
	for _, l := range links {
		latency += l.Latency
	}
	if latency > 0 {
		p.Sleep(latency)
	}
	if bytes <= 0 {
		return
	}
	f := &flow{
		proc:      p,
		links:     links,
		remaining: bytes,
		maxRate:   maxRate,
		seq:       p.sim.nextSeq(),
	}
	p.sim.yield <- yieldMsg{kind: yieldTransfer, proc: p, fl: f}
	<-p.resume
}

// Spawn starts a child process that joins the simulation immediately. Use
// it for dynamically created workers (e.g., per-request server handlers).
func (p *Proc) Spawn(name string, fn func(*Proc)) {
	child := p.sim.newProc(name, fn)
	p.sim.yield <- yieldMsg{kind: yieldSpawn, proc: p, child: child}
	<-p.resume
}

// timer is a pending sleep wake-up.
type timer struct {
	at   time.Duration
	seq  int64
	proc *Proc
}

type timerHeap []timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(timer)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Simulation owns virtual time and the event loop. Create with New, add
// root processes with Go, then call Run from a single goroutine.
type Simulation struct {
	now    time.Duration
	seq    int64
	yield  chan yieldMsg
	ready  []*Proc
	timers timerHeap
	flows  []*flow
	nProcs int
}

// New returns an empty simulation at time zero.
func New() *Simulation {
	return &Simulation{yield: make(chan yieldMsg)}
}

// Now returns the current virtual time.
func (s *Simulation) Now() time.Duration { return s.now }

func (s *Simulation) nextSeq() int64 {
	s.seq++
	return s.seq
}

func (s *Simulation) newProc(name string, fn func(*Proc)) *Proc {
	s.nProcs++
	return &Proc{
		id:     s.nProcs,
		name:   name,
		sim:    s,
		resume: make(chan struct{}),
		fn:     fn,
	}
}

// Go registers a root process. Must be called before Run.
func (s *Simulation) Go(name string, fn func(*Proc)) {
	p := s.newProc(name, fn)
	s.ready = append(s.ready, p)
}

// Run executes the simulation until every process has finished. It returns
// an error if processes remain blocked with no pending events (a virtual
// deadlock, which indicates a bug in the modeled protocol).
func (s *Simulation) Run() error {
	live := 0
	for {
		// Run every ready process until it blocks.
		for len(s.ready) > 0 {
			p := s.ready[0]
			s.ready = s.ready[1:]
			if p.fn != nil {
				// First activation: start the goroutine.
				fn := p.fn
				p.fn = nil
				live++
				go func(p *Proc, fn func(*Proc)) {
					<-p.resume
					fn(p)
					s.yield <- yieldMsg{kind: yieldDone, proc: p}
				}(p, fn)
			}
			p.resume <- struct{}{}
			s.handleYields(&live)
		}
		if live == 0 && len(s.timers) == 0 && len(s.flows) == 0 {
			return nil
		}
		if err := s.advance(); err != nil {
			return err
		}
	}
}

// handleYields receives one yield from the currently running process and
// applies it. Spawn keeps the same process running after registering the
// child, so it loops until the process genuinely blocks or finishes.
// The return value reports whether the process finished.
func (s *Simulation) handleYields(live *int) bool {
	for {
		msg := <-s.yield
		switch msg.kind {
		case yieldSleep:
			heap.Push(&s.timers, timer{at: msg.until, seq: s.nextSeq(), proc: msg.proc})
			return false
		case yieldTransfer:
			s.flows = append(s.flows, msg.fl)
			s.recomputeRates()
			return false
		case yieldSpawn:
			s.ready = append(s.ready, msg.child)
			msg.proc.resume <- struct{}{}
			// The spawning process keeps running; wait for its next yield.
		case yieldDone:
			*live--
			return true
		case yieldBlock:
			// Parked on a synchronization primitive, which holds the
			// reference and will unblock it.
			return false
		default:
			panic("simnet: unknown yield kind")
		}
	}
}

// advance moves virtual time to the next event (timer expiry or flow
// completion) and readies the unblocked processes.
func (s *Simulation) advance() error {
	next := time.Duration(math.MaxInt64)
	if len(s.timers) > 0 && s.timers[0].at < next {
		next = s.timers[0].at
	}
	for _, f := range s.flows {
		if f.rate <= 0 {
			continue
		}
		fin := s.now + time.Duration(f.remaining/f.rate*float64(time.Second))
		if fin <= s.now {
			fin = s.now + 1 // guarantee progress at nanosecond granularity
		}
		if fin < next {
			next = fin
		}
	}
	if next == time.Duration(math.MaxInt64) {
		return fmt.Errorf("simnet: deadlock at %v: no pending events but work remains", s.now)
	}

	// Drain flow progress over [now, next].
	dt := (next - s.now).Seconds()
	s.now = next
	var stillActive []*flow
	var completed []*flow
	for _, f := range s.flows {
		f.remaining -= f.rate * dt
		if f.remaining <= 1e-9 {
			completed = append(completed, f)
		} else {
			stillActive = append(stillActive, f)
		}
	}
	s.flows = stillActive
	if len(completed) > 0 {
		s.recomputeRates()
	}

	// Expire timers (deterministic order: heap order is (time, seq)).
	for len(s.timers) > 0 && s.timers[0].at <= s.now {
		t := heap.Pop(&s.timers).(timer)
		s.ready = append(s.ready, t.proc)
	}
	// Completed flows wake after timers at the same instant; order among
	// them follows flow seq (creation order).
	for _, f := range completed {
		s.ready = append(s.ready, f.proc)
	}
	return nil
}

// recomputeRates runs progressive filling (water-filling) to assign each
// active flow its max-min fair rate, honoring per-flow caps.
func (s *Simulation) recomputeRates() {
	type linkState struct {
		cap   float64
		count int
	}
	states := make(map[*Link]*linkState)
	unsat := make([]*flow, 0, len(s.flows))
	for _, f := range s.flows {
		f.rate = 0
		unsat = append(unsat, f)
		for _, l := range f.links {
			st, ok := states[l]
			if !ok {
				st = &linkState{cap: l.Bandwidth}
				states[l] = st
			}
			st.count++
		}
	}
	for len(unsat) > 0 {
		// Bottleneck share: the smallest of per-link fair shares and
		// per-flow caps among unsaturated flows.
		share := math.MaxFloat64
		for _, st := range states {
			if st.count > 0 {
				if fs := st.cap / float64(st.count); fs < share {
					share = fs
				}
			}
		}
		// A capped flow below the link share saturates at its cap first.
		capLimited := false
		for _, f := range unsat {
			if f.maxRate > 0 && f.maxRate < share {
				share = f.maxRate
				capLimited = true
			}
		}
		if share <= 0 || share == math.MaxFloat64 {
			break
		}
		var still []*flow
		fixedAny := false
		for _, f := range unsat {
			// A flow is fixed at this level if it is cap-limited at
			// exactly this share, or crosses a link whose fair share
			// equals the bottleneck.
			atCap := f.maxRate > 0 && f.maxRate <= share
			onBottleneck := false
			if !capLimited {
				for _, l := range f.links {
					st := states[l]
					if st.count > 0 && st.cap/float64(st.count) <= share*(1+1e-12) {
						onBottleneck = true
						break
					}
				}
			}
			if atCap || onBottleneck {
				f.rate = share
				if atCap {
					f.rate = f.maxRate
				}
				fixedAny = true
				for _, l := range f.links {
					st := states[l]
					st.cap -= f.rate
					if st.cap < 0 {
						st.cap = 0
					}
					st.count--
				}
			} else {
				still = append(still, f)
			}
		}
		if !fixedAny {
			// Numerical corner: assign the bottleneck share to everyone.
			for _, f := range still {
				f.rate = share
			}
			break
		}
		unsat = still
	}
}
