package simnet

import (
	"math"
	"testing"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	s := New()
	var woke time.Duration
	s.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Second)
		woke = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 5*time.Second {
		t.Fatalf("woke at %v, want 5s", woke)
	}
	if s.Now() != 5*time.Second {
		t.Fatalf("sim time %v", s.Now())
	}
}

func TestSleepOrderingDeterministic(t *testing.T) {
	s := New()
	var order []string
	for _, spec := range []struct {
		name string
		d    time.Duration
	}{{"c", 3 * time.Second}, {"a", 1 * time.Second}, {"b", 2 * time.Second}} {
		name, d := spec.name, spec.d
		s.Go(name, func(p *Proc) {
			p.Sleep(d)
			order = append(order, name)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order %v", order)
	}
}

func TestSingleTransferTime(t *testing.T) {
	s := New()
	link, err := NewLink("hca", 1e9, time.Millisecond) // 1 GB/s, 1 ms latency
	if err != nil {
		t.Fatal(err)
	}
	s.Go("sender", func(p *Proc) {
		p.Transfer(1e9, link) // 1 GB
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := time.Second + time.Millisecond
	if diff := s.Now() - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("transfer took %v, want ~%v", s.Now(), want)
	}
}

// TestFairSharing: two equal flows on one link each get half the bandwidth,
// so both finish in 2× the solo time.
func TestFairSharing(t *testing.T) {
	s := New()
	link, _ := NewLink("hca", 1e9, 0)
	finish := make([]time.Duration, 2)
	for i := 0; i < 2; i++ {
		i := i
		s.Go("w", func(p *Proc) {
			p.Transfer(1e9, link)
			finish[i] = p.Now()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, f := range finish {
		if math.Abs(f.Seconds()-2) > 0.01 {
			t.Fatalf("flow %d finished at %v, want ~2s", i, f)
		}
	}
}

// TestStaggeredFlows: flow B (0.5 GB) starts at t=0.5s while A (1 GB at
// 1 GB/s) is in flight. A runs alone for 0.5 s (0.5 GB done), then both
// share at 0.5 GB/s; each has exactly 0.5 GB left, so both finish at 1.5 s.
func TestStaggeredFlows(t *testing.T) {
	s := New()
	link, _ := NewLink("hca", 1e9, 0)
	var aDone, bDone time.Duration
	s.Go("a", func(p *Proc) {
		p.Transfer(1e9, link)
		aDone = p.Now()
	})
	s.Go("b", func(p *Proc) {
		p.Sleep(500 * time.Millisecond)
		p.Transfer(0.5e9, link)
		bDone = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(aDone.Seconds()-1.5) > 0.01 {
		t.Fatalf("A finished at %v, want 1.5s", aDone)
	}
	if math.Abs(bDone.Seconds()-1.5) > 0.01 {
		t.Fatalf("B finished at %v, want 1.5s", bDone)
	}
}

// TestPerFlowCap: a capped flow cannot exceed its cap even on an idle link.
func TestPerFlowCap(t *testing.T) {
	s := New()
	link, _ := NewLink("hca", 10e9, 0)
	s.Go("capped", func(p *Proc) {
		p.TransferCapped(1e9, 0.5e9, link) // 1 GB at most 0.5 GB/s
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Now().Seconds()-2) > 0.01 {
		t.Fatalf("capped transfer took %v, want 2s", s.Now())
	}
}

// TestMultiLinkBottleneck: a flow crossing two links is limited by the
// slower one.
func TestMultiLinkBottleneck(t *testing.T) {
	s := New()
	fast, _ := NewLink("fast", 10e9, 0)
	slow, _ := NewLink("slow", 1e9, 0)
	s.Go("w", func(p *Proc) {
		p.Transfer(2e9, fast, slow)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Now().Seconds()-2) > 0.01 {
		t.Fatalf("two-link transfer took %v, want 2s", s.Now())
	}
}

// TestWaterFillingUnevenPaths: flows A (shared bottleneck) and B (private
// fast path) — B should get the leftover bandwidth of the fast link.
// Topology: linkX 3 GB/s shared by A and B; linkY 1 GB/s crossed only by A.
// Max-min: A gets 1 GB/s (linkY), B gets 2 GB/s (remainder of linkX).
func TestWaterFillingUnevenPaths(t *testing.T) {
	s := New()
	linkX, _ := NewLink("x", 3e9, 0)
	linkY, _ := NewLink("y", 1e9, 0)
	var aDone, bDone time.Duration
	s.Go("a", func(p *Proc) {
		p.Transfer(1e9, linkX, linkY)
		aDone = p.Now()
	})
	s.Go("b", func(p *Proc) {
		p.Transfer(2e9, linkX)
		bDone = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(aDone.Seconds()-1) > 0.02 {
		t.Fatalf("A finished at %v, want ~1s", aDone)
	}
	if math.Abs(bDone.Seconds()-1) > 0.02 {
		t.Fatalf("B finished at %v, want ~1s", bDone)
	}
}

func TestSpawn(t *testing.T) {
	s := New()
	var childRan bool
	s.Go("parent", func(p *Proc) {
		p.Spawn("child", func(c *Proc) {
			c.Sleep(time.Second)
			childRan = true
		})
		p.Sleep(2 * time.Second)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("spawned child did not run")
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("sim ended at %v", s.Now())
	}
}

func TestSemaphoreMutualExclusion(t *testing.T) {
	s := New()
	mu := s.NewSemaphore(1)
	var inside, maxInside int
	for i := 0; i < 4; i++ {
		s.Go("w", func(p *Proc) {
			mu.Acquire(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(time.Second)
			inside--
			mu.Release()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("critical section concurrency %d, want 1", maxInside)
	}
	if s.Now() != 4*time.Second {
		t.Fatalf("serialized sections took %v, want 4s", s.Now())
	}
}

func TestBarrier(t *testing.T) {
	s := New()
	b, err := s.NewBarrier(3)
	if err != nil {
		t.Fatal(err)
	}
	var after []time.Duration
	for i := 0; i < 3; i++ {
		d := time.Duration(i+1) * time.Second
		s.Go("w", func(p *Proc) {
			p.Sleep(d)
			b.Wait(p)
			after = append(after, p.Now())
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, a := range after {
		if a != 3*time.Second {
			t.Fatalf("barrier released at %v, want 3s", a)
		}
	}
	if _, err := s.NewBarrier(0); err == nil {
		t.Fatal("expected error for barrier size 0")
	}
}

func TestBarrierReusable(t *testing.T) {
	s := New()
	b, _ := s.NewBarrier(2)
	var rounds int
	for i := 0; i < 2; i++ {
		s.Go("w", func(p *Proc) {
			for r := 0; r < 3; r++ {
				p.Sleep(time.Second)
				b.Wait(p)
			}
			rounds++
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if rounds != 2 {
		t.Fatalf("rounds %d", rounds)
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("3 barrier rounds took %v", s.Now())
	}
}

func TestQueueFIFOAndBlocking(t *testing.T) {
	s := New()
	q := NewQueue[int](s)
	var got []int
	s.Go("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			v, ok := q.Pop(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	s.Go("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(time.Second)
			q.Push(i)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("queue order %v", got)
	}
}

func TestQueueClose(t *testing.T) {
	s := New()
	q := NewQueue[int](s)
	var sawClose bool
	s.Go("consumer", func(p *Proc) {
		if _, ok := q.Pop(p); ok {
			t.Error("expected closed queue")
		} else {
			sawClose = true
		}
	})
	s.Go("closer", func(p *Proc) {
		p.Sleep(time.Second)
		q.Close()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawClose {
		t.Fatal("consumer never observed close")
	}
}

func TestEvent(t *testing.T) {
	s := New()
	ev := s.NewEvent()
	var woke time.Duration
	s.Go("waiter", func(p *Proc) {
		ev.Wait(p)
		woke = p.Now()
		ev.Wait(p) // second wait on fired event returns immediately
	})
	s.Go("firer", func(p *Proc) {
		p.Sleep(2 * time.Second)
		ev.Fire()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 2*time.Second {
		t.Fatalf("event woke at %v", woke)
	}
	if !ev.Fired() {
		t.Fatal("event not marked fired")
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New()
	mu := s.NewSemaphore(0) // never released
	s.Go("stuck", func(p *Proc) {
		mu.Acquire(p)
	})
	if err := s.Run(); err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestNewLinkValidation(t *testing.T) {
	if _, err := NewLink("bad", 0, 0); err == nil {
		t.Fatal("expected error for zero bandwidth")
	}
	if _, err := NewLink("bad", 1, -time.Second); err == nil {
		t.Fatal("expected error for negative latency")
	}
}

// TestAggregateBandwidthScales is a miniature of Fig. 7: N clients pushing
// through a shared server link reach the link capacity regardless of N.
func TestAggregateBandwidthScales(t *testing.T) {
	for _, n := range []int{2, 8, 32} {
		s := New()
		server, _ := NewLink("server", 7e9, 0)
		per := 1e9 // 1 GB each
		for i := 0; i < n; i++ {
			s.Go("client", func(p *Proc) {
				p.Transfer(per, server)
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		aggBW := float64(n) * per / s.Now().Seconds()
		if math.Abs(aggBW-7e9)/7e9 > 0.02 {
			t.Fatalf("n=%d aggregate %v B/s, want ~7e9", n, aggBW)
		}
	}
}

func TestZeroByteTransferIsLatencyOnly(t *testing.T) {
	s := New()
	link, _ := NewLink("l", 1e9, time.Millisecond)
	s.Go("w", func(p *Proc) {
		p.Transfer(0, link)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Now() != time.Millisecond {
		t.Fatalf("zero-byte transfer took %v, want 1ms", s.Now())
	}
}
