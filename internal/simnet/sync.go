package simnet

import "fmt"

// Synchronization primitives for simulated processes. Exactly one goroutine
// (either the scheduler or the single running process) executes at a time,
// with happens-before edges through the yield/resume channels, so these
// primitives mutate scheduler state directly without locks.

// yieldBlock parks a process until some primitive calls unblock.
const yieldBlock yieldKind = 100

func (p *Proc) block() {
	p.sim.yield <- yieldMsg{kind: yieldBlock, proc: p}
	<-p.resume
}

func (s *Simulation) unblock(p *Proc) {
	s.ready = append(s.ready, p)
}

// Semaphore is a counting semaphore in virtual time. A Semaphore with
// capacity 1 is the mutex guarding SEASGD's T1+T2 vs T.A1–T.A4 critical
// sections (Fig. 6).
type Semaphore struct {
	sim     *Simulation
	count   int
	waiters []*Proc
}

// NewSemaphore returns a semaphore with the given initial count.
func (s *Simulation) NewSemaphore(count int) *Semaphore {
	if count < 0 {
		count = 0
	}
	return &Semaphore{sim: s, count: count}
}

// Acquire takes one unit, blocking the calling process in virtual time if
// none is available.
func (m *Semaphore) Acquire(p *Proc) {
	if m.count > 0 {
		m.count--
		return
	}
	m.waiters = append(m.waiters, p)
	p.block()
}

// Release returns one unit, waking the longest-waiting process if any.
func (m *Semaphore) Release() {
	if len(m.waiters) > 0 {
		next := m.waiters[0]
		m.waiters = m.waiters[1:]
		m.sim.unblock(next)
		return
	}
	m.count++
}

// Barrier releases all participants once the last one arrives — the
// synchronization point of SSGD gradient aggregation.
type Barrier struct {
	sim     *Simulation
	n       int
	arrived int
	waiters []*Proc
	gen     int
}

// NewBarrier returns a reusable barrier for n participants.
func (s *Simulation) NewBarrier(n int) (*Barrier, error) {
	if n < 1 {
		return nil, fmt.Errorf("simnet: barrier size %d < 1", n)
	}
	return &Barrier{sim: s, n: n}, nil
}

// Wait blocks the calling process until all n participants have arrived.
func (b *Barrier) Wait(p *Proc) {
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		for _, w := range b.waiters {
			b.sim.unblock(w)
		}
		b.waiters = b.waiters[:0]
		return
	}
	b.waiters = append(b.waiters, p)
	p.block()
}

// Queue is an unbounded FIFO message queue between simulated processes;
// the request channel of the SMB server model.
type Queue[T any] struct {
	sim     *Simulation
	items   []T
	waiters []*Proc
	closed  bool
}

// NewQueue returns an empty queue.
func NewQueue[T any](s *Simulation) *Queue[T] {
	return &Queue[T]{sim: s}
}

// Push appends an item, waking one waiting receiver.
func (q *Queue[T]) Push(item T) {
	if q.closed {
		panic("simnet: push to closed queue")
	}
	q.items = append(q.items, item)
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.sim.unblock(w)
	}
}

// Pop removes the oldest item, blocking the calling process in virtual time
// until one is available. ok is false if the queue was closed and drained.
func (q *Queue[T]) Pop(p *Proc) (item T, ok bool) {
	for len(q.items) == 0 {
		if q.closed {
			var zero T
			return zero, false
		}
		q.waiters = append(q.waiters, p)
		p.block()
	}
	item = q.items[0]
	q.items = q.items[1:]
	return item, true
}

// Close marks the queue closed and wakes all waiting receivers, which will
// observe ok == false once drained.
func (q *Queue[T]) Close() {
	q.closed = true
	for _, w := range q.waiters {
		q.sim.unblock(w)
	}
	q.waiters = nil
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Event is a one-shot broadcast signal (e.g., "all workers finished").
type Event struct {
	sim     *Simulation
	fired   bool
	waiters []*Proc
}

// NewEvent returns an unfired event.
func (s *Simulation) NewEvent() *Event {
	return &Event{sim: s}
}

// Fired reports whether Fire has been called.
func (e *Event) Fired() bool { return e.fired }

// Wait blocks the calling process until the event fires (returns
// immediately if it already has).
func (e *Event) Wait(p *Proc) {
	if e.fired {
		return
	}
	e.waiters = append(e.waiters, p)
	p.block()
}

// Fire fires the event, waking all waiters. Subsequent Wait calls return
// immediately.
func (e *Event) Fire() {
	if e.fired {
		return
	}
	e.fired = true
	for _, w := range e.waiters {
		e.sim.unblock(w)
	}
	e.waiters = nil
}
