package simnet

import (
	"testing"
	"testing/quick"
	"time"

	"shmcaffe/internal/tensor"
)

// Property: a single link never moves bytes faster than its capacity —
// for any random set of flows, total bytes / makespan ≤ bandwidth (within
// float tolerance), and the simulation is deterministic.
func TestLinkCapacityNeverExceeded(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 1 + rng.Intn(12)
		bw := 1e8 + rng.Float64()*1e9

		run := func() (time.Duration, float64) {
			s := New()
			link, err := NewLink("l", bw, 0)
			if err != nil {
				return 0, 0
			}
			total := 0.0
			for i := 0; i < n; i++ {
				bytes := 1e6 + rng.Float64()*1e8
				delay := time.Duration(rng.Intn(1000)) * time.Microsecond
				total += bytes
				s.Go("w", func(p *Proc) {
					p.Sleep(delay)
					p.Transfer(bytes, link)
				})
			}
			if err := s.Run(); err != nil {
				return 0, 0
			}
			return s.Now(), total
		}
		elapsed, total := run()
		if elapsed <= 0 {
			return false
		}
		rate := total / elapsed.Seconds()
		return rate <= bw*1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the simulation is deterministic — same program, same virtual
// end time, every time.
func TestSimulationDeterministic(t *testing.T) {
	build := func() *Simulation {
		s := New()
		link, _ := NewLink("l", 1e9, time.Microsecond)
		sem := s.NewSemaphore(1)
		for i := 0; i < 6; i++ {
			i := i
			s.Go("w", func(p *Proc) {
				p.Sleep(time.Duration(i) * time.Millisecond)
				sem.Acquire(p)
				p.Transfer(1e7*float64(i+1), link)
				sem.Release()
			})
		}
		return s
	}
	s1 := build()
	if err := s1.Run(); err != nil {
		t.Fatal(err)
	}
	s2 := build()
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	if s1.Now() != s2.Now() {
		t.Fatalf("nondeterministic: %v vs %v", s1.Now(), s2.Now())
	}
}

// Property: makespan of serialized (semaphore-guarded) sleeps equals the
// sum of durations, regardless of start order.
func TestSemaphoreSerializationExact(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 1 + rng.Intn(8)
		s := New()
		sem := s.NewSemaphore(1)
		var total time.Duration
		for i := 0; i < n; i++ {
			d := time.Duration(1+rng.Intn(1000)) * time.Microsecond
			total += d
			s.Go("w", func(p *Proc) {
				sem.Acquire(p)
				p.Sleep(d)
				sem.Release()
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		return s.Now() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
