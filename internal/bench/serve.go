package bench

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shmcaffe/internal/smb"
	"shmcaffe/internal/tensor"
	"shmcaffe/internal/trace"
)

// Serving benchmark (DESIGN.md §17): read latency under an accumulate-heavy
// write storm — the train-and-serve-from-one-buffer scenario. A separate
// server process hosts a 1 MiB Wg; one connection storms fused
// WRITE+ACCUMULATE pushes at it flat out while a second connection samples
// two read disciplines:
//
//   - live Read: the seed's only option — fast, but per-stripe atomic, so
//     a multi-stripe read under this storm is routinely torn;
//   - snapshot read: Snapshot + SnapRead of the pinned cut — the
//     consistent path the inference frontend (cmd/shmserve) actually uses.
//
// p50/p99 come from raw latency samples (the telemetry histograms bucket
// too coarsely for tail comparison at microsecond scale). A final
// in-process row pins the hot-path allocation contract: SnapRead against a
// COW-backed snapshot is 0 allocs/op even while a writer storms.

// serveBenchVals sizes the served segment: 1 MiB spans 16 lock stripes —
// enough that a torn live read is not a corner case.
const serveBenchVals = 1 << 18

// serveSamples is the per-discipline sample count (quick mode trims it).
const serveSamples = 400

// percentileNs returns the p-th percentile (0..100) of the sorted samples.
func percentileNs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(sorted)-1))
	return float64(sorted[idx].Nanoseconds())
}

// sampleLatencies runs fn n times, returning the sorted per-call latencies.
func sampleLatencies(n int, fn func() error) ([]time.Duration, error) {
	out := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			return nil, err
		}
		out = append(out, time.Since(t0))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// serveRows appends the serve/* percentile rows for one discipline.
func serveRows(rep *KernelReport, name string, logicalBytes int64, sorted []time.Duration) {
	for _, pt := range []struct {
		label string
		p     float64
	}{{"p50", 50}, {"p99", 99}} {
		ns := percentileNs(sorted, pt.p)
		kr := KernelResult{
			Name:    fmt.Sprintf("serve/%s/1MiB/%s", name, pt.label),
			NsPerOp: ns,
		}
		if logicalBytes > 0 && ns > 0 {
			kr.MBPerSec = float64(logicalBytes) / ns * 1e9 / (1 << 20)
		}
		rep.Results = append(rep.Results, kr)
	}
}

// ServeBench appends the serving rows to rep: live-read and snapshot-read
// p50/p99 under a separate-process accumulate storm, the snapshot-cycle
// cost, and the local zero-alloc row. quick trims the sample counts.
func ServeBench(rep *KernelReport, quick bool) error {
	samples := serveSamples
	if quick {
		samples = 120
	}
	addr, _, stop, err := spawnBenchServer("tcp")
	if err != nil {
		return err
	}
	defer stop()

	reader, err := smb.Dial(addr)
	if err != nil {
		return err
	}
	defer reader.Close()
	writer, err := smb.Dial(addr)
	if err != nil {
		return err
	}
	defer writer.Close()

	size := serveBenchVals * 4
	gKey, err := reader.Create("serve/wg", size)
	if err != nil {
		return err
	}
	hg, err := reader.Attach(gKey)
	if err != nil {
		return err
	}
	dKey, err := reader.Create("serve/dw", size)
	if err != nil {
		return err
	}
	whg, err := writer.Attach(gKey)
	if err != nil {
		return err
	}
	whd, err := writer.Attach(dKey)
	if err != nil {
		return err
	}

	grad := make([]float32, serveBenchVals)
	kernelFill(grad, 13)
	raw := tensor.Float32Bytes(grad)

	// The storm: fused 1 MiB pushes, back to back, on their own connection.
	var stormStop atomic.Bool
	var stormErr atomic.Pointer[error]
	var stormWG sync.WaitGroup
	stormWG.Add(1)
	go func() {
		defer stormWG.Done()
		for !stormStop.Load() {
			if err := writer.WriteAccumulate(whg, whd, raw); err != nil {
				stormErr.Store(&err)
				return
			}
		}
	}()
	defer func() { stormStop.Store(true); stormWG.Wait() }()

	buf := make([]byte, size)

	// Live reads: the torn baseline.
	live, err := sampleLatencies(samples, func() error {
		return reader.Read(hg, 0, buf)
	})
	if err != nil {
		return err
	}
	serveRows(rep, "live_read", int64(size), live)

	// Snapshot reads against a pinned cut, re-cut every 50 reads — the
	// refresh cadence an inference frontend runs at.
	info, err := reader.Snapshot(hg)
	if err != nil {
		return err
	}
	reads := 0
	snap, err := sampleLatencies(samples, func() error {
		if reads > 0 && reads%50 == 0 {
			if err := reader.SnapRelease(info.ID); err != nil {
				return err
			}
			if info, err = reader.Snapshot(hg); err != nil {
				return err
			}
		}
		reads++
		return reader.SnapRead(info.ID, 0, buf)
	})
	if err != nil {
		return err
	}
	if err := reader.SnapRelease(info.ID); err != nil {
		return err
	}
	serveRows(rep, "snap_read", int64(size), snap)

	// The cut itself: Snapshot + SnapRelease, no reads.
	cycle, err := sampleLatencies(samples/4, func() error {
		in, err := reader.Snapshot(hg)
		if err != nil {
			return err
		}
		return reader.SnapRelease(in.ID)
	})
	if err != nil {
		return err
	}
	serveRows(rep, "snapshot_cycle", 0, cycle)
	if e := stormErr.Load(); e != nil {
		return fmt.Errorf("serve bench storm: %w", *e)
	}

	if tornP99, snapP99 := percentileNs(live, 99), percentileNs(snap, 99); tornP99 > 0 && snapP99 > 0 {
		rep.Speedups["serve/snap_read_vs_live_read/p99"] = tornP99 / snapP99
	}

	// Local zero-alloc row: SnapRead of a COW-backed snapshot while a
	// writer storms in-process. AllocsPerOp lands in the JSON — 0 is the
	// serving contract (check.sh tier 2 pins the same property by test).
	store := smb.NewStore()
	key, err := store.Create("serve/local", size)
	if err != nil {
		return err
	}
	h, err := store.Attach(key)
	if err != nil {
		return err
	}
	if err := store.Write(h, 0, raw); err != nil {
		return err
	}
	in, err := store.Snapshot(h)
	if err != nil {
		return err
	}
	var localStop atomic.Bool
	var localWG sync.WaitGroup
	localWG.Add(1)
	go func() {
		defer localWG.Done()
		for !localStop.Load() {
			if err := store.Write(h, 0, raw); err != nil {
				return
			}
		}
	}()
	r := testing.Benchmark(func(bb *testing.B) {
		bb.ReportAllocs()
		for i := 0; i < bb.N; i++ {
			if err := store.SnapRead(in.ID, 0, buf); err != nil {
				bb.Fatal(err)
			}
		}
	})
	localStop.Store(true)
	localWG.Wait()
	if err := store.SnapRelease(in.ID); err != nil {
		return err
	}
	rep.Results = append(rep.Results, benchResult("serve/snap_read_local/1MiB", int64(size), r))
	return nil
}

// ServeTable renders the serve/* rows of a report as the README's
// "Serving" exhibit.
func ServeTable(rep *KernelReport) *trace.Table {
	t := trace.New("Serving: read latency under a 1 MiB accumulate storm (separate-process server)",
		"row", "ns/op", "MB/s", "allocs/op")
	for _, r := range rep.Results {
		if len(r.Name) < 6 || r.Name[:6] != "serve/" {
			continue
		}
		mb := ""
		if r.MBPerSec > 0 {
			mb = fmt.Sprintf("%.1f", r.MBPerSec)
		}
		t.Add(r.Name, fmt.Sprintf("%.0f", r.NsPerOp), mb, fmt.Sprintf("%d", r.AllocsPerOp))
	}
	return t
}
