package bench

import (
	"fmt"

	"shmcaffe/internal/nn"
	"shmcaffe/internal/perfmodel"
	"shmcaffe/internal/trace"
)

// FutureWorkMultiServer quantifies the paper's Sec. V future work: striping
// the parameter vector across multiple SMB servers. Rows show the 16-worker
// iteration time of the two largest models as the server count grows.
func FutureWorkMultiServer(hw perfmodel.Hardware) (*trace.Table, error) {
	t := trace.New("Future work: multiple SMB servers (16 workers)",
		"Model", "Servers", "Iter (ms)", "Comm (ms)", "Comm ratio")
	for _, p := range []nn.Profile{nn.InceptionResNetV2, nn.VGG16} {
		for _, servers := range []int{1, 2, 4, 8} {
			b, err := perfmodel.SimulateSEASGDMultiServer(p, 16, servers, simIters, hw)
			if err != nil {
				return nil, fmt.Errorf("multi-server %s k=%d: %w", p.Name, servers, err)
			}
			t.Add(p.Name, trace.Itoa(servers), trace.Ms(b.Iter), trace.Ms(b.Comm),
				trace.Pct(b.CommRatio()))
		}
	}
	return t, nil
}

// AblationLayerwiseOverlap quantifies a baseline improvement the paper's
// setup lacks (Sec. IV-C: aggregation "does not conduct gradient
// computations in each DNN layer"): pipelining the MPI allreduce behind
// the backward pass, Horovod-style, and how ShmCaffe compares against
// that stronger baseline.
func AblationLayerwiseOverlap(hw perfmodel.Hardware) (*trace.Table, error) {
	t := trace.New("Ablation: layer-wise allreduce overlap in the MPI baseline (16 workers)",
		"Model", "MPICaffe (ms)", "MPICaffe pipelined (ms)", "ShmCaffe-H (ms)")
	for _, p := range nn.PaperModels() {
		plain, err := perfmodel.SimulateMPICaffe(p, 16, simIters, hw)
		if err != nil {
			return nil, err
		}
		pipe, err := perfmodel.SimulateMPICaffeLayerwise(p, 16, 8, simIters, hw)
		if err != nil {
			return nil, err
		}
		shm, err := perfmodel.SimulateHSGD(p, []int{4, 4, 4, 4}, simIters, hw)
		if err != nil {
			return nil, err
		}
		t.Add(p.Name, trace.Ms(plain.Iter), trace.Ms(pipe.Iter), trace.Ms(shm.Iter))
	}
	return t, nil
}

// StragglerSensitivity quantifies the Sec. II motivation for asynchrony:
// under per-iteration compute jitter, the synchronous barrier pays the
// slowest worker while SEASGD pays only local jitter.
func StragglerSensitivity(hw perfmodel.Hardware) (*trace.Table, error) {
	t := trace.New("Straggler sensitivity: SSGD vs SEASGD under compute jitter (Inception-v1, 16 workers)",
		"Jitter model", "SSGD iter (ms)", "SSGD slowdown", "SEASGD iter (ms)", "SEASGD slowdown")
	const workers = 16
	const iters = 60
	p := nn.InceptionV1

	// Clean baselines use the same simulation path with zero jitter so
	// the slowdown column isolates the jitter effect.
	zero := perfmodel.StragglerModel{Seed: 1}
	ssgdClean, err := perfmodel.SimulateSSGDWithStragglers(p, workers, iters, hw, zero)
	if err != nil {
		return nil, err
	}
	seasgdClean, err := perfmodel.SimulateSEASGDWithStragglers(p, workers, iters, hw, zero)
	if err != nil {
		return nil, err
	}
	models := []struct {
		label string
		m     perfmodel.StragglerModel
	}{
		{"none", perfmodel.StragglerModel{Seed: 1}},
		{"sigma 0.1, 2% 3x", perfmodel.DefaultStragglers()},
		{"sigma 0.15, 5% 4x", perfmodel.StragglerModel{Sigma: 0.15, SlowProb: 0.05, SlowFactor: 4, Seed: 3}},
		{"sigma 0.3, 10% 5x", perfmodel.StragglerModel{Sigma: 0.3, SlowProb: 0.1, SlowFactor: 5, Seed: 5}},
	}
	for _, entry := range models {
		ssgd, err := perfmodel.SimulateSSGDWithStragglers(p, workers, iters, hw, entry.m)
		if err != nil {
			return nil, err
		}
		seasgd, err := perfmodel.SimulateSEASGDWithStragglers(p, workers, iters, hw, entry.m)
		if err != nil {
			return nil, err
		}
		t.Add(entry.label,
			trace.Ms(ssgd.Iter),
			trace.F2(ssgd.Iter.Seconds()/ssgdClean.Iter.Seconds())+"x",
			trace.Ms(seasgd.Iter),
			trace.F2(seasgd.Iter.Seconds()/seasgdClean.Iter.Seconds())+"x")
	}
	return t, nil
}
