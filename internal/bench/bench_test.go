package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"shmcaffe/internal/perfmodel"
)

// renderToString renders a table for content assertions.
func renderToString(t *testing.T, tab interface {
	Render(w *bytes.Buffer) error
}) string {
	t.Helper()
	var b bytes.Buffer
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestTable1Hardware(t *testing.T) {
	tab := Table1Hardware()
	if len(tab.Rows) < 4 {
		t.Fatalf("Table I has %d rows", len(tab.Rows))
	}
	var b bytes.Buffer
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Memory Server#") {
		t.Fatal("Table I missing the SMB memory server row")
	}
}

func TestFig7Bandwidth(t *testing.T) {
	tab, err := Fig7Bandwidth(perfmodel.DefaultHardware())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("Fig. 7 has %d rows, want 5", len(tab.Rows))
	}
	// The last row (32 processes) must show ≈96 % utilization.
	last := tab.Rows[len(tab.Rows)-1]
	if !strings.HasPrefix(last[2], "9") {
		t.Fatalf("32-process utilization %q, want ≈96%%", last[2])
	}
}

func TestTable2TrainingTime(t *testing.T) {
	tab, err := Table2TrainingTime(perfmodel.DefaultHardware())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("Table II has %d rows", len(tab.Rows))
	}
	// Caffe 1 GPU ≈ 22:xx (Table II anchor).
	caffe := tab.Rows[0]
	if !strings.HasPrefix(caffe[1], "22:") && !strings.HasPrefix(caffe[1], "23:") {
		t.Fatalf("Caffe 1-GPU time %q, want ≈22:59", caffe[1])
	}
	// ShmCaffe's 16-GPU scalability must be the largest.
	shm := tab.Rows[3]
	shmScal := parseScal(t, shm[5])
	for _, row := range tab.Rows[:3] {
		if row[5] == "-" {
			continue
		}
		if parseScal(t, row[5]) >= shmScal {
			t.Fatalf("%s scalability %s >= ShmCaffe %s", row[0], row[5], shm[5])
		}
	}
	if shmScal < 7 {
		t.Fatalf("ShmCaffe 16-GPU scalability %.1f, paper: 10.1", shmScal)
	}
}

func parseScal(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
	if err != nil {
		t.Fatalf("parse scalability %q: %v", cell, err)
	}
	return v
}

func TestFig10CompComm(t *testing.T) {
	tab, err := Fig10CompComm(perfmodel.DefaultHardware())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("Fig. 10 has %d rows", len(tab.Rows))
	}
	// ShmCaffe's comm must be the smallest of the distributed platforms.
	comm := func(row []string) float64 {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("parse comm %q: %v", row[2], err)
		}
		return v
	}
	shm := comm(tab.Rows[3])
	if cmpi := comm(tab.Rows[1]); cmpi/shm < 3 {
		t.Fatalf("Caffe-MPI comm %.1f only %.1fx ShmCaffe's %.1f (paper: 5.3x)",
			cmpi, cmpi/shm, shm)
	}
}

func TestTable3And4AreStatic(t *testing.T) {
	if got := len(Table3Configs().Rows); got != 5 {
		t.Fatalf("Table III rows = %d", got)
	}
	tab4 := Table4Models()
	if len(tab4.Rows) != 4 {
		t.Fatalf("Table IV rows = %d", len(tab4.Rows))
	}
	var b bytes.Buffer
	if err := tab4.Render(&b); err != nil {
		t.Fatal(err)
	}
	for _, model := range []string{"inception_v1", "resnet_50", "inception_resnet_v2", "vgg16"} {
		if !strings.Contains(b.String(), model) {
			t.Fatalf("Table IV missing %s", model)
		}
	}
}

func TestTable5ShmCaffeA(t *testing.T) {
	tab, err := Table5ShmCaffeA(perfmodel.DefaultHardware())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 20 { // 4 models × 5 worker counts
		t.Fatalf("Table V rows = %d", len(tab.Rows))
	}
	// VGG16 at 2 workers must already be communication-bound (paper:
	// comm 727.7 ms > comp 194.9 ms).
	for _, row := range tab.Rows {
		if row[0] == "vgg16" && row[1] == "2" {
			comm, _ := strconv.ParseFloat(row[3], 64)
			comp, _ := strconv.ParseFloat(row[2], 64)
			if comm <= comp {
				t.Fatalf("VGG16@2: comm %.1f <= comp %.1f", comm, comp)
			}
			return
		}
	}
	t.Fatal("VGG16@2 row missing")
}

func TestTable6ShmCaffeH(t *testing.T) {
	tab, err := Table6ShmCaffeH(perfmodel.DefaultHardware())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 20 { // 4 models × 5 layouts
		t.Fatalf("Table VI rows = %d", len(tab.Rows))
	}
	// Inception-ResNet-v2 at 16(S4xA4) must be ≈30 % comm (paper: 30.7 %).
	for _, row := range tab.Rows {
		if row[0] == "inception_resnet_v2" && row[1] == "16(S4xA4)" {
			ratio := strings.TrimSuffix(row[5], "%")
			v, err := strconv.ParseFloat(ratio, 64)
			if err != nil {
				t.Fatal(err)
			}
			if v > 45 {
				t.Fatalf("IRv2 16(S4xA4) comm ratio %.1f%%, paper: ≈30%%", v)
			}
			return
		}
	}
	t.Fatal("IRv2 16(S4xA4) row missing")
}

func TestFig15AvsH(t *testing.T) {
	tab, err := Fig15AvsH(perfmodel.DefaultHardware())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 { // 4 models × 2 GPU counts
		t.Fatalf("Fig. 15 rows = %d", len(tab.Rows))
	}
	// At 16 GPUs, H must beat A for every model (the paper's conclusion).
	for _, row := range tab.Rows {
		if row[1] != "16" {
			continue
		}
		speedup, err := strconv.ParseFloat(strings.TrimSuffix(row[4], "x"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if speedup <= 1 {
			t.Fatalf("%s at 16 GPUs: H speedup %.2f <= 1", row[0], speedup)
		}
	}
}

func TestFig8Convergence(t *testing.T) {
	o := DefaultConvergenceOptions()
	o.Epochs = 3
	o.PerClass = 40
	tab, err := Fig8Convergence(4, o)
	if err != nil {
		t.Fatal(err)
	}
	// 4 platforms × 3 epochs.
	if len(tab.Rows) != 12 {
		t.Fatalf("Fig. 8 rows = %d", len(tab.Rows))
	}
}

func TestFig11AsyncVsHybrid(t *testing.T) {
	o := DefaultConvergenceOptions()
	o.Epochs = 3
	o.PerClass = 40
	tab, err := Fig11AsyncVsHybrid([]int{1, 4}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("Fig. 11 rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][3] != "-" {
		t.Fatal("1-worker row should have no hybrid column")
	}
}

func TestAblations(t *testing.T) {
	hw := perfmodel.DefaultHardware()
	overlap, err := AblationOverlap(hw)
	if err != nil {
		t.Fatal(err)
	}
	if len(overlap.Rows) != 4 {
		t.Fatalf("overlap ablation rows = %d", len(overlap.Rows))
	}
	hidden, err := AblationHiddenRead(hw)
	if err != nil {
		t.Fatal(err)
	}
	if len(hidden.Rows) != 4 {
		t.Fatalf("hidden-read ablation rows = %d", len(hidden.Rows))
	}
	interval, err := AblationUpdateInterval(hw)
	if err != nil {
		t.Fatal(err)
	}
	// Larger update_interval must lower the comm ratio monotonically.
	var prev float64 = 2
	for _, row := range interval.Rows {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if v > prev*100 {
			t.Fatalf("comm ratio not decreasing: %v", interval.Rows)
		}
		prev = v / 100
	}
	acc, err := AblationAccumulate(hw)
	if err != nil {
		t.Fatal(err)
	}
	// Server-side accumulate must never be slower than client RMW.
	for _, row := range acc.Rows {
		a, _ := strconv.ParseFloat(row[1], 64)
		r, _ := strconv.ParseFloat(row[2], 64)
		if a > r*1.01 {
			t.Fatalf("accumulate %.1f slower than RMW %.1f at %s workers", a, r, row[0])
		}
	}
	groups, err := AblationGroupSize(hw)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups.Rows) != 4 {
		t.Fatalf("group-size ablation rows = %d", len(groups.Rows))
	}
}

func TestTableRenderCSV(t *testing.T) {
	tab := Table4Models()
	var b bytes.Buffer
	if err := tab.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 5 { // header + 4 models
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "Model,") {
		t.Fatalf("CSV header %q", lines[0])
	}
}

func TestCharts(t *testing.T) {
	hw := perfmodel.DefaultHardware()
	for name, fn := range map[string]func() error{
		"fig7": func() error {
			c, err := Fig7Chart(hw)
			if err != nil {
				return err
			}
			var b bytes.Buffer
			return c.Render(&b)
		},
		"fig10": func() error {
			c, err := Fig10Chart(hw)
			if err != nil {
				return err
			}
			var b bytes.Buffer
			return c.Render(&b)
		},
		"fig13": func() error {
			c, err := Fig13Chart(16, hw)
			if err != nil {
				return err
			}
			var b bytes.Buffer
			return c.Render(&b)
		},
		"fig15": func() error {
			c, err := Fig15Chart(hw)
			if err != nil {
				return err
			}
			var b bytes.Buffer
			return c.Render(&b)
		},
	} {
		if err := fn(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
