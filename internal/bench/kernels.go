package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"shmcaffe/internal/smb"
	"shmcaffe/internal/tensor"
)

// Kernel microbenchmarks, run in-process through testing.Benchmark so that
// cmd/benchtables -kernels can emit BENCH_kernels.json without shelling
// out to the go toolchain. These measure the real kernels (the same code
// the *_bench_test.go files exercise), not the perfmodel: gemm scalar vs
// parallel, im2col/col2im as dispatched, and the SMB store data path.
//
// Results are machine-dependent by nature; the report therefore records
// GOMAXPROCS and NumCPU so a single-core run is not mistaken for a
// scaling claim.

// KernelResult is one benchmark line.
type KernelResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// KernelReport is the schema of BENCH_kernels.json.
type KernelReport struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// SimdBackend records which float32 backend the dispatched kernels ran
	// on ("avx2+fma" or "portable") — without it a portable-build rerun
	// would look like a regression against SIMD numbers.
	SimdBackend string             `json:"simd_backend"`
	Note        string             `json:"note,omitempty"`
	Results     []KernelResult     `json:"results"`
	Speedups    map[string]float64 `json:"speedups_parallel_vs_scalar"`
}

// singleCoreNote is attached when GOMAXPROCS is 1, where the pinned
// parallel kernels cannot show scaling. With the SIMD backend active the
// blocked kernel still wins on vector width alone; on the portable
// backend it can only lose to the scalar reference.
const singleCoreNote = "gemm/parallel entries pin the blocked parallel kernel for " +
	"comparison; with GOMAXPROCS=1 any gemm ratio above 1 is the SIMD microkernel's " +
	"vector-width win (see simd_backend), not scaling. " +
	"Re-run `benchtables -kernels` on a multi-core host for scaling numbers."

// kernelFill writes a deterministic mixed-magnitude pattern (including
// exact zeros, which the gemm kernels special-case).
func kernelFill(dst []float32, seed int) {
	for i := range dst {
		switch (i + seed) % 7 {
		case 0:
			dst[i] = 0
		case 1:
			dst[i] = float32(i%13) * 1e-3
		default:
			dst[i] = float32((i*31+seed)%17) - 8
		}
	}
}

func benchResult(name string, logicalBytes int64, r testing.BenchmarkResult) KernelResult {
	kr := KernelResult{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if logicalBytes > 0 && kr.NsPerOp > 0 {
		kr.MBPerSec = float64(logicalBytes) / kr.NsPerOp * 1e9 / (1 << 20)
	}
	return kr
}

// benchMin runs fn through testing.Benchmark k times and returns the run
// with the lowest ns/op. The comparison pairs (fused vs unfused, chunked vs
// split) are decided by sub-10% margins that scheduler steal time on a
// shared host can invert between back-to-back runs; the minimum is the
// least-disturbed measurement of each side.
func benchMin(k int, fn func(bb *testing.B)) testing.BenchmarkResult {
	best := testing.Benchmark(fn)
	bestNs := float64(best.T.Nanoseconds()) / float64(best.N)
	for i := 1; i < k; i++ {
		r := testing.Benchmark(fn)
		if ns := float64(r.T.Nanoseconds()) / float64(r.N); ns < bestNs {
			best, bestNs = r, ns
		}
	}
	return best
}

// benchGemmKernel benchmarks one raw gemm implementation at size s³.
func benchGemmKernel(fn func(m, n, k int, a, b, c []float32), s int) testing.BenchmarkResult {
	a := make([]float32, s*s)
	b := make([]float32, s*s)
	c := make([]float32, s*s)
	kernelFill(a, 1)
	kernelFill(b, 2)
	return testing.Benchmark(func(bb *testing.B) {
		bb.ReportAllocs()
		for i := 0; i < bb.N; i++ {
			fn(s, s, s, a, b, c)
		}
	})
}

// KernelBench runs the suite and returns the report. quick shortens the
// size list for smoke runs.
func KernelBench(quick bool) (*KernelReport, error) {
	rep := &KernelReport{
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		SimdBackend: tensor.SimdBackend(),
		Speedups:    map[string]float64{},
	}
	if rep.GOMAXPROCS == 1 {
		rep.Note = singleCoreNote
	}

	sizes := []int{64, 128, 256}
	if quick {
		sizes = []int{64, 128}
	}
	for _, s := range sizes {
		flopBytes := int64(2) * int64(s) * int64(s) * int64(s) * 4
		sc := benchGemmKernel(tensor.GemmScalar, s)
		pa := benchGemmKernel(tensor.GemmParallel, s)
		rep.Results = append(rep.Results,
			benchResult(fmt.Sprintf("gemm/scalar/%d", s), flopBytes, sc),
			benchResult(fmt.Sprintf("gemm/parallel/%d", s), flopBytes, pa))
		if pa.T > 0 && pa.N > 0 {
			scNs := float64(sc.T.Nanoseconds()) / float64(sc.N)
			paNs := float64(pa.T.Nanoseconds()) / float64(pa.N)
			if paNs > 0 {
				rep.Speedups[fmt.Sprintf("gemm/%d", s)] = scNs / paNs
			}
		}
	}

	// im2col / col2im as dispatched (c=64 channels crosses the parallel
	// threshold).
	{
		const ch, h, w = 64, 32, 32
		p := tensor.ConvParams{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
		img := make([]float32, ch*h*w)
		kernelFill(img, 3)
		oh, ow := p.OutSize(h, w)
		col := make([]float32, ch*p.KernelH*p.KernelW*oh*ow)
		logical := int64(len(col)) * 4
		r := testing.Benchmark(func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				tensor.Im2Col(img, ch, h, w, p, col)
			}
		})
		rep.Results = append(rep.Results, benchResult("im2col/c64_32x32_k3", logical, r))
		r = testing.Benchmark(func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				tensor.Col2Im(col, ch, h, w, p, img)
			}
		})
		rep.Results = append(rep.Results, benchResult("col2im/c64_32x32_k3", logical, r))
	}

	// Fused SEASGD elastic step (T2): the seed worker swept the weight
	// vector three times per exchange — delta = α·(local − global), then
	// local −= delta, then the handoff copy into pendingDelta. The fused
	// kernel does all of it in one width-8 unrolled pass. Rows pin both so
	// the speedup is the real critical-path saving.
	elasticSizes := []int{1 << 16, 1 << 20}
	if quick {
		elasticSizes = []int{1 << 16}
	}
	for _, n := range elasticSizes {
		local := make([]float32, n)
		global := make([]float32, n)
		delta := make([]float32, n)
		pending := make([]float32, n)
		kernelFill(local, 6)
		// global == local keeps the iterated update stationary: repeated
		// local −= α·(local−global) otherwise contracts local onto global
		// and the shrinking differences fall into subnormals, where FP
		// assists dominate and the benchmark measures denormal handling
		// instead of the kernels. With zero differences every intermediate
		// is an exact zero — full-speed FP, same instruction stream.
		copy(global, local)
		logical := int64(n) * 4
		unf := benchMin(3, func(bb *testing.B) {
			bb.ReportAllocs()
			const a = float32(0.3)
			for i := 0; i < bb.N; i++ {
				for j := range delta {
					delta[j] = a * (local[j] - global[j])
				}
				for j := range local {
					local[j] -= delta[j]
				}
				copy(pending, delta)
			}
		})
		fus := benchMin(3, func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				tensor.FusedElasticStep(0.3, pending, local, global)
			}
		})
		rep.Results = append(rep.Results,
			benchResult(fmt.Sprintf("elastic_step/unfused/%d", n), logical, unf),
			benchResult(fmt.Sprintf("elastic_step/fused/%d", n), logical, fus))
		unfNs := float64(unf.T.Nanoseconds()) / float64(unf.N)
		fusNs := float64(fus.T.Nanoseconds()) / float64(fus.N)
		if fusNs > 0 {
			rep.Speedups[fmt.Sprintf("elastic_step/%d", n)] = unfNs / fusNs
		}
	}

	// Axpy (the Eq. 7 accumulate inner loop): scalar reference vs the
	// dispatched kernel (AVX2 where available, width-8 unrolled otherwise).
	// The small size is L1-resident (where the vector width shows); 1 Mi
	// elements (4 MiB) falls out of L2 and is bandwidth-bound.
	axpySizes := []int{1 << 12, 1 << 16, 1 << 20}
	if quick {
		axpySizes = []int{1 << 12}
	}
	for _, n := range axpySizes {
		x := make([]float32, n)
		y := make([]float32, n)
		kernelFill(x, 8)
		kernelFill(y, 9)
		logical := int64(n) * 4
		sc := benchMin(3, func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				tensor.AxpySliceScalar(1, x, y)
			}
		})
		un := benchMin(3, func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				tensor.AxpySlice(1, x, y)
			}
		})
		rep.Results = append(rep.Results,
			benchResult(fmt.Sprintf("axpy/scalar/%d", n), logical, sc),
			benchResult(fmt.Sprintf("axpy/dispatched/%d", n), logical, un))
		scNs := float64(sc.T.Nanoseconds()) / float64(sc.N)
		unNs := float64(un.T.Nanoseconds()) / float64(un.N)
		if unNs > 0 {
			rep.Speedups[fmt.Sprintf("axpy/%d", n)] = scNs / unNs
		}
	}

	// SMB store Accumulate: one shared multi-stripe global, concurrent
	// private deltas — the SEASGD contention point.
	for _, workers := range []int{1, 4} {
		const vals = 1 << 18 // 1 MiB, spans multiple lock stripes
		store := smb.NewStore()
		gKey, err := store.Create("kern/wg", vals*4)
		if err != nil {
			return nil, err
		}
		hg, err := store.Attach(gKey)
		if err != nil {
			return nil, err
		}
		buf := make([]float32, vals)
		kernelFill(buf, 4)
		raw := tensor.Float32Bytes(buf)
		handles := make([]smb.Handle, workers)
		for i := range handles {
			dKey, err := store.Create(fmt.Sprintf("kern/dw%d", i), vals*4)
			if err != nil {
				return nil, err
			}
			hd, err := store.Attach(dKey)
			if err != nil {
				return nil, err
			}
			if err := store.Write(hd, 0, raw); err != nil {
				return nil, err
			}
			handles[i] = hd
		}
		r := testing.Benchmark(func(bb *testing.B) {
			bb.ReportAllocs()
			if workers == 1 {
				for i := 0; i < bb.N; i++ {
					if err := store.Accumulate(hg, handles[0]); err != nil {
						bb.Fatal(err)
					}
				}
				return
			}
			var next int
			bb.RunParallel(func(pb *testing.PB) {
				hd := handles[next%len(handles)]
				next++
				for pb.Next() {
					if err := store.Accumulate(hg, hd); err != nil {
						bb.Fatal(err)
					}
				}
			})
		})
		rep.Results = append(rep.Results,
			benchResult(fmt.Sprintf("smb/accumulate/workers=%d", workers), vals*4, r))
	}

	// TCP round trip: Write of a 16 KiB payload through the stream
	// protocol (zero-alloc wire path; ns/op is dominated by loopback).
	{
		store := smb.NewStore()
		srv, err := smb.NewServer(store, "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		go srv.Serve() //lint:ignore goleak joined by srv.Close via the server's WaitGroup
		client, err := smb.Dial(srv.Addr())
		if err != nil {
			return nil, err
		}
		defer client.Close()
		key, err := client.Create("kern/rt", 4096*4)
		if err != nil {
			return nil, err
		}
		h, err := client.Attach(key)
		if err != nil {
			return nil, err
		}
		buf := make([]float32, 4096)
		kernelFill(buf, 5)
		raw := tensor.Float32Bytes(buf)
		r := testing.Benchmark(func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				if err := client.Write(h, 0, raw); err != nil {
					bb.Fatal(err)
				}
			}
		})
		rep.Results = append(rep.Results, benchResult("smb/tcp_write/16KiB", 4096*4, r))
	}

	// End-to-end TCP push of a 1 MiB increment: the split Write then
	// Accumulate pair (two round trips, server idle while the second
	// request is in flight) against the chunk-pipelined WRITE+ACCUMULATE
	// (16 streamed chunks, one ack; the server folds chunk k while chunk
	// k+1 is on the wire).
	{
		const vals = 1 << 18 // 1 MiB
		store := smb.NewStore()
		srv, err := smb.NewServer(store, "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		go srv.Serve() //lint:ignore goleak joined by srv.Close via the server's WaitGroup
		client, err := smb.Dial(srv.Addr())
		if err != nil {
			return nil, err
		}
		defer client.Close()
		gKey, err := client.Create("kern/push_wg", vals*4)
		if err != nil {
			return nil, err
		}
		hg, err := client.Attach(gKey)
		if err != nil {
			return nil, err
		}
		dKey, err := client.Create("kern/push_dw", vals*4)
		if err != nil {
			return nil, err
		}
		hd, err := client.Attach(dKey)
		if err != nil {
			return nil, err
		}
		buf := make([]float32, vals)
		kernelFill(buf, 10)
		raw := tensor.Float32Bytes(buf)
		split := benchMin(3, func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				if err := client.Write(hd, 0, raw); err != nil {
					bb.Fatal(err)
				}
				if err := client.Accumulate(hg, hd); err != nil {
					bb.Fatal(err)
				}
			}
		})
		chunked := benchMin(3, func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				if err := client.WriteAccumulate(hg, hd, raw); err != nil {
					bb.Fatal(err)
				}
			}
		})
		rep.Results = append(rep.Results,
			benchResult("smb/tcp_push_split/1MiB", vals*4, split),
			benchResult("smb/tcp_push_chunked/1MiB", vals*4, chunked))
		spNs := float64(split.T.Nanoseconds()) / float64(split.N)
		chNs := float64(chunked.T.Nanoseconds()) / float64(chunked.N)
		if chNs > 0 {
			rep.Speedups["smb/tcp_push/1MiB"] = spNs / chNs
		}
	}

	// Transport rows (tcp / tcp_sg / shm push+accumulate) and the
	// cross-transport speedups at 1 MiB.
	if err := transportKernelRows(rep, quick); err != nil {
		return nil, err
	}

	// Serving rows: live-read vs snapshot-read p50/p99 under an
	// accumulate storm, plus the snapshot-read zero-alloc contract
	// (serve.go).
	if err := ServeBench(rep, quick); err != nil {
		return nil, err
	}

	return rep, nil
}

// WriteJSON renders the report as indented JSON.
func (r *KernelReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
