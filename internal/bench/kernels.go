package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"shmcaffe/internal/smb"
	"shmcaffe/internal/tensor"
)

// Kernel microbenchmarks, run in-process through testing.Benchmark so that
// cmd/benchtables -kernels can emit BENCH_kernels.json without shelling
// out to the go toolchain. These measure the real kernels (the same code
// the *_bench_test.go files exercise), not the perfmodel: gemm scalar vs
// parallel, im2col/col2im as dispatched, and the SMB store data path.
//
// Results are machine-dependent by nature; the report therefore records
// GOMAXPROCS and NumCPU so a single-core run is not mistaken for a
// scaling claim.

// KernelResult is one benchmark line.
type KernelResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// KernelReport is the schema of BENCH_kernels.json.
type KernelReport struct {
	GoVersion  string             `json:"go_version"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	NumCPU     int                `json:"num_cpu"`
	Note       string             `json:"note,omitempty"`
	Results    []KernelResult     `json:"results"`
	Speedups   map[string]float64 `json:"speedups_parallel_vs_scalar"`
}

// singleCoreNote is attached when GOMAXPROCS is 1, where the pinned
// parallel kernels can only lose to the scalar reference.
const singleCoreNote = "gemm/parallel entries pin the blocked parallel kernel for " +
	"comparison; with GOMAXPROCS=1 the MatMul dispatcher always selects the scalar " +
	"kernel, so these ratios measure kernel overhead, not the shipped configuration. " +
	"Re-run `benchtables -kernels` on a multi-core host for scaling numbers."

// kernelFill writes a deterministic mixed-magnitude pattern (including
// exact zeros, which the gemm kernels special-case).
func kernelFill(dst []float32, seed int) {
	for i := range dst {
		switch (i + seed) % 7 {
		case 0:
			dst[i] = 0
		case 1:
			dst[i] = float32(i%13) * 1e-3
		default:
			dst[i] = float32((i*31+seed)%17) - 8
		}
	}
}

func benchResult(name string, logicalBytes int64, r testing.BenchmarkResult) KernelResult {
	kr := KernelResult{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if logicalBytes > 0 && kr.NsPerOp > 0 {
		kr.MBPerSec = float64(logicalBytes) / kr.NsPerOp * 1e9 / (1 << 20)
	}
	return kr
}

// benchGemmKernel benchmarks one raw gemm implementation at size s³.
func benchGemmKernel(fn func(m, n, k int, a, b, c []float32), s int) testing.BenchmarkResult {
	a := make([]float32, s*s)
	b := make([]float32, s*s)
	c := make([]float32, s*s)
	kernelFill(a, 1)
	kernelFill(b, 2)
	return testing.Benchmark(func(bb *testing.B) {
		bb.ReportAllocs()
		for i := 0; i < bb.N; i++ {
			fn(s, s, s, a, b, c)
		}
	})
}

// KernelBench runs the suite and returns the report. quick shortens the
// size list for smoke runs.
func KernelBench(quick bool) (*KernelReport, error) {
	rep := &KernelReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Speedups:   map[string]float64{},
	}
	if rep.GOMAXPROCS == 1 {
		rep.Note = singleCoreNote
	}

	sizes := []int{64, 128, 256}
	if quick {
		sizes = []int{64, 128}
	}
	for _, s := range sizes {
		flopBytes := int64(2) * int64(s) * int64(s) * int64(s) * 4
		sc := benchGemmKernel(tensor.GemmScalar, s)
		pa := benchGemmKernel(tensor.GemmParallel, s)
		rep.Results = append(rep.Results,
			benchResult(fmt.Sprintf("gemm/scalar/%d", s), flopBytes, sc),
			benchResult(fmt.Sprintf("gemm/parallel/%d", s), flopBytes, pa))
		if pa.T > 0 && pa.N > 0 {
			scNs := float64(sc.T.Nanoseconds()) / float64(sc.N)
			paNs := float64(pa.T.Nanoseconds()) / float64(pa.N)
			if paNs > 0 {
				rep.Speedups[fmt.Sprintf("gemm/%d", s)] = scNs / paNs
			}
		}
	}

	// im2col / col2im as dispatched (c=64 channels crosses the parallel
	// threshold).
	{
		const ch, h, w = 64, 32, 32
		p := tensor.ConvParams{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
		img := make([]float32, ch*h*w)
		kernelFill(img, 3)
		oh, ow := p.OutSize(h, w)
		col := make([]float32, ch*p.KernelH*p.KernelW*oh*ow)
		logical := int64(len(col)) * 4
		r := testing.Benchmark(func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				tensor.Im2Col(img, ch, h, w, p, col)
			}
		})
		rep.Results = append(rep.Results, benchResult("im2col/c64_32x32_k3", logical, r))
		r = testing.Benchmark(func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				tensor.Col2Im(col, ch, h, w, p, img)
			}
		})
		rep.Results = append(rep.Results, benchResult("col2im/c64_32x32_k3", logical, r))
	}

	// SMB store Accumulate: one shared multi-stripe global, concurrent
	// private deltas — the SEASGD contention point.
	for _, workers := range []int{1, 4} {
		const vals = 1 << 18 // 1 MiB, spans multiple lock stripes
		store := smb.NewStore()
		gKey, err := store.Create("kern/wg", vals*4)
		if err != nil {
			return nil, err
		}
		hg, err := store.Attach(gKey)
		if err != nil {
			return nil, err
		}
		buf := make([]float32, vals)
		kernelFill(buf, 4)
		raw := tensor.Float32Bytes(buf)
		handles := make([]smb.Handle, workers)
		for i := range handles {
			dKey, err := store.Create(fmt.Sprintf("kern/dw%d", i), vals*4)
			if err != nil {
				return nil, err
			}
			hd, err := store.Attach(dKey)
			if err != nil {
				return nil, err
			}
			if err := store.Write(hd, 0, raw); err != nil {
				return nil, err
			}
			handles[i] = hd
		}
		r := testing.Benchmark(func(bb *testing.B) {
			bb.ReportAllocs()
			if workers == 1 {
				for i := 0; i < bb.N; i++ {
					if err := store.Accumulate(hg, handles[0]); err != nil {
						bb.Fatal(err)
					}
				}
				return
			}
			var next int
			bb.RunParallel(func(pb *testing.PB) {
				hd := handles[next%len(handles)]
				next++
				for pb.Next() {
					if err := store.Accumulate(hg, hd); err != nil {
						bb.Fatal(err)
					}
				}
			})
		})
		rep.Results = append(rep.Results,
			benchResult(fmt.Sprintf("smb/accumulate/workers=%d", workers), vals*4, r))
	}

	// TCP round trip: Write of a 16 KiB payload through the stream
	// protocol (zero-alloc wire path; ns/op is dominated by loopback).
	{
		store := smb.NewStore()
		srv, err := smb.NewServer(store, "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		go srv.Serve() //lint:ignore goleak joined by srv.Close via the server's WaitGroup
		client, err := smb.Dial(srv.Addr())
		if err != nil {
			return nil, err
		}
		defer client.Close()
		key, err := client.Create("kern/rt", 4096*4)
		if err != nil {
			return nil, err
		}
		h, err := client.Attach(key)
		if err != nil {
			return nil, err
		}
		buf := make([]float32, 4096)
		kernelFill(buf, 5)
		raw := tensor.Float32Bytes(buf)
		r := testing.Benchmark(func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				if err := client.Write(h, 0, raw); err != nil {
					bb.Fatal(err)
				}
			}
		})
		rep.Results = append(rep.Results, benchResult("smb/tcp_write/16KiB", 4096*4, r))
	}

	return rep, nil
}

// WriteJSON renders the report as indented JSON.
func (r *KernelReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
