package bench

import (
	"fmt"
	"sync"

	"shmcaffe/internal/core"
	"shmcaffe/internal/dataset"
	"shmcaffe/internal/mpi"
	"shmcaffe/internal/nn"
	"shmcaffe/internal/ps"
	"shmcaffe/internal/smb"
	"shmcaffe/internal/tensor"
	"shmcaffe/internal/trace"
)

// RelatedWorkDisciplines compares the asynchronous update disciplines of
// the paper's related-work section head to head on the same task, data
// sharding and iteration budget:
//
//   - ASGD (Downpour): raw gradient pushes to a parameter server.
//   - EASGD: elastic weight exchanges with a parameter server.
//   - SEASGD: the paper's reformulation — elastic increments accumulated
//     into a dumb shared buffer (no parameter-server logic).
//
// The shape to verify: EASGD and SEASGD track each other closely (the
// algebra is equivalent) and both tolerate high worker counts better than
// raw-gradient ASGD.
func RelatedWorkDisciplines(workers int, o ConvergenceOptions) (*trace.Table, error) {
	t := trace.New(fmt.Sprintf("Related work: asynchronous disciplines at %d workers", workers),
		"Discipline", "Final accuracy", "Final val loss")

	full, err := dataset.NewGaussian(dataset.GaussianConfig{
		Classes:  o.Classes,
		PerClass: o.PerClass,
		Shape:    []int{o.Features},
		Noise:    o.Noise,
		Seed:     o.Seed,
	})
	if err != nil {
		return nil, err
	}
	train, val, err := dataset.Split(full, 0.8)
	if err != nil {
		return nil, err
	}
	solver := nn.DefaultSolverConfig()
	solver.BaseLR = 0.05
	itersPerEpoch := train.Len() / (o.Batch * workers)
	if itersPerEpoch < 1 {
		itersPerEpoch = 1
	}
	iters := itersPerEpoch * o.Epochs
	classes := o.Classes
	features := o.Features

	buildWorker := func(r int) (*nn.Network, *dataset.Loader, error) {
		net, err := nn.MLP(fmt.Sprintf("rw%d", r), features, 16, classes)
		if err != nil {
			return nil, nil, err
		}
		net.InitWeights(tensor.NewRNG(o.Seed))
		shard, err := dataset.NewShard(train, r, workers)
		if err != nil {
			return nil, nil, err
		}
		loader, err := dataset.NewLoader(shard, o.Batch, o.Seed+uint64(r))
		if err != nil {
			return nil, nil, err
		}
		return net, loader, nil
	}

	evalWeights := func(weights []float32) (acc, loss float64, err error) {
		evalNet, err := nn.MLP("rw-eval", features, 16, classes)
		if err != nil {
			return 0, 0, err
		}
		if err := evalNet.SetFlatWeights(weights); err != nil {
			return 0, 0, err
		}
		loader, err := dataset.NewLoader(val, 64, o.Seed^0xabc)
		if err != nil {
			return 0, 0, err
		}
		b := loader.Next()
		l, a, err := evalNet.Evaluate(b.X, b.Labels, 1)
		return a, l, err
	}

	// ASGD and EASGD through the parameter server.
	for _, mode := range []string{"ASGD (Downpour)", "EASGD"} {
		seedNet, err := nn.MLP("seed", features, 16, classes)
		if err != nil {
			return nil, err
		}
		seedNet.InitWeights(tensor.NewRNG(o.Seed))
		server := ps.NewServer(seedNet.FlatWeights(nil))
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for r := 0; r < workers; r++ {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				net, loader, err := buildWorker(r)
				if err != nil {
					errs[r] = err
					return
				}
				cfg := ps.WorkerConfig{
					Server: server, Net: net, Solver: solver,
					Loader: loader, MaxIterations: iters,
					Alpha: 0.2, ExchangeEvery: 1,
				}
				if mode == "EASGD" {
					_, errs[r] = ps.RunEASGD(cfg)
				} else {
					_, errs[r] = ps.RunASGD(cfg)
				}
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("%s: %w", mode, err)
			}
		}
		acc, loss, err := evalWeights(server.Snapshot())
		if err != nil {
			return nil, err
		}
		t.Add(mode, trace.Pct(acc), trace.F2(loss))
	}

	// SEASGD through the SMB buffer.
	store := smb.NewStore()
	world, err := mpi.NewWorld(workers)
	if err != nil {
		return nil, err
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for r := 0; r < workers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			net, loader, err := buildWorker(r)
			if err != nil {
				errs[r] = err
				return
			}
			comm, err := world.Comm(r)
			if err != nil {
				errs[r] = err
				return
			}
			w, err := core.NewWorker(core.WorkerConfig{
				Job: "rw", Comm: comm, Client: smb.NewLocalClient(store),
				Net: net, Solver: solver,
				Elastic:       core.DefaultElasticConfig(),
				Termination:   core.StopIndependently,
				MaxIterations: iters, Loader: loader,
			})
			if err != nil {
				errs[r] = err
				return
			}
			_, errs[r] = w.Run()
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("SEASGD: %w", err)
		}
	}
	client := smb.NewLocalClient(store)
	key, err := client.Lookup(smb.SegmentNames{Job: "rw"}.Global())
	if err != nil {
		return nil, err
	}
	h, err := client.Attach(key)
	if err != nil {
		return nil, err
	}
	seedNet, err := nn.MLP("sz", features, 16, classes)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, seedNet.NumParams()*4)
	if err := client.Read(h, 0, buf); err != nil {
		return nil, err
	}
	wgVals, err := tensor.Float32FromBytes(buf)
	if err != nil {
		return nil, err
	}
	acc, loss, err := evalWeights(wgVals)
	if err != nil {
		return nil, err
	}
	t.Add("SEASGD (ShmCaffe)", trace.Pct(acc), trace.F2(loss))
	return t, nil
}
