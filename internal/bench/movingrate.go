package bench

import (
	"fmt"

	"shmcaffe/internal/core"
	"shmcaffe/internal/platform"
	"shmcaffe/internal/trace"
)

// AblationMovingRate sweeps the moving_rate hyper-parameter α functionally
// (DESIGN.md §6 item 4): α controls the elastic penalty strength — too
// small and replicas drift (slow knowledge sharing), too large and the
// center whipsaws. The paper uses 0.2.
func AblationMovingRate(workers int, o ConvergenceOptions) (*trace.Table, error) {
	t := trace.New(
		fmt.Sprintf("Ablation: moving_rate sweep (ShmCaffe-A, %d workers)", workers),
		"moving_rate", "Final accuracy", "Final val loss")
	for _, alpha := range []float64{0.05, 0.1, 0.2, 0.5, 0.9} {
		cfg, err := o.config(workers)
		if err != nil {
			return nil, err
		}
		cfg.Elastic = core.ElasticConfig{MovingRate: alpha, UpdateInterval: 1}
		res, err := (platform.ShmCaffeA{}).Train(cfg)
		if err != nil {
			return nil, fmt.Errorf("moving rate %v: %w", alpha, err)
		}
		t.Add(trace.F2(alpha), trace.Pct(res.FinalAcc), trace.F2(res.FinalLoss))
	}
	return t, nil
}

// AblationUpdateIntervalFunctional sweeps update_interval functionally:
// fewer exchanges mean less traffic (the timing sweep) but slower
// knowledge propagation between replicas.
func AblationUpdateIntervalFunctional(workers int, o ConvergenceOptions) (*trace.Table, error) {
	t := trace.New(
		fmt.Sprintf("Ablation: update_interval convergence (ShmCaffe-A, %d workers)", workers),
		"update_interval", "Final accuracy", "Final val loss")
	for _, k := range []int{1, 2, 4, 8} {
		cfg, err := o.config(workers)
		if err != nil {
			return nil, err
		}
		cfg.Elastic = core.ElasticConfig{MovingRate: 0.2, UpdateInterval: k}
		res, err := (platform.ShmCaffeA{}).Train(cfg)
		if err != nil {
			return nil, fmt.Errorf("interval %d: %w", k, err)
		}
		t.Add(trace.Itoa(k), trace.Pct(res.FinalAcc), trace.F2(res.FinalLoss))
	}
	return t, nil
}
