package bench

import (
	"os"
	"testing"
)

// TestMain lets the re-exec'd bench server child take over the test binary:
// any test that reaches transportClient spawns os.Executable() — this
// binary — with benchServeEnv set, and without this hook the child would
// run the whole test suite instead of serving.
func TestMain(m *testing.M) {
	if MaybeServeBenchChild() {
		return
	}
	os.Exit(m.Run())
}

// TestTransportRows is a manual harness for the transport benchmark rows:
// it runs the full cross-process measurement without the rest of the
// kernel suite, which takes minutes. Enable with SHMCAFFE_TRANSPORT_ROWS=1
// and -v to read the table; CI skips it.
func TestTransportRows(t *testing.T) {
	if os.Getenv("SHMCAFFE_TRANSPORT_ROWS") == "" {
		t.Skip("manual: set SHMCAFFE_TRANSPORT_ROWS=1 to run the cross-process transport rows")
	}
	rep := &KernelReport{Speedups: map[string]float64{}}
	if err := transportKernelRows(rep, false); err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		t.Logf("%-44s %10.0f ns", r.Name, r.NsPerOp)
	}
	for k, v := range rep.Speedups {
		t.Logf("%-44s %.3f", k, v)
	}
}

// TestTransportClientSpawnsServer exercises the re-exec seam itself: spawn
// a tcp bench server child, run one verb through it, and tear it down.
// This is the piece of the transport rows cheap enough for CI.
func TestTransportClientSpawnsServer(t *testing.T) {
	c, cleanup, err := transportClient("tcp")
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	key, err := c.Create("spawned", 4096)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = byte(i)
	}
	if err := c.Write(h, 0, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if err := c.Read(h, 0, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != buf[i] {
			t.Fatalf("readback mismatch at %d: got %d want %d", i, got[i], buf[i])
		}
	}
}
