// Package bench regenerates every table and figure of the paper's
// evaluation section (Sec. IV). Each exported function produces the rows of
// one exhibit; cmd/benchtables and the repository-level benchmarks are thin
// wrappers around them. Timing exhibits run on the perfmodel discrete-event
// simulator; convergence exhibits run real training through
// internal/platform.
package bench

import (
	"fmt"
	"time"

	"shmcaffe/internal/nn"
	"shmcaffe/internal/perfmodel"
	"shmcaffe/internal/trace"
)

// simIters is the discrete-event iteration count per configuration; enough
// for steady state, cheap enough for CI.
const simIters = 40

// Table1Hardware reproduces Table I: the hardware configuration of each
// platform under test.
func Table1Hardware() *trace.Table {
	t := trace.New("Table I: Hardware for distributed deep learning platforms",
		"Hardware Config.", "Caffe", "Caffe-MPI", "MPICaffe", "ShmCaffe")
	t.Add("GPU Server#", "1", "5", "4", "4")
	t.Add("Total GPU#", "8(10)/16(20)*", "8/16", "8/16", "8/16")
	t.Add("NFS Server#", "1", "1", "1", "1")
	t.Add("Memory Server#", "-", "-", "-", "1")
	t.Add("* 10/20 GPUs used but 8/16 only compute gradients", "", "", "", "")
	return t
}

// Fig7Bandwidth reproduces Fig. 7: aggregated SMB read/write bandwidth as
// the client process count grows from 2 to 32 (1 GB per process, 50/50
// read/write mix).
func Fig7Bandwidth(hw perfmodel.Hardware) (*trace.Table, error) {
	t := trace.New("Fig. 7: Read/Write bandwidth in a SMB server",
		"Processes", "Aggregate BW", "HCA utilization")
	for _, n := range []int{2, 4, 8, 16, 32} {
		bw, err := perfmodel.SimulateSMBBandwidth(n, 1e9, 16e6, hw)
		if err != nil {
			return nil, fmt.Errorf("fig 7 n=%d: %w", n, err)
		}
		t.Add(trace.Itoa(n), trace.GBs(bw), trace.Pct(bw/hw.HCABandwidth))
	}
	return t, nil
}

// Table2TrainingTime reproduces Table II / Fig. 9: Inception-v1 15-epoch
// training time and scalability for the four platforms at 1/8/16 GPUs.
// Scalability is relative to Caffe on 1 GPU, as in the paper.
func Table2TrainingTime(hw perfmodel.Hardware) (*trace.Table, error) {
	p := nn.InceptionV1
	type cell struct {
		time  time.Duration
		valid bool
	}
	platforms := []string{"Caffe", "Caffe-MPI", "MPICaffe", "ShmCaffe"}
	gpuCounts := []int{1, 8, 16}
	grid := make(map[string]map[int]cell)
	for _, name := range platforms {
		grid[name] = make(map[int]cell)
	}
	for _, gpus := range gpuCounts {
		caffe, err := perfmodel.SimulateCaffe(p, gpus, simIters, hw)
		if err != nil {
			return nil, err
		}
		grid["Caffe"][gpus] = cell{perfmodel.TrainingTime(caffe, p, perfmodel.ImageNetTrainSize, 15, gpus), true}
		if gpus == 1 {
			continue // the distributed platforms start at 8 GPUs
		}
		cmpi, err := perfmodel.SimulateCaffeMPI(p, gpus, simIters, hw)
		if err != nil {
			return nil, err
		}
		grid["Caffe-MPI"][gpus] = cell{perfmodel.TrainingTime(cmpi, p, perfmodel.ImageNetTrainSize, 15, gpus), true}
		mpic, err := perfmodel.SimulateMPICaffe(p, gpus, simIters, hw)
		if err != nil {
			return nil, err
		}
		grid["MPICaffe"][gpus] = cell{perfmodel.TrainingTime(mpic, p, perfmodel.ImageNetTrainSize, 15, gpus), true}
		shm, err := perfmodel.SimulateHSGD(p, hsgdGroups(gpus, hw.GPUsPerNode), simIters, hw)
		if err != nil {
			return nil, err
		}
		grid["ShmCaffe"][gpus] = cell{perfmodel.TrainingTime(shm, p, perfmodel.ImageNetTrainSize, 15, gpus), true}
	}

	base := grid["Caffe"][1].time
	t := trace.New("Table II: Inception-v1 training time (15 epochs) and scalability",
		"Platform", "1 GPU", "8 GPUs", "16 GPUs", "Scal. 8", "Scal. 16")
	for _, name := range platforms {
		row := []string{name}
		for _, gpus := range gpuCounts {
			c := grid[name][gpus]
			if !c.valid {
				row = append(row, "-")
				continue
			}
			row = append(row, trace.HoursMinutes(c.time))
		}
		for _, gpus := range []int{8, 16} {
			c := grid[name][gpus]
			if !c.valid {
				row = append(row, "-")
				continue
			}
			row = append(row, trace.F1(base.Seconds()/c.time.Seconds())+"x")
		}
		t.Add(row...)
	}
	return t, nil
}

// hsgdGroups splits `workers` into node-size groups, the paper's ShmCaffe
// deployment (Table III: 4 GPUs per node).
func hsgdGroups(workers, perNode int) []int {
	var groups []int
	for workers > 0 {
		g := perNode
		if workers < g {
			g = workers
		}
		groups = append(groups, g)
		workers -= g
	}
	return groups
}

// Fig10CompComm reproduces Fig. 10: per-iteration computation vs exposed
// communication time of the four platforms training Inception-v1 on 16
// GPUs.
func Fig10CompComm(hw perfmodel.Hardware) (*trace.Table, error) {
	p := nn.InceptionV1
	const gpus = 16
	t := trace.New("Fig. 10: Computation and communication per iteration (Inception-v1, 16 GPUs)",
		"Platform", "Comp (ms)", "Comm (ms)", "Iter (ms)", "Comm ratio")
	add := func(name string, b perfmodel.IterBreakdown) {
		t.Add(name, trace.Ms(b.Comp), trace.Ms(b.Comm), trace.Ms(b.Iter), trace.Pct(b.CommRatio()))
	}
	caffe, err := perfmodel.SimulateCaffe(p, gpus, simIters, hw)
	if err != nil {
		return nil, err
	}
	add("Caffe", caffe)
	cmpi, err := perfmodel.SimulateCaffeMPI(p, gpus, simIters, hw)
	if err != nil {
		return nil, err
	}
	add("Caffe-MPI", cmpi)
	mpic, err := perfmodel.SimulateMPICaffe(p, gpus, simIters, hw)
	if err != nil {
		return nil, err
	}
	add("MPICaffe", mpic)
	shm, err := perfmodel.SimulateHSGD(p, hsgdGroups(gpus, hw.GPUsPerNode), simIters, hw)
	if err != nil {
		return nil, err
	}
	add("ShmCaffe", shm)
	return t, nil
}

// Table3Configs reproduces Table III: the (synchronous × asynchronous)
// worker layouts of the ShmCaffe-A/H scalability study.
func Table3Configs() *trace.Table {
	t := trace.New("Table III: Worker configurations for the A/H study",
		"Total GPUs", "ShmCaffe-A", "ShmCaffe-H")
	t.Add("1", "A1", "-")
	t.Add("2", "A2", "S2 (single group)")
	t.Add("4", "A4", "S2xA2")
	t.Add("8", "A8", "S4xA2")
	t.Add("16", "A16", "S4xA4")
	return t
}

// Table4Models reproduces Table IV: parameter size and single-GPU
// computation time of the four CNN models.
func Table4Models() *trace.Table {
	t := trace.New("Table IV: Parameter size and computation time of 4 CNN models",
		"Model", "Params (MB)", "Comp/iter (ms)", "Batch", "Input")
	for _, p := range nn.PaperModels() {
		t.Add(p.Name, trace.F1(p.ParamMB()), trace.Ms(p.CompTime),
			trace.Itoa(p.BatchSize), fmt.Sprintf("%dx%d", p.InputSide, p.InputSide))
	}
	return t
}

// Table5ShmCaffeA reproduces Table V / Figs. 12–13: ShmCaffe-A computation
// and exposed communication per iteration across the four models at
// 1/2/4/8/16 workers.
func Table5ShmCaffeA(hw perfmodel.Hardware) (*trace.Table, error) {
	t := trace.New("Table V / Figs. 12-13: ShmCaffe-A comp & comm per model",
		"Model", "Workers", "Comp (ms)", "Comm (ms)", "Iter (ms)", "Comm ratio")
	for _, p := range nn.PaperModels() {
		for _, w := range []int{1, 2, 4, 8, 16} {
			b, err := perfmodel.SimulateSEASGD(p, w, simIters, hw)
			if err != nil {
				return nil, fmt.Errorf("table 5 %s w=%d: %w", p.Name, w, err)
			}
			t.Add(p.Name, trace.Itoa(w), trace.Ms(b.Comp), trace.Ms(b.Comm),
				trace.Ms(b.Iter), trace.Pct(b.CommRatio()))
		}
	}
	return t, nil
}

// hsgdConfig is one Table III (S#,A#) layout: A# groups of S# workers.
type hsgdConfig struct {
	label  string
	groups []int
}

func hsgdStudyConfigs() []hsgdConfig {
	return []hsgdConfig{
		{"4(S4)", []int{4}},
		{"4(S2xA2)", []int{2, 2}},
		{"8(S2xA4)", []int{2, 2, 2, 2}},
		{"8(S4xA2)", []int{4, 4}},
		{"16(S4xA4)", []int{4, 4, 4, 4}},
	}
}

// Table6ShmCaffeH reproduces Table VI / Fig. 14: ShmCaffe-H computation and
// communication per model across the (S#,A#) layouts.
func Table6ShmCaffeH(hw perfmodel.Hardware) (*trace.Table, error) {
	t := trace.New("Table VI / Fig. 14: ShmCaffe-H comp & comm per model",
		"Model", "Config", "Comp (ms)", "Comm (ms)", "Iter (ms)", "Comm ratio")
	for _, p := range nn.PaperModels() {
		for _, cfg := range hsgdStudyConfigs() {
			b, err := perfmodel.SimulateHSGD(p, cfg.groups, simIters, hw)
			if err != nil {
				return nil, fmt.Errorf("table 6 %s %s: %w", p.Name, cfg.label, err)
			}
			t.Add(p.Name, cfg.label, trace.Ms(b.Comp), trace.Ms(b.Comm),
				trace.Ms(b.Iter), trace.Pct(b.CommRatio()))
		}
	}
	return t, nil
}

// Fig15AvsH reproduces Fig. 15: one-iteration time of ShmCaffe-A vs
// ShmCaffe-H per model at 8 and 16 GPUs.
func Fig15AvsH(hw perfmodel.Hardware) (*trace.Table, error) {
	t := trace.New("Fig. 15: ShmCaffe-A vs ShmCaffe-H one-iteration time",
		"Model", "GPUs", "A iter (ms)", "H iter (ms)", "H speedup")
	for _, p := range nn.PaperModels() {
		for _, gpus := range []int{8, 16} {
			a, err := perfmodel.SimulateSEASGD(p, gpus, simIters, hw)
			if err != nil {
				return nil, err
			}
			h, err := perfmodel.SimulateHSGD(p, hsgdGroups(gpus, hw.GPUsPerNode), simIters, hw)
			if err != nil {
				return nil, err
			}
			t.Add(p.Name, trace.Itoa(gpus), trace.Ms(a.Iter), trace.Ms(h.Iter),
				trace.F2(a.Iter.Seconds()/h.Iter.Seconds())+"x")
		}
	}
	return t, nil
}
