package bench

import (
	"shmcaffe/internal/nn"
	"shmcaffe/internal/perfmodel"
	"shmcaffe/internal/trace"
)

// Eq8Decomposition renders the paper's Eq. (8) term by term for each model:
// T_iter = max(T_comp, T_wwi + T_ugw) + T_rgw + T_ulw. The "hidden" column
// shows whether the asynchronous push fits under the computation — the
// mechanism Fig. 6's update thread exists for.
func Eq8Decomposition(hw perfmodel.Hardware) *trace.Table {
	t := trace.New("Eq. (8) decomposition per model (single uncontended worker, ms)",
		"Model", "T_rgw", "T_ulw", "T_wwi", "T_ugw", "T_comp", "T_iter", "push hidden?")
	for _, p := range nn.PaperModels() {
		c := hw.Eq8Decompose(p)
		hidden := "yes"
		if c.Twwi+c.Tugw > c.Comp {
			hidden = "no"
		}
		t.Add(p.Name, trace.Ms(c.Trgw), trace.Ms(c.Tulw), trace.Ms(c.Twwi),
			trace.Ms(c.Tugw), trace.Ms(c.Comp), trace.Ms(c.Iter), hidden)
	}
	return t
}
