package bench

import (
	"fmt"
	"time"

	"shmcaffe/internal/nn"
	"shmcaffe/internal/perfmodel"
	"shmcaffe/internal/platform"
	"shmcaffe/internal/trace"
)

// Fig9TimeToAccuracy combines the two levels of the reproduction into the
// paper's Fig. 9 statement ("the beauty of ShmCaffe is mainly in the
// training time reduction"): the functional runs supply each platform's
// iterations-to-target-accuracy, the calibrated timing model supplies its
// per-iteration time at the given worker count, and the product is the
// projected wall-clock time to accuracy.
func Fig9TimeToAccuracy(workers int, targetAcc float64, o ConvergenceOptions, hw perfmodel.Hardware) (*trace.Table, error) {
	t := trace.New(
		fmt.Sprintf("Fig. 9: projected time to %.0f%% accuracy (Inception-v1 profile, %d workers)",
			100*targetAcc, workers),
		"Platform", "Iterations to target", "Iter time (ms)", "Projected time")

	p := nn.InceptionV1
	entries := []struct {
		name string
		tr   platform.Trainer
		sim  func() (perfmodel.IterBreakdown, error)
	}{
		{"Caffe", platform.Caffe{}, func() (perfmodel.IterBreakdown, error) {
			return perfmodel.SimulateCaffe(p, workers, simIters, hw)
		}},
		{"Caffe-MPI", platform.CaffeMPI{}, func() (perfmodel.IterBreakdown, error) {
			return perfmodel.SimulateCaffeMPI(p, workers, simIters, hw)
		}},
		{"MPICaffe", platform.MPICaffe{}, func() (perfmodel.IterBreakdown, error) {
			return perfmodel.SimulateMPICaffe(p, workers, simIters, hw)
		}},
		{"ShmCaffe", platform.ShmCaffeH{}, func() (perfmodel.IterBreakdown, error) {
			return perfmodel.SimulateHSGD(p, hsgdGroups(workers, hw.GPUsPerNode), simIters, hw)
		}},
	}
	for _, e := range entries {
		cfg, err := o.config(workers)
		if err != nil {
			return nil, err
		}
		if e.name == "ShmCaffe" {
			cfg.GroupSize = groupSizeFor(workers)
		}
		res, err := e.tr.Train(cfg)
		if err != nil {
			return nil, fmt.Errorf("fig 9 %s: %w", e.name, err)
		}
		iters := itersToAccuracy(res, targetAcc, cfg.Workers)
		b, err := e.sim()
		if err != nil {
			return nil, err
		}
		if iters < 0 {
			t.Add(e.name, "not reached", trace.Ms(b.Iter), "-")
			continue
		}
		t.Add(e.name, trace.Itoa(iters), trace.Ms(b.Iter),
			(time.Duration(iters) * b.Iter).Round(time.Millisecond).String())
	}
	return t, nil
}

// itersToAccuracy returns the per-worker iteration count at which the
// curve first reaches the target, or -1.
func itersToAccuracy(res *platform.Result, target float64, workers int) int {
	if len(res.Curve) == 0 {
		return -1
	}
	perEpoch := res.Iterations / len(res.Curve)
	for _, pt := range res.Curve {
		if pt.Accuracy >= target {
			return pt.Epoch * perEpoch
		}
	}
	return -1
}
