package bench

import (
	"fmt"

	"shmcaffe/internal/nn"
	"shmcaffe/internal/perfmodel"
	"shmcaffe/internal/trace"
)

// The ablation exhibits quantify the design choices DESIGN.md §6 calls out.
// They are extensions beyond the paper's own figures: each isolates one
// mechanism the paper asserts matters and shows its cost/benefit.

// AblationOverlap compares the Fig. 6 update-thread overlap against an
// inline (blocking) push across worker counts — the value of hiding
// T_wwi + T_ugw behind computation.
func AblationOverlap(hw perfmodel.Hardware) (*trace.Table, error) {
	t := trace.New("Ablation: overlapped vs blocking global-weight push (Inception-v1)",
		"Workers", "Overlap iter (ms)", "Blocking iter (ms)", "Overlap saves")
	for _, w := range []int{1, 4, 8, 16} {
		over, err := perfmodel.SimulateSEASGDOpts(nn.InceptionV1, w, simIters, hw,
			perfmodel.SEASGDOptions{UpdateInterval: 1})
		if err != nil {
			return nil, err
		}
		block, err := perfmodel.SimulateSEASGDOpts(nn.InceptionV1, w, simIters, hw,
			perfmodel.SEASGDOptions{UpdateInterval: 1, DisableOverlap: true})
		if err != nil {
			return nil, err
		}
		saved := 1 - over.Iter.Seconds()/block.Iter.Seconds()
		t.Add(trace.Itoa(w), trace.Ms(over.Iter), trace.Ms(block.Iter), trace.Pct(saved))
	}
	return t, nil
}

// AblationHiddenRead compares exposing the global read (the paper's
// choice) against hiding it in the update thread. Hiding saves time per
// iteration; the paper rejects it because of the extra parameter staleness
// (measured functionally by Fig11AsyncVsHybrid-style runs).
func AblationHiddenRead(hw perfmodel.Hardware) (*trace.Table, error) {
	t := trace.New("Ablation: exposed vs hidden global-weight read (Inception-v1)",
		"Workers", "Exposed iter (ms)", "Hidden iter (ms)", "Hidden saves")
	for _, w := range []int{1, 4, 8, 16} {
		exposed, err := perfmodel.SimulateSEASGDOpts(nn.InceptionV1, w, simIters, hw,
			perfmodel.SEASGDOptions{UpdateInterval: 1})
		if err != nil {
			return nil, err
		}
		hidden, err := perfmodel.SimulateSEASGDOpts(nn.InceptionV1, w, simIters, hw,
			perfmodel.SEASGDOptions{UpdateInterval: 1, HideGlobalRead: true})
		if err != nil {
			return nil, err
		}
		saved := 1 - hidden.Iter.Seconds()/exposed.Iter.Seconds()
		t.Add(trace.Itoa(w), trace.Ms(exposed.Iter), trace.Ms(hidden.Iter), trace.Pct(saved))
	}
	return t, nil
}

// AblationUpdateInterval sweeps update_interval: fewer global exchanges
// mean less traffic per iteration at the price of coarser coordination.
func AblationUpdateInterval(hw perfmodel.Hardware) (*trace.Table, error) {
	t := trace.New("Ablation: update_interval sweep (Inception-ResNet-v2, 16 workers)",
		"update_interval", "Iter (ms)", "Comm (ms)", "Comm ratio")
	for _, k := range []int{1, 2, 4, 8} {
		b, err := perfmodel.SimulateSEASGDOpts(nn.InceptionResNetV2, 16, simIters, hw,
			perfmodel.SEASGDOptions{UpdateInterval: k})
		if err != nil {
			return nil, err
		}
		t.Add(trace.Itoa(k), trace.Ms(b.Iter), trace.Ms(b.Comm), trace.Pct(b.CommRatio()))
	}
	return t, nil
}

// AblationAccumulate compares SMB's server-side Accumulate verb against a
// client-side read-modify-write of Wg — the dumb-buffer design point the
// SMB server's one extra verb buys.
func AblationAccumulate(hw perfmodel.Hardware) (*trace.Table, error) {
	t := trace.New("Ablation: server-side Accumulate vs client-side RMW (ResNet-50)",
		"Workers", "Accumulate iter (ms)", "RMW iter (ms)", "Accumulate saves")
	for _, w := range []int{2, 4, 8, 16} {
		acc, err := perfmodel.SimulateSEASGDOpts(nn.ResNet50, w, simIters, hw,
			perfmodel.SEASGDOptions{UpdateInterval: 1})
		if err != nil {
			return nil, err
		}
		rmw, err := perfmodel.SimulateSEASGDOpts(nn.ResNet50, w, simIters, hw,
			perfmodel.SEASGDOptions{UpdateInterval: 1, ClientSideRMW: true})
		if err != nil {
			return nil, err
		}
		saved := 1 - acc.Iter.Seconds()/rmw.Iter.Seconds()
		t.Add(trace.Itoa(w), trace.Ms(acc.Iter), trace.Ms(rmw.Iter), trace.Pct(saved))
	}
	return t, nil
}

// AblationGroupSize sweeps the HSGD group size at a fixed total of 16
// workers: larger groups shift traffic from the single SMB link to
// per-node PCIe.
func AblationGroupSize(hw perfmodel.Hardware) (*trace.Table, error) {
	t := trace.New("Ablation: HSGD group size at 16 workers (Inception-ResNet-v2)",
		"Layout", "Iter (ms)", "Comm (ms)", "Comm ratio")
	layouts := []struct {
		label  string
		groups []int
	}{
		{"S1xA16 (pure async)", []int{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}},
		{"S2xA8", []int{2, 2, 2, 2, 2, 2, 2, 2}},
		{"S4xA4", []int{4, 4, 4, 4}},
		{"S8xA2", []int{8, 8}},
	}
	for _, l := range layouts {
		b, err := perfmodel.SimulateHSGD(nn.InceptionResNetV2, l.groups, simIters, hw)
		if err != nil {
			return nil, fmt.Errorf("group size %s: %w", l.label, err)
		}
		t.Add(l.label, trace.Ms(b.Iter), trace.Ms(b.Comm), trace.Pct(b.CommRatio()))
	}
	return t, nil
}
