package bench

import (
	"fmt"

	"shmcaffe/internal/core"
	"shmcaffe/internal/dataset"
	"shmcaffe/internal/nn"
	"shmcaffe/internal/platform"
	"shmcaffe/internal/trace"
)

// ConvergenceOptions size the functional (real-training) experiments. The
// defaults run in seconds on a laptop; raise PerClass/Epochs to stress the
// platforms harder (the CLI exposes these).
type ConvergenceOptions struct {
	Classes  int
	PerClass int
	Features int
	Noise    float64
	Epochs   int
	Batch    int
	Seed     uint64
}

// DefaultConvergenceOptions returns the laptop-size setup.
func DefaultConvergenceOptions() ConvergenceOptions {
	return ConvergenceOptions{
		Classes:  4,
		PerClass: 80,
		Features: 8,
		Noise:    0.3,
		Epochs:   6,
		Batch:    8,
		Seed:     42,
	}
}

// config assembles a platform.Config for `workers` workers.
func (o ConvergenceOptions) config(workers int) (platform.Config, error) {
	full, err := dataset.NewGaussian(dataset.GaussianConfig{
		Classes:  o.Classes,
		PerClass: o.PerClass,
		Shape:    []int{o.Features},
		Noise:    o.Noise,
		Seed:     o.Seed,
	})
	if err != nil {
		return platform.Config{}, err
	}
	train, val, err := dataset.Split(full, 0.8)
	if err != nil {
		return platform.Config{}, err
	}
	solver := nn.DefaultSolverConfig()
	solver.BaseLR = 0.05
	features := o.Features
	classes := o.Classes
	return platform.Config{
		Workers:   workers,
		Model:     func(name string) (*nn.Network, error) { return nn.MLP(name, features, 16, classes) },
		Train:     train,
		Val:       val,
		BatchSize: o.Batch,
		Epochs:    o.Epochs,
		Solver:    solver,
		Elastic:   core.DefaultElasticConfig(),
		Seed:      o.Seed,
	}, nil
}

// Fig8Convergence reproduces Fig. 8: accuracy and loss per epoch for the
// four platforms at the given worker count (the paper plots 8 and 16
// GPUs). This is real training on the synthetic corpus — the shape to
// verify is "every platform converges; ShmCaffe tracks the synchronous
// baselines closely".
func Fig8Convergence(workers int, o ConvergenceOptions) (*trace.Table, error) {
	t := trace.New(fmt.Sprintf("Fig. 8: accuracy and loss per platform (%d workers)", workers),
		"Platform", "Epoch", "Train loss", "Val loss", "Accuracy")
	order := []struct {
		name string
		tr   platform.Trainer
	}{
		{"Caffe", platform.Caffe{}},
		{"Caffe-MPI", platform.CaffeMPI{}},
		{"MPICaffe", platform.MPICaffe{}},
		{"ShmCaffe", platform.ShmCaffeH{}},
	}
	for _, entry := range order {
		cfg, err := o.config(workers)
		if err != nil {
			return nil, err
		}
		if entry.name == "ShmCaffe" {
			cfg.GroupSize = groupSizeFor(workers)
		}
		res, err := entry.tr.Train(cfg)
		if err != nil {
			return nil, fmt.Errorf("fig 8 %s: %w", entry.name, err)
		}
		for _, p := range res.Curve {
			t.Add(entry.name, trace.Itoa(p.Epoch), trace.F2(p.TrainLoss),
				trace.F2(p.ValLoss), trace.Pct(p.Accuracy))
		}
	}
	return t, nil
}

func groupSizeFor(workers int) int {
	switch {
	case workers%4 == 0 && workers > 4:
		return 4
	case workers%2 == 0 && workers > 1:
		return 2
	default:
		return 1
	}
}

// Fig11AsyncVsHybrid reproduces Fig. 11: final accuracy and loss of
// ShmCaffe-A vs ShmCaffe-H as the worker count grows. The shape to verify:
// ShmCaffe-A's accuracy degrades at high worker counts (the ASGD staleness
// effect the paper measures as −5.7 % at 16 GPUs) while ShmCaffe-H stays
// near the 1-GPU level.
func Fig11AsyncVsHybrid(workerCounts []int, o ConvergenceOptions) (*trace.Table, error) {
	t := trace.New("Fig. 11: ShmCaffe-A vs ShmCaffe-H final accuracy/loss",
		"Workers", "A accuracy", "A loss", "H accuracy", "H loss")
	for _, w := range workerCounts {
		cfgA, err := o.config(w)
		if err != nil {
			return nil, err
		}
		resA, err := (platform.ShmCaffeA{}).Train(cfgA)
		if err != nil {
			return nil, fmt.Errorf("fig 11 A w=%d: %w", w, err)
		}
		hAcc, hLoss := "-", "-"
		if w > 1 {
			cfgH, err := o.config(w)
			if err != nil {
				return nil, err
			}
			cfgH.GroupSize = groupSizeFor(w)
			resH, err := (platform.ShmCaffeH{}).Train(cfgH)
			if err != nil {
				return nil, fmt.Errorf("fig 11 H w=%d: %w", w, err)
			}
			hAcc, hLoss = trace.Pct(resH.FinalAcc), trace.F2(resH.FinalLoss)
		}
		t.Add(trace.Itoa(w), trace.Pct(resA.FinalAcc), trace.F2(resA.FinalLoss), hAcc, hLoss)
	}
	return t, nil
}
