package bench

import (
	"strconv"
	"strings"
	"testing"

	"shmcaffe/internal/perfmodel"
)

func TestFig9TimeToAccuracy(t *testing.T) {
	o := DefaultConvergenceOptions()
	o.Epochs = 5
	tab, err := Fig9TimeToAccuracy(8, 0.9, o, perfmodel.DefaultHardware())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("fig 9 rows = %d", len(tab.Rows))
	}
	// Every platform should reach the target on this easy task, and
	// ShmCaffe's per-iteration time must be the smallest.
	var shmIter, worstIter float64
	for _, row := range tab.Rows {
		if row[1] == "not reached" {
			t.Fatalf("%s did not reach target", row[0])
		}
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if row[0] == "ShmCaffe" {
			shmIter = v
		}
		if v > worstIter {
			worstIter = v
		}
	}
	if shmIter >= worstIter {
		t.Fatalf("ShmCaffe iter %v not fastest (worst %v)", shmIter, worstIter)
	}
}

func TestAblationMovingRate(t *testing.T) {
	o := DefaultConvergenceOptions()
	o.Epochs = 3
	o.PerClass = 40
	tab, err := AblationMovingRate(4, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The paper's α=0.2 row exists and trains.
	found := false
	for _, row := range tab.Rows {
		if row[0] == "0.20" {
			found = true
			acc, err := strconv.ParseFloat(strings.TrimSuffix(row[1], "%"), 64)
			if err != nil {
				t.Fatal(err)
			}
			if acc < 50 {
				t.Fatalf("α=0.2 accuracy %.1f%%", acc)
			}
		}
	}
	if !found {
		t.Fatal("α=0.2 row missing")
	}
}

func TestAblationUpdateIntervalFunctional(t *testing.T) {
	o := DefaultConvergenceOptions()
	o.Epochs = 3
	o.PerClass = 40
	tab, err := AblationUpdateIntervalFunctional(4, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestRelatedWorkDisciplines(t *testing.T) {
	o := DefaultConvergenceOptions()
	o.Epochs = 4
	tab, err := RelatedWorkDisciplines(4, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// EASGD and SEASGD must both learn (accuracy > 60%).
	for _, row := range tab.Rows[1:] {
		acc, err := strconv.ParseFloat(strings.TrimSuffix(row[1], "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if acc < 60 {
			t.Fatalf("%s accuracy %.1f%%", row[0], acc)
		}
	}
}

func TestEq8Decomposition(t *testing.T) {
	tab := Eq8Decomposition(perfmodel.DefaultHardware())
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The VGG16 push must NOT be hidden (comm > comp, Sec. IV-E); the
	// Inception-v1 push must be hidden.
	for _, row := range tab.Rows {
		switch row[0] {
		case "vgg16":
			if row[7] != "no" {
				t.Fatalf("vgg16 push hidden = %q", row[7])
			}
		case "inception_v1":
			if row[7] != "yes" {
				t.Fatalf("inception push hidden = %q", row[7])
			}
		}
	}
}
