package bench

import (
	"fmt"

	"shmcaffe/internal/nn"
	"shmcaffe/internal/perfmodel"
	"shmcaffe/internal/trace"
)

// Figure-shaped (bar chart) views of the timing exhibits, matching the
// paper's presentation of Figs. 7, 10 and 12–15.

const (
	glyphComp = '#'
	glyphComm = '='
)

var compCommLegend = []string{"# computation", "= exposed communication"}

// Fig7Chart renders the SMB bandwidth ramp as bars.
func Fig7Chart(hw perfmodel.Hardware) (*trace.Chart, error) {
	c := trace.NewChart("Fig. 7: aggregated SMB read/write bandwidth", "GB/s")
	for _, n := range []int{2, 4, 8, 16, 32} {
		bw, err := perfmodel.SimulateSMBBandwidth(n, 1e9, 16e6, hw)
		if err != nil {
			return nil, err
		}
		c.Add(fmt.Sprintf("%2d procs", n), trace.Segment{Glyph: '#', Value: bw / 1e9})
	}
	return c, nil
}

// Fig10Chart renders the four platforms' 16-GPU iteration as stacked
// comp/comm bars.
func Fig10Chart(hw perfmodel.Hardware) (*trace.Chart, error) {
	c := trace.NewChart("Fig. 10: one Inception-v1 iteration at 16 GPUs", "ms")
	c.Legend = compCommLegend
	p := nn.InceptionV1
	add := func(name string, b perfmodel.IterBreakdown) {
		c.Add(name,
			trace.Segment{Glyph: glyphComp, Value: float64(b.Comp.Microseconds()) / 1000},
			trace.Segment{Glyph: glyphComm, Value: float64(b.Comm.Microseconds()) / 1000})
	}
	caffe, err := perfmodel.SimulateCaffe(p, 16, simIters, hw)
	if err != nil {
		return nil, err
	}
	cmpi, err := perfmodel.SimulateCaffeMPI(p, 16, simIters, hw)
	if err != nil {
		return nil, err
	}
	mpic, err := perfmodel.SimulateMPICaffe(p, 16, simIters, hw)
	if err != nil {
		return nil, err
	}
	shm, err := perfmodel.SimulateHSGD(p, hsgdGroups(16, hw.GPUsPerNode), simIters, hw)
	if err != nil {
		return nil, err
	}
	add("Caffe", caffe)
	add("Caffe-MPI", cmpi)
	add("MPICaffe", mpic)
	add("ShmCaffe", shm)
	return c, nil
}

// Fig13Chart renders ShmCaffe-A comp/comm per model at a worker count
// (the Fig. 12/13 bars).
func Fig13Chart(workers int, hw perfmodel.Hardware) (*trace.Chart, error) {
	c := trace.NewChart(
		fmt.Sprintf("Figs. 12-13: ShmCaffe-A per-model iteration at %d workers", workers), "ms")
	c.Legend = compCommLegend
	for _, p := range nn.PaperModels() {
		b, err := perfmodel.SimulateSEASGD(p, workers, simIters, hw)
		if err != nil {
			return nil, err
		}
		c.Add(p.Name,
			trace.Segment{Glyph: glyphComp, Value: float64(b.Comp.Microseconds()) / 1000},
			trace.Segment{Glyph: glyphComm, Value: float64(b.Comm.Microseconds()) / 1000})
	}
	return c, nil
}

// Fig15Chart renders A vs H per model at 16 GPUs.
func Fig15Chart(hw perfmodel.Hardware) (*trace.Chart, error) {
	c := trace.NewChart("Fig. 15: ShmCaffe-A vs -H one-iteration time at 16 GPUs", "ms")
	c.Legend = compCommLegend
	for _, p := range nn.PaperModels() {
		a, err := perfmodel.SimulateSEASGD(p, 16, simIters, hw)
		if err != nil {
			return nil, err
		}
		h, err := perfmodel.SimulateHSGD(p, hsgdGroups(16, hw.GPUsPerNode), simIters, hw)
		if err != nil {
			return nil, err
		}
		c.Add(p.Name+" (A)",
			trace.Segment{Glyph: glyphComp, Value: float64(a.Comp.Microseconds()) / 1000},
			trace.Segment{Glyph: glyphComm, Value: float64(a.Comm.Microseconds()) / 1000})
		c.Add(p.Name+" (H)",
			trace.Segment{Glyph: glyphComp, Value: float64(h.Comp.Microseconds()) / 1000},
			trace.Segment{Glyph: glyphComm, Value: float64(h.Comm.Microseconds()) / 1000})
	}
	return c, nil
}
