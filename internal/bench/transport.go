package bench

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"shmcaffe/internal/smb"
	"shmcaffe/internal/tensor"
)

// Transport microbenchmarks (DESIGN.md §16): the same two verbs — a bulk
// push (Write) and a fused WRITE+ACCUMULATE — through each transport the
// SMB client can negotiate. tcp is the staged frame protocol, tcp_sg the
// registered scatter-gather path (header+payload in one writev, replies
// landing in the caller's buffer), shm the cross-process mmap path where
// the verbs run as fused kernels against the mapped stripes.
//
// The server is a separate OS process (this binary re-exec'd via
// MaybeServeBenchChild), not an in-process goroutine: that is the real
// deployment topology — smbserver is its own binary — and it is what the
// message-passing transports are actually priced at. An in-process server
// shares the client's Go scheduler, so the producer/consumer alternation
// through the socket buffer costs a ~200ns goroutine switch instead of a
// process context switch, flattering tcp by >2x at 1MiB. The shm rows run
// the same topology (control socket to the child, SCM_RIGHTS fd pass,
// mapped data path), so all three columns price the negotiated data path
// against a real peer process.

// transportSizes are the payload points: 64 KiB (one lock stripe), 1 MiB
// (the acceptance point: spans 16 stripes and 4 chunk frames), 16 MiB (a
// full AlexNet-scale weight push, far out of cache).
var transportSizes = []struct {
	name  string
	bytes int
}{
	{"64KiB", 64 << 10},
	{"1MiB", 1 << 20},
	{"16MiB", 16 << 20},
}

// benchServeEnv marks a re-exec'd child as a bench server; its value is
// the serving mode ("tcp" or "shm" — tcp_sg is a client-side capability
// over the same server).
const benchServeEnv = "SHMCAFFE_BENCH_SERVE"

// MaybeServeBenchChild turns this process into a bench SMB server when it
// was re-exec'd by transportClient (benchServeEnv set). Returns true if it
// served — the caller's main must then return without doing anything else.
// cmd/benchtables calls this before flag parsing.
func MaybeServeBenchChild() bool {
	mode := os.Getenv(benchServeEnv)
	if mode == "" {
		return false
	}
	if err := serveBenchChild(mode); err != nil {
		fmt.Fprintln(os.Stderr, "bench server child:", err)
		os.Exit(1)
	}
	return true
}

// serveBenchChild runs the server half of the transport benchmarks: an SMB
// server on loopback TCP, plus (mode "shm") a unix control socket with shm
// export enabled. It announces its endpoints on stdout as one
// "BENCHSRV <tcp-addr> <unix-path>" line, then serves until the parent
// closes our stdin — tying the child's lifetime to the parent's so a
// crashed benchmark run cannot leak server processes.
func serveBenchChild(mode string) error {
	store := smb.NewStore()
	sock := ""
	var dir string
	if mode == "shm" {
		if !smb.ShmSupported() {
			return fmt.Errorf("shm transport not supported on this platform/build")
		}
		if err := store.EnableShm(); err != nil {
			return err
		}
	}
	srv, err := smb.NewServer(store, "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve() //lint:ignore goleak joined by srv.Close via the server's WaitGroup
	if mode == "shm" {
		dir, err = os.MkdirTemp("", "shmbench")
		if err != nil {
			srv.Close()
			return err
		}
		defer os.RemoveAll(dir)
		sock = filepath.Join(dir, "smb.sock")
		uln, err := net.Listen("unix", sock)
		if err != nil {
			srv.Close()
			return err
		}
		defer uln.Close()
		srv.SetShmAddr(sock)
		go func() { //lint:ignore goleak accept loop exits when uln closes
			for {
				conn, err := uln.Accept()
				if err != nil {
					return
				}
				go srv.ServeConn(conn)
			}
		}()
	}
	fmt.Printf("BENCHSRV %s %s\n", srv.Addr(), sock)
	io.Copy(io.Discard, os.Stdin) // block until the parent exits or hangs up
	return srv.Close()
}

// spawnBenchServer re-execs this binary as a bench server child and parses
// its endpoint announcement. The returned stop function hangs up the
// child's stdin and reaps it (killing after a grace period).
func spawnBenchServer(mode string) (tcpAddr, unixSock string, stop func(), err error) {
	exe, err := os.Executable()
	if err != nil {
		return "", "", nil, err
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), benchServeEnv+"="+mode)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return "", "", nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return "", "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return "", "", nil, err
	}
	stop = func() {
		stdin.Close() // child sees EOF and exits
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }() //lint:ignore goleak exits when the child is reaped — stdin EOF or the Kill below guarantees that
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		stop()
		return "", "", nil, fmt.Errorf("bench server child announced nothing: %w", err)
	}
	fields := strings.Fields(line)
	if len(fields) < 2 || fields[0] != "BENCHSRV" {
		stop()
		return "", "", nil, fmt.Errorf("bench server child announced %q", strings.TrimSpace(line))
	}
	tcpAddr = fields[1]
	if len(fields) > 2 {
		unixSock = fields[2]
	}
	return tcpAddr, unixSock, stop, nil
}

// transportClient stands up a separate-process server and one connected
// client for the named transport. The cleanup tears down both.
func transportClient(transport string) (smb.Client, func(), error) {
	switch transport {
	case "tcp", "tcp_sg":
		addr, _, stop, err := spawnBenchServer("tcp")
		if err != nil {
			return nil, nil, err
		}
		c, err := smb.Dial(addr)
		if err != nil {
			stop()
			return nil, nil, err
		}
		if transport == "tcp_sg" {
			c.EnableScatterGather(true)
		}
		return c, func() { c.Close(); stop() }, nil
	case "shm":
		if !smb.ShmSupported() {
			return nil, nil, nil
		}
		_, sock, stop, err := spawnBenchServer("shm")
		if err != nil {
			return nil, nil, err
		}
		if sock == "" {
			stop()
			return nil, nil, fmt.Errorf("bench server child announced no unix socket in shm mode")
		}
		c, err := smb.DialShm(sock)
		if err != nil {
			stop()
			return nil, nil, err
		}
		return c, func() { c.Close(); stop() }, nil
	default:
		return nil, nil, fmt.Errorf("unknown bench transport %q", transport)
	}
}

// transportKernelRows appends the transport/{tcp,tcp_sg,shm} push and
// accumulate rows plus the cross-transport speedups at 1 MiB. quick trims
// the 16 MiB point and the repeat count.
func transportKernelRows(rep *KernelReport, quick bool) error {
	sizes := transportSizes
	if quick {
		sizes = transportSizes[:2]
	}
	// ns/op at 1 MiB per transport, for the speedup rows.
	push1M := map[string]float64{}
	acc1M := map[string]float64{}

	for _, transport := range []string{"tcp", "tcp_sg", "shm"} {
		c, cleanup, err := transportClient(transport)
		if err != nil {
			return err
		}
		if c != nil {
			if _, ok := c.(smb.WriteAccumulator); !ok {
				cleanup()
				return fmt.Errorf("transport %q client does not implement WriteAccumulator", transport)
			}
		}
		if c == nil {
			// shm not supported on this platform/build: skip the rows rather
			// than emit numbers for a transport the host cannot negotiate.
			continue
		}
		for _, sz := range sizes {
			vals := sz.bytes / 4
			key, err := c.Create(fmt.Sprintf("bench/%s/wg/%s", transport, sz.name), sz.bytes)
			if err != nil {
				cleanup()
				return err
			}
			hg, err := c.Attach(key)
			if err != nil {
				cleanup()
				return err
			}
			kd, err := c.Create(fmt.Sprintf("bench/%s/dw/%s", transport, sz.name), sz.bytes)
			if err != nil {
				cleanup()
				return err
			}
			hd, err := c.Attach(kd)
			if err != nil {
				cleanup()
				return err
			}
			buf := make([]float32, vals)
			kernelFill(buf, 11)
			raw := tensor.Float32Bytes(buf)
			// The 16 MiB points are bandwidth-bound and stable; the smaller
			// points decide the acceptance ratios and get the benchMin
			// treatment against scheduler noise — min-of-5 at the 1 MiB
			// acceptance point, where a single steal-time spike in either
			// the numerator or denominator row would swing the committed
			// cross-transport ratios.
			reps := 3
			if sz.bytes == 1<<20 {
				reps = 5
			}
			if quick || sz.bytes >= 16<<20 {
				reps = 1
			}
			push := benchMin(reps, func(bb *testing.B) {
				bb.ReportAllocs()
				for i := 0; i < bb.N; i++ {
					if err := c.Write(hg, 0, raw); err != nil {
						bb.Fatal(err)
					}
				}
			})
			wa := c.(smb.WriteAccumulator)
			acc := benchMin(reps, func(bb *testing.B) {
				bb.ReportAllocs()
				for i := 0; i < bb.N; i++ {
					if err := wa.WriteAccumulate(hg, hd, raw); err != nil {
						bb.Fatal(err)
					}
				}
			})
			rep.Results = append(rep.Results,
				benchResult(fmt.Sprintf("transport/%s/push/%s", transport, sz.name), int64(sz.bytes), push),
				benchResult(fmt.Sprintf("transport/%s/accumulate/%s", transport, sz.name), int64(sz.bytes), acc))
			if sz.bytes == 1<<20 {
				push1M[transport] = float64(push.T.Nanoseconds()) / float64(push.N)
				acc1M[transport] = float64(acc.T.Nanoseconds()) / float64(acc.N)
			}
		}
		cleanup()
	}

	if tcp, sg := push1M["tcp"], push1M["tcp_sg"]; tcp > 0 && sg > 0 {
		rep.Speedups["transport/tcp_sg_vs_tcp/push/1MiB"] = tcp / sg
	}
	if tcp, sg := acc1M["tcp"], acc1M["tcp_sg"]; tcp > 0 && sg > 0 {
		rep.Speedups["transport/tcp_sg_vs_tcp/accumulate/1MiB"] = tcp / sg
	}
	if tcp, shm := acc1M["tcp"], acc1M["shm"]; tcp > 0 && shm > 0 {
		rep.Speedups["transport/shm_vs_tcp/accumulate/1MiB"] = tcp / shm
	}
	if tcp, shm := push1M["tcp"], push1M["shm"]; tcp > 0 && shm > 0 {
		rep.Speedups["transport/shm_vs_tcp/push/1MiB"] = tcp / shm
	}
	return nil
}
