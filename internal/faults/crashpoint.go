package faults

import "os"

// armedCrashPoint names the single crash point armed for this process, read
// once at startup from SHMCAFFE_CRASHPOINT. Fault-injection tests re-exec a
// helper with the variable set to make it die at a precise place — e.g.
// "shm-mid-accumulate" kills a mapped client while it holds a shared stripe
// lock, which is how the server's dead-lease reap is exercised.
var armedCrashPoint = os.Getenv("SHMCAFFE_CRASHPOINT")

// CrashPoint terminates the process (exit 137, mimicking SIGKILL) when the
// named point is armed. Unarmed it is a single branch on a package-level
// string — cheap enough to sit on hot paths.
func CrashPoint(point string) {
	if armedCrashPoint != "" && armedCrashPoint == point {
		os.Exit(137)
	}
}
