package faults

import (
	"fmt"
	"time"

	"shmcaffe/internal/simnet"
)

// simnet integration: the same fault mix, in virtual time. A faulty
// transfer draws from the injector's seeded stream exactly like a Conn op
// does, so protocol models built on simnet (partition/crash experiments,
// the SupervisedClient property tests) replay bit-identically from a seed.

// Outage is a closed-open virtual-time window during which every faulty
// transfer fails — the network-partition primitive.
type Outage struct {
	From, To time.Duration
}

// AddOutage schedules a virtual-time partition window on the injector.
func (i *Injector) AddOutage(from, to time.Duration) {
	i.outMu.Lock()
	i.outages = append(i.outages, Outage{From: from, To: to})
	i.outMu.Unlock()
}

// inOutage reports whether virtual time now falls in a partition window.
func (i *Injector) inOutage(now time.Duration) bool {
	i.outMu.Lock()
	defer i.outMu.Unlock()
	for _, o := range i.outages {
		if o.From <= now && now < o.To {
			return true
		}
	}
	return false
}

// Transfer is simnet.Proc.Transfer with the injector's fault mix applied:
// injected delays become virtual-time sleeps, a partition window or a drawn
// drop fails the transfer after a prefix of the bytes has crossed the links
// (consuming the same virtual time a real half-finished transfer would).
func (i *Injector) Transfer(p *simnet.Proc, bytes float64, links ...*simnet.Link) error {
	if d := i.drawDelay(); d > 0 {
		p.Sleep(d)
	}
	if i.inOutage(p.Now()) {
		i.drops.Add(1)
		return fmt.Errorf("faults: transfer at %v inside partition window: %w", p.Now(), ErrInjected)
	}
	if i.drawDrop() {
		// The connection dies mid-flight: a deterministic half of the
		// payload occupies the links before the failure surfaces.
		if bytes > 1 {
			p.Transfer(bytes*i.roll(), links...)
		}
		return fmt.Errorf("faults: transfer dropped: %w", ErrInjected)
	}
	p.Transfer(bytes, links...)
	return nil
}
