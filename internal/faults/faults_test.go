package faults

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"shmcaffe/internal/simnet"
)

// TestSeedDeterminism: two injectors with the same seed deal the identical
// fault schedule; different seeds diverge.
func TestSeedDeterminism(t *testing.T) {
	cfg := Config{DropRate: 0.3, DelayRate: 0.2, PartialWriteRate: 0.1, Seed: 42}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 1000; i++ {
		if a.roll() != b.roll() {
			t.Fatalf("same-seed injectors diverged at draw %d", i)
		}
	}
	c := New(Config{Seed: 43})
	same := 0
	d := New(Config{Seed: 42})
	for i := 0; i < 100; i++ {
		if c.roll() == d.roll() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("different seeds produced %d/100 equal draws", same)
	}
}

// TestConnDropLatch: after an injected drop, every later op fails with
// ErrInjected without touching the transport.
func TestConnDropLatch(t *testing.T) {
	// DropRate 1: the very first op drops.
	inj := New(Config{DropRate: 1, Seed: 1})
	a, b := net.Pipe()
	defer b.Close()
	conn := inj.WrapConn(a)
	if _, err := conn.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("first write: got %v, want ErrInjected", err)
	}
	if _, err := conn.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read after drop: got %v, want ErrInjected", err)
	}
	if got := inj.Stats().Drops; got != 1 {
		t.Fatalf("drops = %d, want 1 (dead latch must not re-draw)", got)
	}
}

// TestConnPartialWrite: a partial write pushes a strict prefix into the
// transport, then kills the connection.
func TestConnPartialWrite(t *testing.T) {
	inj := New(Config{PartialWriteRate: 1, Seed: 7})
	a, b := net.Pipe()
	defer b.Close()
	conn := inj.WrapConn(a)

	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 64)
		n, _ := io.ReadFull(b, buf)
		got <- buf[:n]
	}()

	payload := []byte("0123456789abcdef")
	n, err := conn.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("partial write: got err %v, want ErrInjected", err)
	}
	if n <= 0 || n >= len(payload) {
		t.Fatalf("partial write kept %d of %d bytes, want strict prefix", n, len(payload))
	}
	if prefix := <-got; len(prefix) != n {
		t.Fatalf("transport saw %d bytes, writer reported %d", len(prefix), n)
	}
	if inj.Stats().PartialWrites != 1 {
		t.Fatalf("stats: %+v, want 1 partial write", inj.Stats())
	}
}

// TestConnDelay: DelayRate 1 stalls every op but the op still succeeds.
func TestConnDelay(t *testing.T) {
	inj := New(Config{DelayRate: 1, MaxDelay: time.Millisecond, Seed: 3})
	a, b := net.Pipe()
	defer b.Close()
	conn := inj.WrapConn(a)
	go io.Copy(io.Discard, b)
	if _, err := conn.Write([]byte("x")); err != nil {
		t.Fatalf("delayed write failed: %v", err)
	}
	if inj.Stats().Delays != 1 {
		t.Fatalf("stats: %+v, want 1 delay", inj.Stats())
	}
}

// echoFrontend is a minimal Frontend: echoes bytes until closed. Close
// kills live connections too — the Frontend contract, matched by
// smb.Server.Close.
type echoFrontend struct {
	ln net.Listener

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

func newEchoFrontend(addr string) (Frontend, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &echoFrontend{ln: ln, conns: make(map[net.Conn]struct{})}, nil
}

func (e *echoFrontend) Addr() string { return e.ln.Addr().String() }
func (e *echoFrontend) Serve() error {
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return err
		}
		e.mu.Lock()
		e.conns[conn] = struct{}{}
		e.mu.Unlock()
		go func() {
			defer conn.Close()
			io.Copy(conn, conn)
		}()
	}
}
func (e *echoFrontend) Close() error {
	e.mu.Lock()
	for conn := range e.conns {
		conn.Close()
	}
	e.mu.Unlock()
	return e.ln.Close()
}

// TestRestartableServer: crash breaks live connections, restart comes back
// on the same address, Crashes counts cycles.
func TestRestartableServer(t *testing.T) {
	rs, err := NewRestartableServer("127.0.0.1:0", newEchoFrontend)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	addr := rs.Addr()

	dial := func() net.Conn {
		t.Helper()
		var conn net.Conn
		for attempt := 0; attempt < 50; attempt++ {
			conn, err = net.Dial("tcp", addr)
			if err == nil {
				return conn
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("dial %s: %v", addr, err)
		return nil
	}

	roundTrip := func(conn net.Conn) error {
		if _, err := conn.Write([]byte("ping")); err != nil {
			return err
		}
		buf := make([]byte, 4)
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		_, err := io.ReadFull(conn, buf)
		return err
	}

	conn := dial()
	if err := roundTrip(conn); err != nil {
		t.Fatalf("pre-crash round trip: %v", err)
	}

	if err := rs.Crash(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	if err := roundTrip(conn); err == nil {
		t.Fatal("round trip on crashed server succeeded")
	}
	conn.Close()

	if err := rs.Restart(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if got := rs.Addr(); got != addr {
		t.Fatalf("address changed across restart: %s -> %s", addr, got)
	}
	conn2 := dial()
	defer conn2.Close()
	if err := roundTrip(conn2); err != nil {
		t.Fatalf("post-restart round trip: %v", err)
	}
	if rs.Crashes() != 1 {
		t.Fatalf("crashes = %d, want 1", rs.Crashes())
	}
}

// TestSimTransferOutage: inside a partition window every transfer fails;
// a retry loop that outlives the window completes, deterministically in
// virtual time.
func TestSimTransferOutage(t *testing.T) {
	run := func(seed uint64) (time.Duration, int) {
		sim := simnet.New()
		link, err := simnet.NewLink("wire", 1e9, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		inj := New(Config{Seed: seed})
		inj.AddOutage(0, 100*time.Millisecond)
		var done time.Duration
		retries := 0
		sim.Go("worker", func(p *simnet.Proc) {
			for {
				if err := inj.Transfer(p, 1e6, link); err == nil {
					break
				}
				retries++
				p.Sleep(30 * time.Millisecond)
			}
			done = p.Now()
		})
		sim.Run()
		return done, retries
	}
	d1, r1 := run(5)
	d2, r2 := run(5)
	if d1 != d2 || r1 != r2 {
		t.Fatalf("same seed, different schedule: (%v,%d) vs (%v,%d)", d1, r1, d2, r2)
	}
	if r1 == 0 {
		t.Fatal("no retries: outage window never hit")
	}
	if d1 < 100*time.Millisecond {
		t.Fatalf("completed at %v, inside the outage window", d1)
	}
}

// TestSimTransferDrop: drops consume virtual time for the partial payload
// and surface ErrInjected.
func TestSimTransferDrop(t *testing.T) {
	sim := simnet.New()
	link, err := simnet.NewLink("wire", 1e9, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	inj := New(Config{DropRate: 1, Seed: 9})
	var got error
	sim.Go("w", func(p *simnet.Proc) {
		got = inj.Transfer(p, 1e6, link)
	})
	sim.Run()
	if !errors.Is(got, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", got)
	}
}
