// Package faults is the repository's fault-injection toolkit: deterministic,
// seeded corruption of the transports the SMB data path runs over. The paper's
// platform assumes the memory server and every worker stay up for the whole
// job; this package exists to manufacture the opposite — dropped connections,
// delayed frames, partial writes, and whole-server crash/restart cycles — so
// the supervision layer (smb.SupervisedClient, the crash-aware termination
// alignment in internal/core) can be tested against failures that are
// reproducible from a seed instead of waiting for real hardware to misbehave.
//
// Three integration surfaces:
//
//   - Conn wraps any io.ReadWriteCloser (wire transports; see conn.go),
//   - RestartableServer crash/restarts a serving frontend over a persistent
//     backend (the SMB test servers and cmd/smbserver chaos mode; restart.go),
//   - Injector.Transfer injects the same fault mix into simnet virtual-time
//     transfers (sim.go).
package faults

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"shmcaffe/internal/telemetry"
)

// ErrInjected marks every failure this package manufactures; tests and
// retry loops match it with errors.Is to distinguish injected faults from
// genuine ones.
var ErrInjected = errors.New("faults: injected failure")

// Config declares the fault mix. The zero value injects nothing.
type Config struct {
	// DropRate is the probability, per connection operation, that the
	// connection fails hard (the op errors and the connection is dead
	// from then on).
	DropRate float64
	// DelayRate is the probability, per connection operation, of an
	// injected stall of up to MaxDelay.
	DelayRate float64
	// MaxDelay bounds an injected delay (uniform in (0, MaxDelay]).
	// Zero with a non-zero DelayRate defaults to 5ms.
	MaxDelay time.Duration
	// PartialWriteRate is the probability, per Write, that only a prefix
	// of the buffer reaches the transport before the connection dies —
	// the mid-frame truncation that desynchronizes a length-prefixed
	// protocol.
	PartialWriteRate float64
	// Seed drives the deterministic PRNG. Runs with the same seed and the
	// same single-threaded operation order inject the same faults.
	Seed uint64
}

// Enabled reports whether the config can inject anything at all.
func (c Config) Enabled() bool {
	return c.DropRate > 0 || c.DelayRate > 0 || c.PartialWriteRate > 0
}

// Fault kind codes recorded as the EvFaultInjected payload.
const (
	faultDrop int64 = iota
	faultDelay
	faultPartial
)

// Stats counts the faults an Injector has dealt.
type Stats struct {
	Drops         int64
	Delays        int64
	PartialWrites int64
}

// Injector deals faults according to a Config, from a seeded splitmix64
// stream. Safe for concurrent use; concurrency makes the per-connection
// interleaving scheduler-dependent, but the total fault budget still
// follows the seed.
type Injector struct {
	cfg Config

	mu    sync.Mutex
	state uint64 // guarded by mu

	outMu   sync.Mutex
	outages []Outage // guarded by outMu; virtual-time partition windows (sim.go)

	drops    atomic.Int64
	delays   atomic.Int64
	partials atomic.Int64
}

// New returns an injector dealing cfg's fault mix.
func New(cfg Config) *Injector {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 5 * time.Millisecond
	}
	// Seed 0 and 1 must diverge immediately; splitmix64 guarantees it.
	return &Injector{cfg: cfg, state: cfg.Seed}
}

// Config returns the injector's fault mix.
func (i *Injector) Config() Config { return i.cfg }

// Stats snapshots the injected-fault counters.
func (i *Injector) Stats() Stats {
	return Stats{
		Drops:         i.drops.Load(),
		Delays:        i.delays.Load(),
		PartialWrites: i.partials.Load(),
	}
}

// splitmix64 advances x and returns the next output of Vigna's splitmix64
// generator — small, stateless between calls, and good enough to turn one
// seed into an arbitrary fault schedule.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// roll draws a uniform float64 in [0, 1).
func (i *Injector) roll() float64 {
	i.mu.Lock()
	v := splitmix64(&i.state)
	i.mu.Unlock()
	return float64(v>>11) / float64(1<<53)
}

// drawDrop reports whether the next operation should drop the connection.
func (i *Injector) drawDrop() bool {
	if i.cfg.DropRate <= 0 || i.roll() >= i.cfg.DropRate {
		return false
	}
	i.drops.Add(1)
	telemetry.RecordEvent(telemetry.EvFaultInjected, faultDrop, 0, 0)
	return true
}

// drawDelay returns the injected stall for the next operation (0 = none).
func (i *Injector) drawDelay() time.Duration {
	if i.cfg.DelayRate <= 0 || i.roll() >= i.cfg.DelayRate {
		return 0
	}
	i.delays.Add(1)
	telemetry.RecordEvent(telemetry.EvFaultInjected, faultDelay, 0, 0)
	frac := i.roll()
	d := time.Duration(frac * float64(i.cfg.MaxDelay))
	if d <= 0 {
		d = time.Microsecond
	}
	return d
}

// drawPartial returns how many of n bytes survive a partial write, and
// whether a partial write was injected at all.
func (i *Injector) drawPartial(n int) (int, bool) {
	if i.cfg.PartialWriteRate <= 0 || n < 2 || i.roll() >= i.cfg.PartialWriteRate {
		return n, false
	}
	i.partials.Add(1)
	telemetry.RecordEvent(telemetry.EvFaultInjected, faultPartial, 0, 0)
	keep := 1 + int(i.roll()*float64(n-1))
	if keep >= n {
		keep = n - 1
	}
	return keep, true
}
