package faults

import (
	"fmt"
	"io"
	"net"
	"time"
)

// Conn wraps a stream connection and injects the owner's fault mix into
// every Read and Write: delays stall the op, drops kill the connection with
// ErrInjected, and partial writes push a prefix of the buffer into the
// transport before killing it — the truncated-frame case a length-prefixed
// protocol must treat as poison.
//
// Deadlines pass through to the underlying connection when it supports
// them, so smb.StreamClient's per-op deadlines keep working through the
// wrapper.
type Conn struct {
	inner io.ReadWriteCloser
	inj   *Injector

	// dead latches the first injected drop: once a connection drops, every
	// later op fails the same way, matching a real broken socket. Reads
	// and writes on an smb connection are already serialized by the
	// client/handler, so a plain bool with no lock is deliberate — the
	// wrapper must not add synchronization the wrapped protocol doesn't
	// have.
	dead bool
}

// WrapConn returns conn with i's fault mix injected. A nil injector (or a
// config that injects nothing) still wraps, costing one PRNG draw per op.
func (i *Injector) WrapConn(conn io.ReadWriteCloser) *Conn {
	return &Conn{inner: conn, inj: i}
}

// enter applies the shared pre-op faults (delay, drop). It reports whether
// the op may proceed.
func (c *Conn) enter(op string) error {
	if c.dead {
		return fmt.Errorf("faults: %s on dropped connection: %w", op, ErrInjected)
	}
	if d := c.inj.drawDelay(); d > 0 {
		time.Sleep(d)
	}
	if c.inj.drawDrop() {
		c.dead = true
		c.inner.Close()
		return fmt.Errorf("faults: %s dropped: %w", op, ErrInjected)
	}
	return nil
}

// Read implements io.Reader with fault injection.
func (c *Conn) Read(p []byte) (int, error) {
	if err := c.enter("read"); err != nil {
		return 0, err
	}
	return c.inner.Read(p)
}

// Write implements io.Writer with fault injection.
func (c *Conn) Write(p []byte) (int, error) {
	if err := c.enter("write"); err != nil {
		return 0, err
	}
	if keep, ok := c.inj.drawPartial(len(p)); ok {
		n, err := c.inner.Write(p[:keep])
		c.dead = true
		c.inner.Close()
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("faults: write truncated after %d/%d bytes: %w", n, len(p), ErrInjected)
	}
	return c.inner.Write(p)
}

// Close implements io.Closer.
func (c *Conn) Close() error { return c.inner.Close() }

// deadliner is the deadline surface of net.Conn; the wrapper forwards it
// when the wrapped transport has one.
type deadliner interface {
	SetDeadline(t time.Time) error
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// SetDeadline forwards to the underlying connection when supported.
func (c *Conn) SetDeadline(t time.Time) error {
	if d, ok := c.inner.(deadliner); ok {
		return d.SetDeadline(t)
	}
	return nil
}

// SetReadDeadline forwards to the underlying connection when supported.
func (c *Conn) SetReadDeadline(t time.Time) error {
	if d, ok := c.inner.(deadliner); ok {
		return d.SetReadDeadline(t)
	}
	return nil
}

// SetWriteDeadline forwards to the underlying connection when supported.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	if d, ok := c.inner.(deadliner); ok {
		return d.SetWriteDeadline(t)
	}
	return nil
}

// Listener wraps accepted connections of a net.Listener with an injector —
// the server-side chaos tap used by cmd/smbserver's chaos flags.
type Listener struct {
	net.Listener
	inj *Injector
}

// WrapListener returns ln with every accepted connection fault-wrapped.
func (i *Injector) WrapListener(ln net.Listener) *Listener {
	return &Listener{Listener: ln, inj: i}
}

// Accept wraps the accepted connection. The result still satisfies
// net.Conn's deadline surface via the embedded forwarding methods.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &listenerConn{Conn: conn, faulty: l.inj.WrapConn(conn)}, nil
}

// listenerConn is a net.Conn whose Read/Write go through the fault wrapper
// while everything else (addresses, deadlines) hits the real connection.
type listenerConn struct {
	net.Conn
	faulty *Conn
}

func (c *listenerConn) Read(p []byte) (int, error)  { return c.faulty.Read(p) }
func (c *listenerConn) Write(p []byte) (int, error) { return c.faulty.Write(p) }
