package faults

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"shmcaffe/internal/telemetry"
)

// Frontend is the serving plane a RestartableServer cycles: something that
// owns a listener on a fixed address and handles connections until closed.
// smb.Server satisfies it.
type Frontend interface {
	// Addr returns the bound listen address.
	Addr() string
	// Serve accepts and handles connections until Close; it always returns
	// a non-nil error afterwards.
	Serve() error
	// Close stops the listener, kills live connections, and waits for
	// handlers to drain.
	Close() error
}

// Factory builds a fresh frontend bound to addr. The factory closes over
// the persistent backend (for SMB: the segment Store), which is exactly
// what makes the crash model meaningful — the serving plane dies and
// returns, the data survives, clients must reconnect and re-attach.
type Factory func(addr string) (Frontend, error)

// RestartableServer models a server process that can crash and come back
// on the same address: Crash kills the frontend (every live connection
// breaks mid-operation), Restart rebinds the address with a fresh one.
// The backend the Factory closes over persists across cycles.
type RestartableServer struct {
	factory Factory

	mu       sync.Mutex
	cur      Frontend // guarded by mu; nil while crashed
	addr     string   // guarded by mu; sticky after first bind
	closed   bool     // guarded by mu
	dumpPath string   // guarded by mu; "" disables the crash-time dump
	crashes  atomic.Int64
}

// NewRestartableServer builds the first frontend on addr (use
// "127.0.0.1:0" for an ephemeral port — later restarts reuse the resolved
// address) and starts serving in a background goroutine.
func NewRestartableServer(addr string, factory Factory) (*RestartableServer, error) {
	r := &RestartableServer{factory: factory, addr: addr}
	if err := r.start(); err != nil {
		return nil, err
	}
	return r, nil
}

// start binds a fresh frontend; caller must not hold r.mu.
func (r *RestartableServer) start() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("faults: restartable server closed")
	}
	if r.cur != nil {
		return nil
	}
	// Rebinding the just-released port can momentarily fail while the old
	// listener's close settles; retry briefly — a restarting process would
	// do the same.
	var (
		fe  Frontend
		err error
	)
	for attempt := 0; attempt < 50; attempt++ {
		fe, err = r.factory(r.addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("faults: rebind %s: %w", r.addr, err)
	}
	r.addr = fe.Addr() // resolve :0 once, then stick to the concrete port
	r.cur = fe
	if n := r.crashes.Load(); n > 0 {
		telemetry.RecordEvent(telemetry.EvChaosRestart, n, 0, 0)
	}
	go fe.Serve() //lint:ignore goleak Serve exits when Crash/Close closes the frontend
	return nil
}

// SetDumpPath enables a flight-recorder text dump to path on every Crash —
// the post-mortem record of what the process saw leading up to the outage.
func (r *RestartableServer) SetDumpPath(path string) {
	r.mu.Lock()
	r.dumpPath = path
	r.mu.Unlock()
}

// Addr returns the server's concrete address (stable across restarts).
func (r *RestartableServer) Addr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.addr
}

// Crashes returns how many times Crash has fired.
func (r *RestartableServer) Crashes() int64 { return r.crashes.Load() }

// Crash kills the frontend: the listener closes and every live connection
// breaks. The backend state is untouched. No-op while already down.
func (r *RestartableServer) Crash() error {
	r.mu.Lock()
	fe := r.cur
	r.cur = nil
	dump := r.dumpPath
	r.mu.Unlock()
	if fe == nil {
		return nil
	}
	telemetry.RecordEvent(telemetry.EvChaosCrash, r.crashes.Add(1), 0, 0)
	if dump != "" {
		// Best-effort: the dump is diagnostics, the crash semantics (every
		// live connection breaks) must proceed regardless.
		_ = telemetry.DumpEvents(dump)
	}
	return fe.Close()
}

// Restart brings a crashed server back on the same address. No-op while up.
func (r *RestartableServer) Restart() error { return r.start() }

// CrashFor crashes the server, keeps it down for d, then restarts it —
// the one-line outage used by tests and the smbserver chaos flag.
func (r *RestartableServer) CrashFor(d time.Duration) error {
	if err := r.Crash(); err != nil {
		return err
	}
	time.Sleep(d)
	return r.Restart()
}

// Close shuts the server down for good.
func (r *RestartableServer) Close() error {
	r.mu.Lock()
	fe := r.cur
	r.cur = nil
	r.closed = true
	r.mu.Unlock()
	if fe == nil {
		return nil
	}
	return fe.Close()
}
