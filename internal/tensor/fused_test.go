package tensor

import (
	"math"
	"testing"
)

// fusedSizes exercises the unrolled kernels around the lane-width
// boundaries: empty, sub-lane, exactly one block, block+tail, many blocks
// with odd tails, and a large size representative of real weight vectors.
var fusedSizes = []int{0, 1, 3, 7, 8, 9, 15, 16, 17, 31, 63, 64, 65, 100, 1000, 4097}

// fusedAlphas includes the common SEASGD moving rates plus awkward values
// (negative, subnormal-producing, exactly one).
var fusedAlphas = []float32{0, 1, -1, 0.5, 0.9, 0.001, -0.25, 1.5}

// cloneSlice copies a float32 slice.
func cloneSlice(s []float32) []float32 {
	c := make([]float32, len(s))
	copy(c, s)
	return c
}

// bitsEqual reports whether two slices are bit-for-bit identical (NaNs with
// equal payloads compare equal; +0 and -0 do not).
func bitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// unaligned returns a view of data starting at an offset that is not a
// multiple of the lane width, so the unrolled body runs over blocks whose
// base address is not 32-byte aligned.
func unaligned(data []float32, off, n int) []float32 {
	return data[off : off+n]
}

// fmaRef64 computes the FusedAxpyCopy float64 reference: the float32
// operands convert and multiply exactly in float64, so each element is a
// single 53-bit rounding of the mathematically exact y + alpha*x —
// within half a float32 ULP of the true value after the final
// conversion. The FMA-contracted kernel is compared against this, not
// against the two-rounding scalar body (whose distance from the FMA
// result is unbounded under cancellation).
func fmaRef64(alpha float32, x, y []float32) []float32 {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	ref := make([]float32, n)
	for i := range ref {
		ref[i] = float32(float64(y[i]) + float64(alpha)*float64(x[i]))
	}
	return ref
}

// assertWithin1ULP checks the contracted kernel output against fmaRef64:
// both are correctly rounded, so they sit at most one representable value
// apart. Same-signed overflow (one side MaxFloat32, the other Inf, which
// double rounding through float64 can produce at the overflow threshold)
// also passes.
func assertWithin1ULP(t *testing.T, tag string, got, ref []float32) {
	t.Helper()
	if len(got) != len(ref) {
		t.Fatalf("%s: length %d vs %d", tag, len(got), len(ref))
	}
	for i := range ref {
		if d := ulpDistance32(got[i], ref[i]); d > 1 {
			g, r := float64(got[i]), float64(ref[i])
			if math.Abs(g) >= math.MaxFloat32 && math.Abs(r) >= math.MaxFloat32 && math.Signbit(g) == math.Signbit(r) {
				continue
			}
			t.Fatalf("%s: element %d: got %v, float64 ref %v (%.1f ULPs)", tag, i, got[i], ref[i], d)
		}
	}
}

func TestFusedElasticStepMatchesScalar(t *testing.T) {
	for _, n := range fusedSizes {
		for _, alpha := range fusedAlphas {
			for _, off := range []int{0, 1, 3, 5} {
				local := make([]float32, off+n)
				global := make([]float32, off+n)
				delta := make([]float32, off+n)
				fillPattern(local, 1)
				fillPattern(global, 2)
				fillPattern(delta, 3)
				wantLocal := cloneSlice(local)
				wantDelta := cloneSlice(delta)

				FusedElasticStep(alpha, unaligned(delta, off, n), unaligned(local, off, n), unaligned(global, off, n))
				fusedElasticStepScalar(alpha, unaligned(wantDelta, off, n), unaligned(wantLocal, off, n), unaligned(global, off, n))

				if !bitsEqual(delta, wantDelta) || !bitsEqual(local, wantLocal) {
					t.Fatalf("FusedElasticStep n=%d alpha=%v off=%d diverges from scalar", n, alpha, off)
				}
			}
		}
	}
}

// TestFusedElasticStepMatchesTwoPass pins the fused sweep against the
// unfused algebra (Eq. 5 then Eq. 6 as separate passes) on disjoint
// operands — the exact sequence Worker.Run used to execute.
func TestFusedElasticStepMatchesTwoPass(t *testing.T) {
	for _, n := range fusedSizes {
		for _, alpha := range fusedAlphas {
			local := make([]float32, n)
			global := make([]float32, n)
			delta := make([]float32, n)
			fillPattern(local, 4)
			fillPattern(global, 5)
			wantLocal := cloneSlice(local)
			wantDelta := make([]float32, n)

			FusedElasticStep(alpha, delta, local, global)

			for i := 0; i < n; i++ { // Eq. 5
				wantDelta[i] = alpha * (wantLocal[i] - global[i])
			}
			for i := 0; i < n; i++ { // Eq. 6
				wantLocal[i] -= wantDelta[i]
			}
			if !bitsEqual(delta, wantDelta) || !bitsEqual(local, wantLocal) {
				t.Fatalf("FusedElasticStep n=%d alpha=%v diverges from two-pass reference", n, alpha)
			}
		}
	}
}

func TestFusedElasticExchangeMatchesScalar(t *testing.T) {
	for _, n := range fusedSizes {
		for _, alpha := range fusedAlphas {
			for _, off := range []int{0, 2} {
				local := make([]float32, off+n)
				global := make([]float32, off+n)
				delta := make([]float32, off+n)
				fillPattern(local, 6)
				fillPattern(global, 7)
				wantLocal := cloneSlice(local)
				wantGlobal := cloneSlice(global)
				wantDelta := cloneSlice(delta)

				FusedElasticExchange(alpha, unaligned(delta, off, n), unaligned(local, off, n), unaligned(global, off, n))
				fusedElasticExchangeScalar(alpha, unaligned(wantDelta, off, n), unaligned(wantLocal, off, n), unaligned(wantGlobal, off, n))

				if !bitsEqual(delta, wantDelta) || !bitsEqual(local, wantLocal) || !bitsEqual(global, wantGlobal) {
					t.Fatalf("FusedElasticExchange n=%d alpha=%v off=%d diverges from scalar", n, alpha, off)
				}
			}
		}
	}
}

func TestFusedAxpyCopyMatchesScalar(t *testing.T) {
	for _, n := range fusedSizes {
		for _, alpha := range fusedAlphas {
			for _, off := range []int{0, 1, 7} {
				x := make([]float32, off+n)
				y := make([]float32, off+n)
				dst := make([]float32, off+n)
				fillPattern(x, 8)
				fillPattern(y, 9)
				want := make([]float32, off+n)
				fallback := make([]float32, off+n)

				FusedAxpyCopy(alpha, unaligned(x, off, n), unaligned(y, off, n), unaligned(dst, off, n))
				fusedAxpyCopyScalar(alpha, unaligned(x, off, n), unaligned(y, off, n), unaligned(want, off, n))
				fusedAxpyCopyUnrolled(alpha, unaligned(x, off, n), unaligned(y, off, n), unaligned(fallback, off, n))

				// The portable body is bitwise against the scalar loop in
				// every build; the dispatched kernel is too unless it is
				// FMA-contracted, in which case it must instead sit within
				// 1 ULP of the float64 reference.
				if !bitsEqual(fallback, want) {
					t.Fatalf("fusedAxpyCopyUnrolled n=%d alpha=%v off=%d diverges from scalar", n, alpha, off)
				}
				if SimdEnabled() {
					ref := fmaRef64(alpha, unaligned(x, off, n), unaligned(y, off, n))
					assertWithin1ULP(t, "FusedAxpyCopy(fma)", unaligned(dst, off, n), ref)
				} else if !bitsEqual(dst, want) {
					t.Fatalf("FusedAxpyCopy n=%d alpha=%v off=%d diverges from scalar", n, alpha, off)
				}
			}
		}
	}
}

// TestFusedAxpyCopyAliased exercises dst aliasing each source exactly — the
// in-place forms the Residual layers use (y += alpha*x written as
// FusedAxpyCopy(alpha, x, y, y)).
func TestFusedAxpyCopyAliased(t *testing.T) {
	for _, n := range fusedSizes {
		alpha := float32(0.75)

		// dst aliases y: dst = y + alpha*x in place.
		x := make([]float32, n)
		y := make([]float32, n)
		fillPattern(x, 10)
		fillPattern(y, 11)
		ref := fmaRef64(alpha, x, y) // from pre-aliasing state
		want := cloneSlice(y)
		fusedAxpyCopyScalar(alpha, x, want, want)
		FusedAxpyCopy(alpha, x, y, y)
		if SimdEnabled() {
			assertWithin1ULP(t, "FusedAxpyCopy(fma) dst==y", y, ref)
		} else if !bitsEqual(y, want) {
			t.Fatalf("FusedAxpyCopy dst==y n=%d diverges from scalar", n)
		}

		// dst aliases x: dst = y + alpha*dst in place.
		x2 := make([]float32, n)
		y2 := make([]float32, n)
		fillPattern(x2, 12)
		fillPattern(y2, 13)
		ref2 := fmaRef64(alpha, x2, y2)
		want2 := cloneSlice(x2)
		fusedAxpyCopyScalar(alpha, want2, y2, want2)
		FusedAxpyCopy(alpha, x2, y2, x2)
		if SimdEnabled() {
			assertWithin1ULP(t, "FusedAxpyCopy(fma) dst==x", x2, ref2)
		} else if !bitsEqual(x2, want2) {
			t.Fatalf("FusedAxpyCopy dst==x n=%d diverges from scalar", n)
		}

		// alpha==1 contracts exactly, so the aliased forms the Residual
		// layers actually use stay bitwise-identical on every backend.
		x3 := make([]float32, n)
		y3 := make([]float32, n)
		fillPattern(x3, 10)
		fillPattern(y3, 11)
		want3 := cloneSlice(y3)
		fusedAxpyCopyScalar(1, x3, want3, want3)
		FusedAxpyCopy(1, x3, y3, y3)
		if !bitsEqual(y3, want3) {
			t.Fatalf("FusedAxpyCopy alpha=1 dst==y n=%d diverges from scalar", n)
		}
	}
}

// TestFusedCopyAddMatchesScalar pins the fused WRITE+ACCUMULATE body
// (src[i] = x[i]; dst[i] += x[i]) against its scalar reference and against
// the unfused copy-then-add sequence it replaces. The kernel is pure adds
// in the same element order, so every backend must be bitwise-identical —
// the transport's bitwise-convergence guarantee rests on this.
func TestFusedCopyAddMatchesScalar(t *testing.T) {
	for _, n := range fusedSizes {
		for _, off := range []int{0, 1, 7} {
			x := make([]float32, off+n)
			src := make([]float32, off+n)
			dst := make([]float32, off+n)
			fillPattern(x, 17)
			fillPattern(src, 18)
			fillPattern(dst, 19)
			wantSrc := cloneSlice(src)
			wantDst := cloneSlice(dst)
			fbSrc := cloneSlice(src)
			fbDst := cloneSlice(dst)
			// The unfused sequence this kernel replaces: copy, then add.
			twoSrc := cloneSlice(src)
			twoDst := cloneSlice(dst)

			FusedCopyAdd(unaligned(x, off, n), unaligned(src, off, n), unaligned(dst, off, n))
			fusedCopyAddScalar(unaligned(x, off, n), unaligned(wantSrc, off, n), unaligned(wantDst, off, n))
			fusedCopyAddUnrolled(unaligned(x, off, n), unaligned(fbSrc, off, n), unaligned(fbDst, off, n))
			copy(unaligned(twoSrc, off, n), unaligned(x, off, n))
			AxpySliceScalar(1, unaligned(twoSrc, off, n), unaligned(twoDst, off, n))

			if !bitsEqual(src, wantSrc) || !bitsEqual(dst, wantDst) {
				t.Fatalf("FusedCopyAdd n=%d off=%d diverges from scalar", n, off)
			}
			if !bitsEqual(fbSrc, wantSrc) || !bitsEqual(fbDst, wantDst) {
				t.Fatalf("fusedCopyAddUnrolled n=%d off=%d diverges from scalar", n, off)
			}
			if !bitsEqual(twoSrc, wantSrc) || !bitsEqual(twoDst, wantDst) {
				t.Fatalf("FusedCopyAdd n=%d off=%d diverges from copy-then-add", n, off)
			}
		}
	}
}

// TestFusedCopyAddSpecialValues runs the fused WRITE+ACCUMULATE body over
// NaN, ±Inf, subnormals and signed zeros.
func TestFusedCopyAddSpecialValues(t *testing.T) {
	specials := []float32{
		float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)),
		0, float32(math.Copysign(0, -1)), math.SmallestNonzeroFloat32,
		-math.SmallestNonzeroFloat32, math.MaxFloat32, -math.MaxFloat32, 1, -1,
	}
	n := 3*fusedLanes + 5
	x := make([]float32, n)
	dst := make([]float32, n)
	for i := range x {
		x[i] = specials[i%len(specials)]
		dst[i] = specials[(i+4)%len(specials)]
	}
	src := make([]float32, n)
	wantSrc := make([]float32, n)
	wantDst := cloneSlice(dst)
	FusedCopyAdd(x, src, dst)
	fusedCopyAddScalar(x, wantSrc, wantDst)
	if !bitsEqual(src, wantSrc) || !bitsEqual(dst, wantDst) {
		t.Fatal("FusedCopyAdd diverges from scalar on IEEE special values")
	}
}

func TestAxpySliceMatchesScalar(t *testing.T) {
	for _, n := range fusedSizes {
		for _, alpha := range fusedAlphas {
			for _, off := range []int{0, 3} {
				x := make([]float32, off+n)
				y := make([]float32, off+n)
				fillPattern(x, 14)
				fillPattern(y, 15)
				want := cloneSlice(y)

				AxpySlice(alpha, unaligned(x, off, n), unaligned(y, off, n))
				AxpySliceScalar(alpha, unaligned(x, off, n), unaligned(want, off, n))

				if !bitsEqual(y, want) {
					t.Fatalf("AxpySlice n=%d alpha=%v off=%d diverges from scalar", n, alpha, off)
				}
			}
		}
	}
}

// TestAxpySliceAliased pins y aliasing x exactly (y += alpha*y).
func TestAxpySliceAliased(t *testing.T) {
	for _, n := range fusedSizes {
		x := make([]float32, n)
		fillPattern(x, 16)
		want := cloneSlice(x)
		AxpySliceScalar(0.5, want, want)
		AxpySlice(0.5, x, x)
		if !bitsEqual(x, want) {
			t.Fatalf("AxpySlice y==x n=%d diverges from scalar", n)
		}
	}
}

// TestFusedKernelsSpecialValues runs the fused kernels over NaN, ±Inf,
// subnormals and signed zeros to confirm the unrolled bodies propagate IEEE
// special values exactly as the scalar loops do.
func TestFusedKernelsSpecialValues(t *testing.T) {
	specials := []float32{
		float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)),
		0, float32(math.Copysign(0, -1)), math.SmallestNonzeroFloat32,
		-math.SmallestNonzeroFloat32, math.MaxFloat32, -math.MaxFloat32, 1, -1,
	}
	n := 3 * fusedLanes
	local := make([]float32, n)
	global := make([]float32, n)
	for i := range local {
		local[i] = specials[i%len(specials)]
		global[i] = specials[(i+3)%len(specials)]
	}
	delta := make([]float32, n)
	wantLocal := cloneSlice(local)
	wantDelta := make([]float32, n)
	FusedElasticStep(0.9, delta, local, global)
	fusedElasticStepScalar(0.9, wantDelta, wantLocal, global)
	if !bitsEqual(delta, wantDelta) || !bitsEqual(local, wantLocal) {
		t.Fatal("FusedElasticStep diverges from scalar on IEEE special values")
	}
}

// FuzzFusedKernels drives every fused kernel through the dispatcher AND
// through the portable unrolled fallback against the scalar references
// with fuzz-chosen lengths, offsets and bit patterns. On an AVX2 host the
// dispatched path is the assembly, so one fuzz run cross-checks the
// dispatched and `noasm` implementations against the same reference; the
// FMA-contracted FusedAxpyCopy is instead held to the float64 reference.
func FuzzFusedKernels(f *testing.F) {
	f.Add(uint16(8), uint8(0), uint32(0x3f000000), int64(1))
	f.Add(uint16(17), uint8(3), uint32(0x3f800000), int64(42))
	f.Add(uint16(0), uint8(1), uint32(0xbf800000), int64(7))
	f.Add(uint16(255), uint8(5), uint32(0x7fc00000), int64(99)) // NaN alpha
	f.Fuzz(func(t *testing.T, rawN uint16, rawOff uint8, alphaBits uint32, seed int64) {
		n := int(rawN) % 300
		off := int(rawOff) % 8
		alpha := math.Float32frombits(alphaBits)

		local := make([]float32, off+n)
		global := make([]float32, off+n)
		delta := make([]float32, off+n)
		fillPattern(local, int(seed))
		fillPattern(global, int(seed)+1)
		wantLocal := cloneSlice(local)
		wantGlobal := cloneSlice(global)
		wantDelta := cloneSlice(delta)

		// Fallback copies: the portable unrolled kernels run on identical
		// inputs so the noasm path is fuzzed in the same breath.
		fbLocal := cloneSlice(local)
		fbGlobal := cloneSlice(global)
		fbDelta := cloneSlice(delta)

		FusedElasticStep(alpha, delta[off:], local[off:], global[off:])
		fusedElasticStepScalar(alpha, wantDelta[off:], wantLocal[off:], wantGlobal[off:])
		fusedElasticStepUnrolled(alpha, fbDelta[off:], fbLocal[off:], fbGlobal[off:])
		if !bitsEqual(delta, wantDelta) || !bitsEqual(local, wantLocal) {
			t.Fatalf("FusedElasticStep n=%d off=%d alpha=%x diverges", n, off, alphaBits)
		}
		if !bitsEqual(fbDelta, wantDelta) || !bitsEqual(fbLocal, wantLocal) {
			t.Fatalf("fusedElasticStepUnrolled n=%d off=%d alpha=%x diverges", n, off, alphaBits)
		}

		FusedElasticExchange(alpha, delta[off:], local[off:], global[off:])
		fusedElasticExchangeScalar(alpha, wantDelta[off:], wantLocal[off:], wantGlobal[off:])
		fusedElasticExchangeUnrolled(alpha, fbDelta[off:], fbLocal[off:], fbGlobal[off:])
		if !bitsEqual(delta, wantDelta) || !bitsEqual(local, wantLocal) || !bitsEqual(global, wantGlobal) {
			t.Fatalf("FusedElasticExchange n=%d off=%d alpha=%x diverges", n, off, alphaBits)
		}
		if !bitsEqual(fbDelta, wantDelta) || !bitsEqual(fbLocal, wantLocal) || !bitsEqual(fbGlobal, wantGlobal) {
			t.Fatalf("fusedElasticExchangeUnrolled n=%d off=%d alpha=%x diverges", n, off, alphaBits)
		}

		ref := fmaRef64(alpha, wantLocal[off:], wantGlobal[off:])
		FusedAxpyCopy(alpha, local[off:], global[off:], delta[off:])
		fusedAxpyCopyScalar(alpha, wantLocal[off:], wantGlobal[off:], wantDelta[off:])
		fusedAxpyCopyUnrolled(alpha, fbLocal[off:], fbGlobal[off:], fbDelta[off:])
		if !bitsEqual(fbDelta, wantDelta) {
			t.Fatalf("fusedAxpyCopyUnrolled n=%d off=%d alpha=%x diverges", n, off, alphaBits)
		}
		if SimdEnabled() {
			assertWithin1ULP(t, "FusedAxpyCopy(fma)", delta[off:], ref)
			// Resync: the contracted delta may sit 1 ULP off the scalar
			// one, and delta feeds the next kernel as an input.
			copy(delta, wantDelta)
		} else if !bitsEqual(delta, wantDelta) {
			t.Fatalf("FusedAxpyCopy n=%d off=%d alpha=%x diverges", n, off, alphaBits)
		}

		FusedCopyAdd(delta[off:], local[off:], global[off:])
		fusedCopyAddScalar(wantDelta[off:], wantLocal[off:], wantGlobal[off:])
		fusedCopyAddUnrolled(fbDelta[off:], fbLocal[off:], fbGlobal[off:])
		if !bitsEqual(local, wantLocal) || !bitsEqual(global, wantGlobal) {
			t.Fatalf("FusedCopyAdd n=%d off=%d diverges", n, off)
		}
		if !bitsEqual(fbLocal, wantLocal) || !bitsEqual(fbGlobal, wantGlobal) {
			t.Fatalf("fusedCopyAddUnrolled n=%d off=%d diverges", n, off)
		}

		copy(fbLocal, local)
		AxpySlice(alpha, delta[off:], local[off:])
		AxpySliceScalar(alpha, wantDelta[off:], wantLocal[off:])
		axpySliceUnrolled(alpha, wantDelta[off:], fbLocal[off:])
		if !bitsEqual(local, wantLocal) {
			t.Fatalf("AxpySlice n=%d off=%d alpha=%x diverges", n, off, alphaBits)
		}
		if !bitsEqual(fbLocal, wantLocal) {
			t.Fatalf("axpySliceUnrolled n=%d off=%d alpha=%x diverges", n, off, alphaBits)
		}
	})
}
