package tensor

import (
	"math"
	"testing"
)

// fusedSizes exercises the unrolled kernels around the lane-width
// boundaries: empty, sub-lane, exactly one block, block+tail, many blocks
// with odd tails, and a large size representative of real weight vectors.
var fusedSizes = []int{0, 1, 3, 7, 8, 9, 15, 16, 17, 31, 63, 64, 65, 100, 1000, 4097}

// fusedAlphas includes the common SEASGD moving rates plus awkward values
// (negative, subnormal-producing, exactly one).
var fusedAlphas = []float32{0, 1, -1, 0.5, 0.9, 0.001, -0.25, 1.5}

// cloneSlice copies a float32 slice.
func cloneSlice(s []float32) []float32 {
	c := make([]float32, len(s))
	copy(c, s)
	return c
}

// bitsEqual reports whether two slices are bit-for-bit identical (NaNs with
// equal payloads compare equal; +0 and -0 do not).
func bitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// unaligned returns a view of data starting at an offset that is not a
// multiple of the lane width, so the unrolled body runs over blocks whose
// base address is not 32-byte aligned.
func unaligned(data []float32, off, n int) []float32 {
	return data[off : off+n]
}

func TestFusedElasticStepMatchesScalar(t *testing.T) {
	for _, n := range fusedSizes {
		for _, alpha := range fusedAlphas {
			for _, off := range []int{0, 1, 3, 5} {
				local := make([]float32, off+n)
				global := make([]float32, off+n)
				delta := make([]float32, off+n)
				fillPattern(local, 1)
				fillPattern(global, 2)
				fillPattern(delta, 3)
				wantLocal := cloneSlice(local)
				wantDelta := cloneSlice(delta)

				FusedElasticStep(alpha, unaligned(delta, off, n), unaligned(local, off, n), unaligned(global, off, n))
				fusedElasticStepScalar(alpha, unaligned(wantDelta, off, n), unaligned(wantLocal, off, n), unaligned(global, off, n))

				if !bitsEqual(delta, wantDelta) || !bitsEqual(local, wantLocal) {
					t.Fatalf("FusedElasticStep n=%d alpha=%v off=%d diverges from scalar", n, alpha, off)
				}
			}
		}
	}
}

// TestFusedElasticStepMatchesTwoPass pins the fused sweep against the
// unfused algebra (Eq. 5 then Eq. 6 as separate passes) on disjoint
// operands — the exact sequence Worker.Run used to execute.
func TestFusedElasticStepMatchesTwoPass(t *testing.T) {
	for _, n := range fusedSizes {
		for _, alpha := range fusedAlphas {
			local := make([]float32, n)
			global := make([]float32, n)
			delta := make([]float32, n)
			fillPattern(local, 4)
			fillPattern(global, 5)
			wantLocal := cloneSlice(local)
			wantDelta := make([]float32, n)

			FusedElasticStep(alpha, delta, local, global)

			for i := 0; i < n; i++ { // Eq. 5
				wantDelta[i] = alpha * (wantLocal[i] - global[i])
			}
			for i := 0; i < n; i++ { // Eq. 6
				wantLocal[i] -= wantDelta[i]
			}
			if !bitsEqual(delta, wantDelta) || !bitsEqual(local, wantLocal) {
				t.Fatalf("FusedElasticStep n=%d alpha=%v diverges from two-pass reference", n, alpha)
			}
		}
	}
}

func TestFusedElasticExchangeMatchesScalar(t *testing.T) {
	for _, n := range fusedSizes {
		for _, alpha := range fusedAlphas {
			for _, off := range []int{0, 2} {
				local := make([]float32, off+n)
				global := make([]float32, off+n)
				delta := make([]float32, off+n)
				fillPattern(local, 6)
				fillPattern(global, 7)
				wantLocal := cloneSlice(local)
				wantGlobal := cloneSlice(global)
				wantDelta := cloneSlice(delta)

				FusedElasticExchange(alpha, unaligned(delta, off, n), unaligned(local, off, n), unaligned(global, off, n))
				fusedElasticExchangeScalar(alpha, unaligned(wantDelta, off, n), unaligned(wantLocal, off, n), unaligned(wantGlobal, off, n))

				if !bitsEqual(delta, wantDelta) || !bitsEqual(local, wantLocal) || !bitsEqual(global, wantGlobal) {
					t.Fatalf("FusedElasticExchange n=%d alpha=%v off=%d diverges from scalar", n, alpha, off)
				}
			}
		}
	}
}

func TestFusedAxpyCopyMatchesScalar(t *testing.T) {
	for _, n := range fusedSizes {
		for _, alpha := range fusedAlphas {
			for _, off := range []int{0, 1, 7} {
				x := make([]float32, off+n)
				y := make([]float32, off+n)
				dst := make([]float32, off+n)
				fillPattern(x, 8)
				fillPattern(y, 9)
				want := make([]float32, off+n)
				copy(want, dst)

				FusedAxpyCopy(alpha, unaligned(x, off, n), unaligned(y, off, n), unaligned(dst, off, n))
				fusedAxpyCopyScalar(alpha, unaligned(x, off, n), unaligned(y, off, n), unaligned(want, off, n))

				if !bitsEqual(dst, want) {
					t.Fatalf("FusedAxpyCopy n=%d alpha=%v off=%d diverges from scalar", n, alpha, off)
				}
			}
		}
	}
}

// TestFusedAxpyCopyAliased exercises dst aliasing each source exactly — the
// in-place forms the Residual layers use (y += alpha*x written as
// FusedAxpyCopy(alpha, x, y, y)).
func TestFusedAxpyCopyAliased(t *testing.T) {
	for _, n := range fusedSizes {
		alpha := float32(0.75)

		// dst aliases y: dst = y + alpha*x in place.
		x := make([]float32, n)
		y := make([]float32, n)
		fillPattern(x, 10)
		fillPattern(y, 11)
		want := cloneSlice(y)
		fusedAxpyCopyScalar(alpha, x, want, want)
		FusedAxpyCopy(alpha, x, y, y)
		if !bitsEqual(y, want) {
			t.Fatalf("FusedAxpyCopy dst==y n=%d diverges from scalar", n)
		}

		// dst aliases x: dst = y + alpha*dst in place.
		x2 := make([]float32, n)
		y2 := make([]float32, n)
		fillPattern(x2, 12)
		fillPattern(y2, 13)
		want2 := cloneSlice(x2)
		fusedAxpyCopyScalar(alpha, want2, y2, want2)
		FusedAxpyCopy(alpha, x2, y2, x2)
		if !bitsEqual(x2, want2) {
			t.Fatalf("FusedAxpyCopy dst==x n=%d diverges from scalar", n)
		}
	}
}

func TestAxpySliceMatchesScalar(t *testing.T) {
	for _, n := range fusedSizes {
		for _, alpha := range fusedAlphas {
			for _, off := range []int{0, 3} {
				x := make([]float32, off+n)
				y := make([]float32, off+n)
				fillPattern(x, 14)
				fillPattern(y, 15)
				want := cloneSlice(y)

				AxpySlice(alpha, unaligned(x, off, n), unaligned(y, off, n))
				AxpySliceScalar(alpha, unaligned(x, off, n), unaligned(want, off, n))

				if !bitsEqual(y, want) {
					t.Fatalf("AxpySlice n=%d alpha=%v off=%d diverges from scalar", n, alpha, off)
				}
			}
		}
	}
}

// TestAxpySliceAliased pins y aliasing x exactly (y += alpha*y).
func TestAxpySliceAliased(t *testing.T) {
	for _, n := range fusedSizes {
		x := make([]float32, n)
		fillPattern(x, 16)
		want := cloneSlice(x)
		AxpySliceScalar(0.5, want, want)
		AxpySlice(0.5, x, x)
		if !bitsEqual(x, want) {
			t.Fatalf("AxpySlice y==x n=%d diverges from scalar", n)
		}
	}
}

// TestFusedKernelsSpecialValues runs the fused kernels over NaN, ±Inf,
// subnormals and signed zeros to confirm the unrolled bodies propagate IEEE
// special values exactly as the scalar loops do.
func TestFusedKernelsSpecialValues(t *testing.T) {
	specials := []float32{
		float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)),
		0, float32(math.Copysign(0, -1)), math.SmallestNonzeroFloat32,
		-math.SmallestNonzeroFloat32, math.MaxFloat32, -math.MaxFloat32, 1, -1,
	}
	n := 3 * fusedLanes
	local := make([]float32, n)
	global := make([]float32, n)
	for i := range local {
		local[i] = specials[i%len(specials)]
		global[i] = specials[(i+3)%len(specials)]
	}
	delta := make([]float32, n)
	wantLocal := cloneSlice(local)
	wantDelta := make([]float32, n)
	FusedElasticStep(0.9, delta, local, global)
	fusedElasticStepScalar(0.9, wantDelta, wantLocal, global)
	if !bitsEqual(delta, wantDelta) || !bitsEqual(local, wantLocal) {
		t.Fatal("FusedElasticStep diverges from scalar on IEEE special values")
	}
}

// FuzzFusedKernels drives every fused/unrolled kernel against its scalar
// reference with fuzz-chosen lengths, offsets and bit patterns.
func FuzzFusedKernels(f *testing.F) {
	f.Add(uint16(8), uint8(0), uint32(0x3f000000), int64(1))
	f.Add(uint16(17), uint8(3), uint32(0x3f800000), int64(42))
	f.Add(uint16(0), uint8(1), uint32(0xbf800000), int64(7))
	f.Add(uint16(255), uint8(5), uint32(0x7fc00000), int64(99)) // NaN alpha
	f.Fuzz(func(t *testing.T, rawN uint16, rawOff uint8, alphaBits uint32, seed int64) {
		n := int(rawN) % 300
		off := int(rawOff) % 8
		alpha := math.Float32frombits(alphaBits)

		local := make([]float32, off+n)
		global := make([]float32, off+n)
		delta := make([]float32, off+n)
		fillPattern(local, int(seed))
		fillPattern(global, int(seed)+1)
		wantLocal := cloneSlice(local)
		wantGlobal := cloneSlice(global)
		wantDelta := cloneSlice(delta)

		FusedElasticStep(alpha, delta[off:], local[off:], global[off:])
		fusedElasticStepScalar(alpha, wantDelta[off:], wantLocal[off:], wantGlobal[off:])
		if !bitsEqual(delta, wantDelta) || !bitsEqual(local, wantLocal) {
			t.Fatalf("FusedElasticStep n=%d off=%d alpha=%x diverges", n, off, alphaBits)
		}

		FusedElasticExchange(alpha, delta[off:], local[off:], global[off:])
		fusedElasticExchangeScalar(alpha, wantDelta[off:], wantLocal[off:], wantGlobal[off:])
		if !bitsEqual(delta, wantDelta) || !bitsEqual(local, wantLocal) || !bitsEqual(global, wantGlobal) {
			t.Fatalf("FusedElasticExchange n=%d off=%d alpha=%x diverges", n, off, alphaBits)
		}

		FusedAxpyCopy(alpha, local[off:], global[off:], delta[off:])
		fusedAxpyCopyScalar(alpha, wantLocal[off:], wantGlobal[off:], wantDelta[off:])
		if !bitsEqual(delta, wantDelta) {
			t.Fatalf("FusedAxpyCopy n=%d off=%d alpha=%x diverges", n, off, alphaBits)
		}

		AxpySlice(alpha, delta[off:], local[off:])
		AxpySliceScalar(alpha, wantDelta[off:], wantLocal[off:])
		if !bitsEqual(local, wantLocal) {
			t.Fatalf("AxpySlice n=%d off=%d alpha=%x diverges", n, off, alphaBits)
		}
	})
}
