package tensor

import "fmt"

// MatMul computes dst = a × b for 2-D tensors: a is (m×k), b is (k×n),
// dst is (m×n). dst must be preallocated; it is overwritten.
func MatMul(a, b, dst *Tensor) error {
	if a.Dims() != 2 || b.Dims() != 2 || dst.Dims() != 2 {
		return fmt.Errorf("tensor: matmul requires 2-D operands: %w", ErrShapeMismatch)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("tensor: matmul (%dx%d)x(%dx%d)->(%dx%d): %w",
			m, k, k2, n, dst.shape[0], dst.shape[1], ErrShapeMismatch)
	}
	gemm(m, n, k, a.data, b.data, dst.data)
	return nil
}

// gemm computes C = A×B with A (m×k), B (k×n), C (m×n), all row-major.
// The k-outer loop with a row-broadcast inner loop keeps accesses
// sequential, which matters for the larger functional models.
func gemm(m, n, k int, a, b, c []float32) {
	for i := range c {
		c[i] = 0
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for l := 0; l < k; l++ {
			av := arow[l]
			if av == 0 {
				continue
			}
			brow := b[l*n : (l+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MatMulTransA computes dst = aᵀ × b for a (k×m), b (k×n), dst (m×n).
func MatMulTransA(a, b, dst *Tensor) error {
	if a.Dims() != 2 || b.Dims() != 2 || dst.Dims() != 2 {
		return fmt.Errorf("tensor: matmulTransA requires 2-D operands: %w", ErrShapeMismatch)
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("tensor: matmulTransA: %w", ErrShapeMismatch)
	}
	c := dst.data
	for i := range c {
		c[i] = 0
	}
	for l := 0; l < k; l++ {
		arow := a.data[l*m : (l+1)*m]
		brow := b.data[l*n : (l+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := c[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return nil
}

// MatMulTransB computes dst = a × bᵀ for a (m×k), b (n×k), dst (m×n).
func MatMulTransB(a, b, dst *Tensor) error {
	if a.Dims() != 2 || b.Dims() != 2 || dst.Dims() != 2 {
		return fmt.Errorf("tensor: matmulTransB requires 2-D operands: %w", ErrShapeMismatch)
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("tensor: matmulTransB: %w", ErrShapeMismatch)
	}
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		crow := dst.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			var s float32
			for l, av := range arow {
				s += av * brow[l]
			}
			crow[j] = s
		}
	}
	return nil
}
