package tensor

import (
	"fmt"

	"shmcaffe/internal/parallel"
)

// The GEMM family below has two implementations each: a scalar reference
// kernel (the seed's original loops, kept verbatim as the ground truth the
// equivalence tests compare against) and a cache-blocked parallel kernel
// that partitions output rows across the worker pool. Dispatch picks the
// parallel path only when the problem carries enough flops to amortise it.
//
// Determinism: the parallel kernels split C by rows; every C element is
// produced entirely inside one range, and the k loop always runs 0..k-1 in
// order within a row, so the floating-point accumulation order per element
// is identical to the scalar kernel regardless of pool width or schedule.

const (
	// gemmParallelFlops is the m·n·k threshold below which the scalar
	// kernel wins. Re-measured after the zero-alloc Ranger dispatch: even
	// with allocation-free fan-out, partition + join overhead and the loss
	// of the single-panel cache residency only pay for themselves from
	// ~128³ (1<<21) flops upward on 2-4 lanes; 1<<20 keeps a safety margin
	// for wider pools while never selecting parallel where the scalar
	// kernel wins (the 64³ BENCH_kernels.json row that regressed under the
	// old 1<<18 threshold now stays scalar).
	gemmParallelFlops = 1 << 20
	// gemmBlockK/gemmBlockJ are the cache-block edge lengths: a K-panel of
	// B (gemmBlockK rows × gemmBlockJ columns ≈ 256 KiB at float32) stays
	// resident while a range of C rows streams over it.
	gemmBlockK = 256
	gemmBlockJ = 256
	// gemmRowGrain is the minimum C-row count per parallel range.
	gemmRowGrain = 8
	// gemmSimdPackFlops is the m·n·k threshold for the transposed-A path
	// when the SIMD microkernel is live: the blocked kernel then beats the
	// scalar reference from ~16³ up at every pool width (measured on
	// avx2+fma at widths 1 and 4), but below that the per-range pack of
	// the aᵀ strip costs more than the microkernel recovers.
	gemmSimdPackFlops = 1 << 12
)

// packFree recycles the scratch panels the transposed-A path packs into
// (a Freelist so panels survive GC; see parallel.Freelist).
var packFree = parallel.NewFreelist[[]float32](8)

func getPack(n int) ([]float32, *[]float32) {
	p := packFree.Get()
	if cap(*p) < n {
		*p = make([]float32, n)
	}
	return (*p)[:n], p
}

func putPack(p *[]float32) { packFree.Put(p) }

// MatMul computes dst = a × b for 2-D tensors: a is (m×k), b is (k×n),
// dst is (m×n). dst must be preallocated; it is overwritten.
func MatMul(a, b, dst *Tensor) error {
	if a.Dims() != 2 || b.Dims() != 2 || dst.Dims() != 2 {
		return fmt.Errorf("tensor: matmul requires 2-D operands: %w", ErrShapeMismatch)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("tensor: matmul (%dx%d)x(%dx%d)->(%dx%d): %w",
			m, k, k2, n, dst.shape[0], dst.shape[1], ErrShapeMismatch)
	}
	gemm(m, n, k, a.data, b.data, dst.data)
	return nil
}

// useParallelGemm reports whether the blocked parallel kernel should run
// for a plain gemm. With the SIMD microkernel live the blocked kernel
// wins at every measured size and pool width — 2.6–7.5x from 8³ to 128³
// at widths 1 and 4 — so it is unconditional; tiny problems stay a single
// inline range anyway (gemmRowGrain caps the partition). On the portable
// backend the old rule holds: enough flops to amortise dispatch, and a
// pool that actually has more than one lane (on a single-core machine the
// portable blocked kernel can only lose to the scalar reference).
func useParallelGemm(flops int) bool {
	if gemmInner4 != nil {
		return true
	}
	return flops >= gemmParallelFlops && parallel.DefaultWidth() > 1
}

// useParallelTransA is useParallelGemm for the aᵀ×b path, which pays an
// extra per-range pack of the A strip: with SIMD the crossover sits near
// 16³ flops instead of zero.
func useParallelTransA(flops int) bool {
	if gemmInner4 != nil {
		return flops >= gemmSimdPackFlops
	}
	return flops >= gemmParallelFlops && parallel.DefaultWidth() > 1
}

// useParallelTransB is useParallelGemm for the a×bᵀ path. Its range
// kernel is the sequential-dot scalar loop (the horizontal reduction
// cannot be vectorised without changing the accumulation order), so the
// SIMD backend changes nothing here and the portable rule always applies.
func useParallelTransB(flops int) bool {
	return flops >= gemmParallelFlops && parallel.DefaultWidth() > 1
}

// gemm computes C = A×B with A (m×k), B (k×n), C (m×n), all row-major,
// choosing between the scalar reference and the blocked parallel kernel.
func gemm(m, n, k int, a, b, c []float32) {
	if !useParallelGemm(m * n * k) {
		gemmScalar(m, n, k, a, b, c)
		return
	}
	gemmParallel(m, n, k, a, b, c)
}

// gemmParallel always takes the blocked parallel path (exported to the
// equivalence tests through the package boundary of a _test file). The
// operands travel in a pooled Ranger struct so the dispatch allocates
// nothing (see rangers.go).
func gemmParallel(m, n, k int, a, b, c []float32) {
	g := gemmRangerFree.Get()
	*g = gemmRanger{a: a, b: b, c: c, k: k, n: n}
	parallel.ForRanger(m, gemmRowGrain, g)
	*g = gemmRanger{}
	gemmRangerFree.Put(g)
}

// gemmScalar is the seed's original kernel: k-outer with a row-broadcast
// inner loop, which keeps accesses sequential. It is the reference the
// blocked kernels must match.
func gemmScalar(m, n, k int, a, b, c []float32) {
	for i := range c {
		c[i] = 0
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for l := 0; l < k; l++ {
			av := arow[l]
			if av == 0 {
				continue
			}
			brow := b[l*n : (l+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// gemmRows computes rows of C for a row-major A panel (rows×k), full B
// (k×n) and C panel (rows×n), cache-blocked over k and j. For every (i, j)
// the k index still increases monotonically across blocks, so the
// accumulation order matches gemmScalar exactly.
func gemmRows(aRows, b, cRows []float32, rows, k, n int) {
	for i := range cRows {
		cRows[i] = 0
	}
	for kb := 0; kb < k; kb += gemmBlockK {
		kend := kb + gemmBlockK
		if kend > k {
			kend = k
		}
		for jb := 0; jb < n; jb += gemmBlockJ {
			jend := jb + gemmBlockJ
			if jend > n {
				jend = n
			}
			for i := 0; i < rows; i++ {
				arow := aRows[i*k+kb : i*k+kend]
				crow := cRows[i*n+jb : i*n+jend]
				l := 0
				if gemmInner4 != nil {
					// SIMD quad path: four k-steps per call. The microkernel
					// accumulates the four products per element in l-order
					// with separate mul+add roundings, so the result stays
					// bitwise-equal to the scalar kernel for finite B. A
					// zero A lane contributes ±0 instead of being skipped,
					// which is also bitwise-neutral on finite data (c is
					// never -0 mid-accumulation); all-zero quads are
					// skipped outright for the sparse case.
					for ; l+4 <= len(arow); l += 4 {
						if arow[l] == 0 && arow[l+1] == 0 && arow[l+2] == 0 && arow[l+3] == 0 {
							continue
						}
						gemmInner4(&arow[l], &b[(kb+l)*n+jb], n, &crow[0], len(crow))
					}
				}
				for ; l < len(arow); l++ {
					av := arow[l]
					if av == 0 {
						continue
					}
					// Full-slice-expression plus clamp let the compiler
					// prove j < len(crow) and drop the bounds check in the
					// hot loop (~2× on amd64; the lengths are always equal,
					// so the clamp never trims).
					brow := b[(kb+l)*n+jb : (kb+l)*n+jend : (kb+l)*n+jend]
					if len(brow) > len(crow) {
						brow = brow[:len(crow)]
					}
					for j, bv := range brow {
						crow[j] += av * bv
					}
				}
			}
		}
	}
}

// Raw-slice gemm entry points. Gemm dispatches exactly like MatMul;
// GemmScalar and GemmParallel pin one implementation each so that
// cmd/benchtables can measure the scalar-vs-parallel speedup without
// reaching through the Tensor API.

// Gemm computes C = A×B on flat row-major slices: a (m×k), b (k×n),
// c (m×n). Slices must have exactly those lengths.
func Gemm(m, n, k int, a, b, c []float32) { gemm(m, n, k, a, b, c) }

// GemmScalar always runs the scalar reference kernel.
func GemmScalar(m, n, k int, a, b, c []float32) { gemmScalar(m, n, k, a, b, c) }

// GemmParallel always runs the cache-blocked parallel kernel.
func GemmParallel(m, n, k int, a, b, c []float32) { gemmParallel(m, n, k, a, b, c) }

// MatMulTransA computes dst = aᵀ × b for a (k×m), b (k×n), dst (m×n).
func MatMulTransA(a, b, dst *Tensor) error {
	if a.Dims() != 2 || b.Dims() != 2 || dst.Dims() != 2 {
		return fmt.Errorf("tensor: matmulTransA requires 2-D operands: %w", ErrShapeMismatch)
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("tensor: matmulTransA: %w", ErrShapeMismatch)
	}
	if !useParallelTransA(m * n * k) {
		gemmTransAScalar(m, n, k, a.data, b.data, dst.data)
		return nil
	}
	gemmTransAParallel(m, n, k, a.data, b.data, dst.data)
	return nil
}

// gemmTransAParallel partitions C rows; each range packs its strip of aᵀ
// (rows lo..hi of the logical m×k matrix, read column-wise from a) into a
// contiguous pooled panel so the row kernel streams it like plain gemm.
func gemmTransAParallel(m, n, k int, a, b, c []float32) {
	g := transARangerFree.Get()
	*g = transARanger{a: a, b: b, c: c, m: m, k: k, n: n}
	parallel.ForRanger(m, gemmRowGrain, g)
	*g = transARanger{}
	transARangerFree.Put(g)
}

// gemmTransAScalar is the seed's original aᵀ×b kernel (reference).
func gemmTransAScalar(m, n, k int, a, b, c []float32) {
	for i := range c {
		c[i] = 0
	}
	for l := 0; l < k; l++ {
		arow := a[l*m : (l+1)*m]
		brow := b[l*n : (l+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := c[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MatMulTransB computes dst = a × bᵀ for a (m×k), b (n×k), dst (m×n).
func MatMulTransB(a, b, dst *Tensor) error {
	if a.Dims() != 2 || b.Dims() != 2 || dst.Dims() != 2 {
		return fmt.Errorf("tensor: matmulTransB requires 2-D operands: %w", ErrShapeMismatch)
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("tensor: matmulTransB: %w", ErrShapeMismatch)
	}
	if !useParallelTransB(m * n * k) {
		gemmTransBScalar(m, n, k, a.data, b.data, dst.data)
		return nil
	}
	gemmTransBParallel(m, n, k, a.data, b.data, dst.data)
	return nil
}

// gemmTransBParallel partitions C rows; both operands already stream
// row-contiguously, so the scalar kernel doubles as the range kernel.
func gemmTransBParallel(m, n, k int, a, b, c []float32) {
	g := transBRangerFree.Get()
	*g = transBRanger{a: a, b: b, c: c, k: k, n: n}
	parallel.ForRanger(m, gemmRowGrain, g)
	*g = transBRanger{}
	transBRangerFree.Put(g)
}

// gemmTransBScalar is the seed's original a×bᵀ kernel (reference). Both
// operands stream row-contiguously, so it doubles as the per-range kernel
// of the parallel path: each dot product c[i][j] is computed in one l-scan,
// identical in FP order at any partition.
func gemmTransBScalar(m, n, k int, a, b, c []float32) {
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			var s float32
			for l, av := range arow {
				s += av * brow[l]
			}
			crow[j] = s
		}
	}
}
