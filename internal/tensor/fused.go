package tensor

// Fused SEASGD sweeps. The worker-side elastic update (Eqs. 5–6) and the
// residual-merge pattern in the nets are pure streaming float math; running
// them as separate passes costs one full traversal of the parameter vector
// per equation. The kernels here fuse the passes and unroll the body eight
// lanes wide, following the pure-Go lane idiom from go-highway: the head of
// each block is reinterpreted as a *[fusedLanes]float32, so the compiler
// proves every lane access in range and drops the per-element bounds checks,
// while the element-by-element order inside the block stays identical to the
// scalar reference. That ordering guarantee is what makes the kernels
// bitwise-equal to the scalar loops, including when dst aliases one of the
// sources (see fused_test.go).
//
// All kernels tolerate mismatched lengths by iterating over the shortest
// operand; callers that want length errors validate first (core.FusedWeightStep).

// fusedLanes is the manual unroll width. Eight float32 lanes are one
// 32-byte block — half a cache line — which is wide enough to hide the
// loop overhead and narrow enough that the tail loop stays cheap.
const fusedLanes = 8

// lanes8 is the block view the unrolled bodies operate on.
type lanes8 = [fusedLanes]float32

// minLen3 returns the shortest of three slice lengths.
func minLen3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// FusedElasticStep performs the worker half of the elastic exchange in one
// sweep (Eqs. 5 and 6 fused):
//
//	delta[i] = alpha * (local[i] - global[i])
//	local[i] -= delta[i]
//
// delta must not alias local or global; local and global must not alias
// each other. Each element is fully computed and stored before the next, so
// the result is bitwise-identical to running WeightIncrement followed by
// ApplyIncrementLocal on disjoint operands — on both the portable and the
// SIMD backend (the AVX2 kernel evaluates the identical expression tree
// per element; see internal/tensor/simd).
//shm:hotpath
func FusedElasticStep(alpha float32, delta, local, global []float32) {
	fusedElasticStepImpl(alpha, delta, local, global)
}

// fusedElasticStepUnrolled is the portable FusedElasticStep kernel and
// the dispatch default.
func fusedElasticStepUnrolled(alpha float32, delta, local, global []float32) {
	n := minLen3(len(delta), len(local), len(global))
	i := 0
	for ; i+fusedLanes <= n; i += fusedLanes {
		d := (*lanes8)(delta[i:])
		l := (*lanes8)(local[i:])
		g := (*lanes8)(global[i:])
		// Per element: update l while its value is still in a register,
		// then store d. Storing d first would force the compiler to
		// reload l (it cannot prove delta does not alias local), adding a
		// load and a store-forward stall per element.
		d0 := alpha * (l[0] - g[0])
		l[0] -= d0
		d[0] = d0
		d1 := alpha * (l[1] - g[1])
		l[1] -= d1
		d[1] = d1
		d2 := alpha * (l[2] - g[2])
		l[2] -= d2
		d[2] = d2
		d3 := alpha * (l[3] - g[3])
		l[3] -= d3
		d[3] = d3
		d4 := alpha * (l[4] - g[4])
		l[4] -= d4
		d[4] = d4
		d5 := alpha * (l[5] - g[5])
		l[5] -= d5
		d[5] = d5
		d6 := alpha * (l[6] - g[6])
		l[6] -= d6
		d[6] = d6
		d7 := alpha * (l[7] - g[7])
		l[7] -= d7
		d[7] = d7
	}
	for ; i < n; i++ {
		dv := alpha * (local[i] - global[i])
		local[i] -= dv
		delta[i] = dv
	}
}

// fusedElasticStepScalar is the scalar reference for FusedElasticStep; the
// equivalence tests and benchmarks pin the unrolled body against it. The
// per-element store order (local, then delta) matches the unrolled body so
// the two agree bit for bit even on aliased operands.
func fusedElasticStepScalar(alpha float32, delta, local, global []float32) {
	n := minLen3(len(delta), len(local), len(global))
	for i := 0; i < n; i++ {
		dv := alpha * (local[i] - global[i])
		local[i] -= dv
		delta[i] = dv
	}
}

// FusedElasticExchange performs the complete Eq. 5–7 exchange against
// in-memory buffers in one sweep:
//
//	delta = alpha * (local - global);  local -= delta;  global += delta
//
// delta, local and global must be pairwise non-aliasing. This is the fused
// form of core.ElasticExchange, used by the in-process parameter server
// where the global vector lives in the same address space.
//shm:hotpath
func FusedElasticExchange(alpha float32, delta, local, global []float32) {
	fusedElasticExchangeImpl(alpha, delta, local, global)
}

// fusedElasticExchangeUnrolled is the portable FusedElasticExchange
// kernel and the dispatch default.
func fusedElasticExchangeUnrolled(alpha float32, delta, local, global []float32) {
	n := minLen3(len(delta), len(local), len(global))
	i := 0
	for ; i+fusedLanes <= n; i += fusedLanes {
		d := (*lanes8)(delta[i:])
		l := (*lanes8)(local[i:])
		g := (*lanes8)(global[i:])
		// Same store order as FusedElasticStep: both l and g are updated
		// from register-resident values before the d store, which the
		// compiler would otherwise have to assume clobbers them.
		d0 := alpha * (l[0] - g[0])
		l[0] -= d0
		g[0] += d0
		d[0] = d0
		d1 := alpha * (l[1] - g[1])
		l[1] -= d1
		g[1] += d1
		d[1] = d1
		d2 := alpha * (l[2] - g[2])
		l[2] -= d2
		g[2] += d2
		d[2] = d2
		d3 := alpha * (l[3] - g[3])
		l[3] -= d3
		g[3] += d3
		d[3] = d3
		d4 := alpha * (l[4] - g[4])
		l[4] -= d4
		g[4] += d4
		d[4] = d4
		d5 := alpha * (l[5] - g[5])
		l[5] -= d5
		g[5] += d5
		d[5] = d5
		d6 := alpha * (l[6] - g[6])
		l[6] -= d6
		g[6] += d6
		d[6] = d6
		d7 := alpha * (l[7] - g[7])
		l[7] -= d7
		g[7] += d7
		d[7] = d7
	}
	for ; i < n; i++ {
		dv := alpha * (local[i] - global[i])
		local[i] -= dv
		global[i] += dv
		delta[i] = dv
	}
}

// fusedElasticExchangeScalar is the scalar reference for FusedElasticExchange,
// with the same per-element store order as the unrolled body.
func fusedElasticExchangeScalar(alpha float32, delta, local, global []float32) {
	n := minLen3(len(delta), len(local), len(global))
	for i := 0; i < n; i++ {
		dv := alpha * (local[i] - global[i])
		local[i] -= dv
		global[i] += dv
		delta[i] = dv
	}
}

// FusedAxpyCopy computes dst[i] = y[i] + alpha*x[i] in one sweep, fusing the
// clone-then-axpy pattern (dst := y.Clone(); Axpy(alpha, x, dst)) into a
// single traversal with no intermediate copy. dst may alias y or x exactly
// (same backing array and offset): each element is read and written before
// the next. Partially overlapping views are not supported.
//
// Numerical policy: this is the one dispatched kernel that is NOT
// bitwise-identical across backends. The AVX2 backend contracts the
// multiply-add into a single FMA rounding, so results are correctly
// rounded (within 1 ULP of the exact y + alpha*x, and at most 1 ULP from
// the portable two-rounding body). With alpha == ±1 or either operand
// zero the contraction is exact and the backends agree bit for bit —
// which covers every current production call site (compose/dense use
// alpha=1). Runs needing cross-backend bitwise reproducibility at other
// alphas set SHMCAFFE_NOSIMD. See DESIGN.md §14.
//shm:hotpath
func FusedAxpyCopy(alpha float32, x, y, dst []float32) {
	fusedAxpyCopyImpl(alpha, x, y, dst)
}

// fusedAxpyCopyUnrolled is the portable FusedAxpyCopy kernel and the
// dispatch default: two roundings per element (mul, then add), which is
// the reference the bitwise tests pin when the SIMD backend is off.
func fusedAxpyCopyUnrolled(alpha float32, x, y, dst []float32) {
	n := minLen3(len(x), len(y), len(dst))
	i := 0
	for ; i+fusedLanes <= n; i += fusedLanes {
		xv := (*lanes8)(x[i:])
		yv := (*lanes8)(y[i:])
		dv := (*lanes8)(dst[i:])
		dv[0] = yv[0] + alpha*xv[0]
		dv[1] = yv[1] + alpha*xv[1]
		dv[2] = yv[2] + alpha*xv[2]
		dv[3] = yv[3] + alpha*xv[3]
		dv[4] = yv[4] + alpha*xv[4]
		dv[5] = yv[5] + alpha*xv[5]
		dv[6] = yv[6] + alpha*xv[6]
		dv[7] = yv[7] + alpha*xv[7]
	}
	for ; i < n; i++ {
		dst[i] = y[i] + alpha*x[i]
	}
}

// fusedAxpyCopyScalar is the scalar reference for FusedAxpyCopy.
func fusedAxpyCopyScalar(alpha float32, x, y, dst []float32) {
	n := minLen3(len(x), len(y), len(dst))
	for i := 0; i < n; i++ {
		dst[i] = y[i] + alpha*x[i]
	}
}

// FusedCopyAdd performs the fused WRITE+ACCUMULATE data plane in one sweep
// over the pushed values:
//
//	v := x[i]; src[i] = v; dst[i] += v
//
// The increment lands in the src segment (the WRITE half) and folds into
// dst (the ACCUMULATE half) without the separate copy pass re-reading src.
// Pure adds, no contraction, element order identical to copy-then-add — so
// the SIMD and portable backends are bitwise-identical and the fusion is
// invisible to readers. src and dst must not alias x or each other.
//shm:hotpath
func FusedCopyAdd(x, src, dst []float32) {
	fusedCopyAddImpl(x, src, dst)
}

// fusedCopyAddUnrolled is the portable FusedCopyAdd kernel and the
// dispatch default.
func fusedCopyAddUnrolled(x, src, dst []float32) {
	n := minLen3(len(x), len(src), len(dst))
	i := 0
	for ; i+fusedLanes <= n; i += fusedLanes {
		xv := (*lanes8)(x[i:])
		sv := (*lanes8)(src[i:])
		dv := (*lanes8)(dst[i:])
		sv[0] = xv[0]
		dv[0] = dv[0] + xv[0]
		sv[1] = xv[1]
		dv[1] = dv[1] + xv[1]
		sv[2] = xv[2]
		dv[2] = dv[2] + xv[2]
		sv[3] = xv[3]
		dv[3] = dv[3] + xv[3]
		sv[4] = xv[4]
		dv[4] = dv[4] + xv[4]
		sv[5] = xv[5]
		dv[5] = dv[5] + xv[5]
		sv[6] = xv[6]
		dv[6] = dv[6] + xv[6]
		sv[7] = xv[7]
		dv[7] = dv[7] + xv[7]
	}
	for ; i < n; i++ {
		v := x[i]
		src[i] = v
		dst[i] = dst[i] + v
	}
}

// fusedCopyAddScalar is the scalar reference for FusedCopyAdd.
func fusedCopyAddScalar(x, src, dst []float32) {
	n := minLen3(len(x), len(src), len(dst))
	for i := 0; i < n; i++ {
		v := x[i]
		src[i] = v
		dst[i] = dst[i] + v
	}
}
