package tensor

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	tests := []struct {
		name  string
		shape []int
		want  int
	}{
		{"vector", []int{5}, 5},
		{"matrix", []int{3, 4}, 12},
		{"rank4", []int{2, 3, 4, 5}, 120},
		{"scalar-like", nil, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			x := New(tt.shape...)
			if x.Len() != tt.want {
				t.Fatalf("Len() = %d, want %d", x.Len(), tt.want)
			}
			if got := x.Dims(); got != len(tt.shape) {
				t.Fatalf("Dims() = %d, want %d", got, len(tt.shape))
			}
		})
	}
}

func TestNewPanicsOnNonPositiveDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero dimension")
		}
	}()
	New(3, 0)
}

func TestFromSlice(t *testing.T) {
	x, err := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := x.At(1, 2); got != 6 {
		t.Fatalf("At(1,2) = %v, want 6", got)
	}
	if _, err := FromSlice([]float32{1, 2}, 3); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("want ErrShapeMismatch, got %v", err)
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(7.5, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	// Row-major offset: ((1*3)+2)*4+3 = 23.
	if x.Data()[23] != 7.5 {
		t.Fatalf("flat offset wrong: %v", x.Data())
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := MustFromSlice([]float32{1, 2, 3}, 3)
	y := x.Clone()
	y.Data()[0] = 99
	if x.Data()[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	x := MustFromSlice([]float32{1, 2, 3, 4}, 2, 2)
	y, err := x.Reshape(4)
	if err != nil {
		t.Fatal(err)
	}
	y.Data()[0] = 42
	if x.At(0, 0) != 42 {
		t.Fatal("Reshape must be a view")
	}
	if _, err := x.Reshape(3); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("want ErrShapeMismatch, got %v", err)
	}
}

func TestCopyFrom(t *testing.T) {
	x := New(4)
	src := MustFromSlice([]float32{1, 2, 3, 4}, 4)
	if err := x.CopyFrom(src); err != nil {
		t.Fatal(err)
	}
	if x.At(3) != 4 {
		t.Fatal("CopyFrom did not copy")
	}
	if err := x.CopyFrom(New(5)); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("want ErrShapeMismatch, got %v", err)
	}
}

func TestAxpy(t *testing.T) {
	x := MustFromSlice([]float32{1, 2, 3}, 3)
	y := MustFromSlice([]float32{10, 20, 30}, 3)
	if err := Axpy(2, x, y); err != nil {
		t.Fatal(err)
	}
	want := []float32{12, 24, 36}
	for i, w := range want {
		if y.Data()[i] != w {
			t.Fatalf("y[%d] = %v, want %v", i, y.Data()[i], w)
		}
	}
}

func TestElementwiseOps(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3}, 3)
	b := MustFromSlice([]float32{4, 5, 6}, 3)
	dst := New(3)

	if err := Add(a, b, dst); err != nil {
		t.Fatal(err)
	}
	if dst.Data()[2] != 9 {
		t.Fatalf("Add wrong: %v", dst.Data())
	}
	if err := Sub(b, a, dst); err != nil {
		t.Fatal(err)
	}
	if dst.Data()[0] != 3 {
		t.Fatalf("Sub wrong: %v", dst.Data())
	}
	if err := Mul(a, b, dst); err != nil {
		t.Fatal(err)
	}
	if dst.Data()[1] != 10 {
		t.Fatalf("Mul wrong: %v", dst.Data())
	}
	d, err := Dot(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 32 {
		t.Fatalf("Dot = %v, want 32", d)
	}
}

func TestScaleSumNormClip(t *testing.T) {
	x := MustFromSlice([]float32{3, -4}, 2)
	if got := L2Norm(x); math.Abs(got-5) > 1e-9 {
		t.Fatalf("L2Norm = %v, want 5", got)
	}
	Scale(2, x)
	if Sum(x) != -2 {
		t.Fatalf("Sum after scale = %v, want -2", Sum(x))
	}
	ClipInPlace(x, 5)
	if x.Data()[0] != 5 || x.Data()[1] != -5 {
		t.Fatalf("Clip wrong: %v", x.Data())
	}
}

func TestMaxIndex(t *testing.T) {
	x := MustFromSlice([]float32{0.1, 0.9, 0.5, 0.9}, 4)
	if got := MaxIndex(x); got != 1 {
		t.Fatalf("MaxIndex = %d, want 1 (first max)", got)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := MustFromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	dst := New(2, 2)
	if err := MatMul(a, b, dst); err != nil {
		t.Fatal(err)
	}
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if dst.Data()[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, dst.Data()[i], w)
		}
	}
}

func TestMatMulShapeErrors(t *testing.T) {
	a := New(2, 3)
	b := New(4, 2)
	if err := MatMul(a, b, New(2, 2)); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("want ErrShapeMismatch, got %v", err)
	}
	if err := MatMul(New(3), b, New(2, 2)); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("want ErrShapeMismatch for 1-D operand, got %v", err)
	}
}

// TestMatMulTransposesAgainstExplicit verifies the transposed GEMM variants
// by comparing against explicitly transposed inputs to plain MatMul.
func TestMatMulTransposesAgainstExplicit(t *testing.T) {
	rng := NewRNG(1)
	const m, k, n = 4, 5, 3
	a := New(m, k)
	b := New(k, n)
	rng.FillNormal(a, 0, 1)
	rng.FillNormal(b, 0, 1)

	want := New(m, n)
	if err := MatMul(a, b, want); err != nil {
		t.Fatal(err)
	}

	at := transpose(t, a)
	got := New(m, n)
	if err := MatMulTransA(at, b, got); err != nil {
		t.Fatal(err)
	}
	assertClose(t, want, got, "MatMulTransA")

	bt := transpose(t, b)
	got2 := New(m, n)
	if err := MatMulTransB(a, bt, got2); err != nil {
		t.Fatal(err)
	}
	assertClose(t, want, got2, "MatMulTransB")
}

func transpose(t *testing.T, x *Tensor) *Tensor {
	t.Helper()
	r, c := x.Dim(0), x.Dim(1)
	out := New(c, r)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			out.Set(x.At(i, j), j, i)
		}
	}
	return out
}

func assertClose(t *testing.T, want, got *Tensor, label string) {
	t.Helper()
	for i := range want.Data() {
		if math.Abs(float64(want.Data()[i]-got.Data()[i])) > 1e-4 {
			t.Fatalf("%s element %d = %v, want %v", label, i, got.Data()[i], want.Data()[i])
		}
	}
}

// Property: Axpy with alpha then -alpha restores the original vector
// (exact in float32 when values are representable; we allow tolerance).
func TestAxpyInverseProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		n := 1 + rng.Intn(64)
		x := New(n)
		y := New(n)
		rng.FillUniform(x, -1, 1)
		rng.FillUniform(y, -1, 1)
		orig := y.Clone()
		alpha := float32(rng.Float64())
		AxpySlice(alpha, x.Data(), y.Data())
		AxpySlice(-alpha, x.Data(), y.Data())
		for i := range y.Data() {
			if math.Abs(float64(y.Data()[i]-orig.Data()[i])) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot is symmetric and L2Norm² == Dot(x, x).
func TestDotNormProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		n := 1 + rng.Intn(32)
		x := New(n)
		y := New(n)
		rng.FillUniform(x, -2, 2)
		rng.FillUniform(y, -2, 2)
		d1, _ := Dot(x, y)
		d2, _ := Dot(y, x)
		if d1 != d2 {
			return false
		}
		xx, _ := Dot(x, x)
		nrm := L2Norm(x)
		return math.Abs(nrm*nrm-float64(xx)) < 1e-3*(1+nrm*nrm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
