package tensor

import (
	"runtime"
	"testing"
)

// Allocation regression guard for the gemm dispatch paths (scripts/check.sh
// tier 2 runs these by name). The dispatch state — ranger structs, transA
// pack panels, and the pool's join WaitGroups — recycles through
// parallel.Freelist, so a warmed steady state performs zero heap
// allocations per call EVEN ACROSS GC CYCLES. The forced collections
// inside the measured loop are the regression this guards against: the
// earlier sync.Pool-based dispatch stayed "zero-alloc" only between GCs,
// and the benchmark harness's per-run collections surfaced that as a
// stray 8 B/op on gemm/parallel/256 in BENCH_kernels.json.

// gemmAllocSize is big enough that every layer of the dispatch runs
// (multiple grain-8 row ranges, pack panels on the transA path) while
// keeping the guard fast.
const gemmAllocSize = 96

func assertZeroAllocAcrossGC(t *testing.T, tag string, fn func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	for i := 0; i < 8; i++ { // warm the freelists
		fn()
	}
	allocs := testing.AllocsPerRun(10, func() {
		// Two collections fully drain a sync.Pool (primary then victim
		// cache), so any pooled state that does not survive GC shows up
		// as an allocation on the very next call.
		runtime.GC()
		runtime.GC()
		fn()
	})
	if allocs != 0 {
		t.Fatalf("%s allocates %.2f objects/op across GC, want 0", tag, allocs)
	}
}

func TestGemmParallelZeroAllocAcrossGC(t *testing.T) {
	s := gemmAllocSize
	a := make([]float32, s*s)
	b := make([]float32, s*s)
	c := make([]float32, s*s)
	fillPattern(a, 1)
	fillPattern(b, 2)
	assertZeroAllocAcrossGC(t, "gemmParallel", func() { gemmParallel(s, s, s, a, b, c) })
}

func TestGemmTransAParallelZeroAllocAcrossGC(t *testing.T) {
	s := gemmAllocSize
	a := make([]float32, s*s)
	b := make([]float32, s*s)
	c := make([]float32, s*s)
	fillPattern(a, 3)
	fillPattern(b, 4)
	assertZeroAllocAcrossGC(t, "gemmTransAParallel", func() { gemmTransAParallel(s, s, s, a, b, c) })
}

func TestGemmTransBParallelZeroAllocAcrossGC(t *testing.T) {
	s := gemmAllocSize
	a := make([]float32, s*s)
	b := make([]float32, s*s)
	c := make([]float32, s*s)
	fillPattern(a, 5)
	fillPattern(b, 6)
	assertZeroAllocAcrossGC(t, "gemmTransBParallel", func() { gemmTransBParallel(s, s, s, a, b, c) })
}

// TestDispatchedKernelsZeroAlloc pins the streaming kernels behind the
// function-pointer dispatch: an indirect call through a package var must
// not make the slice arguments escape.
func TestDispatchedKernelsZeroAlloc(t *testing.T) {
	n := 4096
	x := make([]float32, n)
	y := make([]float32, n)
	d := make([]float32, n)
	fillPattern(x, 7)
	fillPattern(y, 8)
	assertZeroAllocAcrossGC(t, "AxpySlice", func() { AxpySlice(0.5, x, y) })
	assertZeroAllocAcrossGC(t, "AxpySlice(alpha=1)", func() { AxpySlice(1, x, y) })
	assertZeroAllocAcrossGC(t, "FusedElasticStep", func() { FusedElasticStep(0.3, d, x, y) })
	assertZeroAllocAcrossGC(t, "FusedElasticExchange", func() { FusedElasticExchange(0.3, d, x, y) })
	assertZeroAllocAcrossGC(t, "FusedAxpyCopy", func() { FusedAxpyCopy(0.3, x, y, d) })
}
