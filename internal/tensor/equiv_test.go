package tensor

import (
	"math"
	"testing"

	"shmcaffe/internal/parallel"
)

// Equivalence suite: the blocked/parallel kernels must match the scalar
// reference kernels within 4 ULPs on every shape — odd sizes, single
// elements, and sizes that do not divide evenly by the partition grain or
// the cache-block edges. (In fact the row partition preserves the exact
// per-element accumulation order, so the expected distance is 0; the 4-ULP
// budget is the contract we promise even if the blocking changes.)

// ulpDistance32 returns the distance between a and b in units of the last
// place of a (the SNIPPETS.md exemplar's comparison, specialised to our
// finite-only kernels).
func ulpDistance32(a, b float32) float64 {
	if a == b {
		return 0
	}
	if math.IsNaN(float64(a)) && math.IsNaN(float64(b)) {
		return 0
	}
	if math.IsInf(float64(a), 0) || math.IsInf(float64(b), 0) {
		if a == b {
			return 0
		}
		return math.Inf(1)
	}
	diff := math.Abs(float64(a) - float64(b))
	ulp := math.Abs(float64(math.Nextafter32(a, float32(math.Inf(1))) - a))
	if ulp == 0 {
		ulp = 1e-45 // smallest positive subnormal float32
	}
	return diff / ulp
}

const ulpBudget = 4

// fillPattern deterministically fills a slice with a mix of magnitudes,
// signs, and exact zeros (the scalar kernels skip zeros, so zero handling
// must agree too).
func fillPattern(dst []float32, seed int) {
	for i := range dst {
		switch (i + seed) % 7 {
		case 0:
			dst[i] = 0
		case 1:
			dst[i] = float32(i%13) * 0.25
		case 2:
			dst[i] = -float32(i%11) * 1.5
		case 3:
			dst[i] = float32(seed+i%29) * 1e-3
		case 4:
			dst[i] = -1e4 / float32(1+i%17)
		case 5:
			dst[i] = float32(i%5) - 2.5
		default:
			dst[i] = 1 / float32(1+i%23)
		}
	}
}

func assertULP(t *testing.T, tag string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", tag, len(got), len(want))
	}
	for i := range got {
		if d := ulpDistance32(got[i], want[i]); d > ulpBudget {
			t.Fatalf("%s: element %d: got %v, want %v (%.1f ULPs)", tag, i, got[i], want[i], d)
		}
	}
}

// gemmShapes covers empty-ish, 1-element, odd, and non-grain-aligned sizes
// (gemmRowGrain is 8, the cache blocks are 256: 257/511/13 all straddle).
var gemmShapes = []struct{ m, n, k int }{
	{1, 1, 1},
	{1, 7, 3},
	{3, 1, 5},
	{13, 17, 19},
	{8, 8, 8},
	{9, 33, 257},
	{31, 257, 13},
	{64, 64, 64},
	{70, 129, 300},
}

func TestGemmParallelMatchesScalar(t *testing.T) {
	for _, s := range gemmShapes {
		a := make([]float32, s.m*s.k)
		b := make([]float32, s.k*s.n)
		ref := make([]float32, s.m*s.n)
		got := make([]float32, s.m*s.n)
		fillPattern(a, 1)
		fillPattern(b, 2)
		gemmScalar(s.m, s.n, s.k, a, b, ref)
		gemmParallel(s.m, s.n, s.k, a, b, got)
		assertULP(t, "gemm", got, ref)
	}
}

func TestGemmTransAParallelMatchesScalar(t *testing.T) {
	for _, s := range gemmShapes {
		a := make([]float32, s.k*s.m) // k×m, transposed layout
		b := make([]float32, s.k*s.n)
		ref := make([]float32, s.m*s.n)
		got := make([]float32, s.m*s.n)
		fillPattern(a, 3)
		fillPattern(b, 4)
		gemmTransAScalar(s.m, s.n, s.k, a, b, ref)
		gemmTransAParallel(s.m, s.n, s.k, a, b, got)
		assertULP(t, "gemmTransA", got, ref)
	}
}

func TestGemmTransBParallelMatchesScalar(t *testing.T) {
	for _, s := range gemmShapes {
		a := make([]float32, s.m*s.k)
		b := make([]float32, s.n*s.k) // n×k, transposed layout
		ref := make([]float32, s.m*s.n)
		got := make([]float32, s.m*s.n)
		fillPattern(a, 5)
		fillPattern(b, 6)
		gemmTransBScalar(s.m, s.n, s.k, a, b, ref)
		gemmTransBParallel(s.m, s.n, s.k, a, b, got)
		assertULP(t, "gemmTransB", got, ref)
	}
}

// TestMatMulDispatchConsistency drives the public API across the
// scalar/parallel dispatch threshold and checks against the reference.
func TestMatMulDispatchConsistency(t *testing.T) {
	for _, s := range []struct{ m, n, k int }{{5, 6, 7}, {65, 130, 67}} {
		a := New(s.m, s.k)
		b := New(s.k, s.n)
		dst := New(s.m, s.n)
		fillPattern(a.Data(), 7)
		fillPattern(b.Data(), 8)
		ref := make([]float32, s.m*s.n)
		gemmScalar(s.m, s.n, s.k, a.Data(), b.Data(), ref)
		if err := MatMul(a, b, dst); err != nil {
			t.Fatal(err)
		}
		assertULP(t, "MatMul", dst.Data(), ref)
	}
}

// convShapes includes 1×1 images, odd kernels, stride/pad combinations and
// channel counts around the partition edges.
var convShapes = []struct {
	c, h, w int
	p       ConvParams
}{
	{1, 1, 1, ConvParams{KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1}},
	{1, 5, 7, ConvParams{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}},
	{3, 9, 9, ConvParams{KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}},
	{5, 13, 11, ConvParams{KernelH: 5, KernelW: 3, StrideH: 2, StrideW: 1, PadH: 2, PadW: 1}},
	{17, 8, 8, ConvParams{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}},
}

func TestIm2ColParallelMatchesScalar(t *testing.T) {
	for _, s := range convShapes {
		oh, ow := s.p.OutSize(s.h, s.w)
		img := make([]float32, s.c*s.h*s.w)
		fillPattern(img, 9)
		ref := make([]float32, s.c*s.p.KernelH*s.p.KernelW*oh*ow)
		got := make([]float32, len(ref))
		im2ColChannels(img, 0, s.c, s.h, s.w, oh, ow, s.p, ref)
		// Force the partitioned path regardless of the size threshold.
		parallel.For(s.c, 1, func(lo, hi int) {
			im2ColChannels(img, lo, hi, s.h, s.w, oh, ow, s.p, got)
		})
		assertULP(t, "im2col", got, ref)
	}
}

func TestCol2ImParallelMatchesScalar(t *testing.T) {
	for _, s := range convShapes {
		oh, ow := s.p.OutSize(s.h, s.w)
		col := make([]float32, s.c*s.p.KernelH*s.p.KernelW*oh*ow)
		fillPattern(col, 10)
		ref := make([]float32, s.c*s.h*s.w)
		got := make([]float32, len(ref))
		col2ImChannels(col, 0, s.c, s.h, s.w, oh, ow, s.p, ref)
		parallel.For(s.c, 1, func(lo, hi int) {
			col2ImChannels(col, lo, hi, s.h, s.w, oh, ow, s.p, got)
		})
		assertULP(t, "col2im", got, ref)
	}
}

// TestFloat32View checks the zero-copy alias against the decode reference
// and that writes through the view land in the backing bytes.
func TestFloat32View(t *testing.T) {
	vals := make([]float32, 33)
	fillPattern(vals, 11)
	buf := Float32Bytes(vals)
	view, ok := Float32View(buf)
	if !ok {
		t.Skip("platform without aligned little-endian fast path")
	}
	assertULP(t, "view", view, vals)
	view[7] = 42
	back, err := Float32FromBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	if back[7] != 42 {
		t.Fatalf("write through view did not reach backing bytes: %v", back[7])
	}
	if _, ok := Float32View(buf[:6]); ok {
		t.Fatal("view of non-multiple-of-4 length must fail")
	}
	if v, ok := Float32View(nil); !ok || len(v) != 0 {
		t.Fatalf("empty view = %v, %v", v, ok)
	}
	if _, ok := Float32View(buf[1:5]); ok && nativeLittleEndian {
		t.Fatal("misaligned view must fail")
	}
}
