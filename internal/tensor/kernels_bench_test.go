package tensor

import (
	"fmt"
	"testing"
)

// Kernel benchmarks: the gemm sizes the acceptance gate tracks (the hot
// shapes of the zoo models are in this range), plus the conv lowering.
// cmd/benchtables -kernels runs the same bodies through testing.Benchmark
// to emit BENCH_kernels.json.

func benchGemm(b *testing.B, m, n, k int, kernel func(m, n, k int, a, bb, c []float32)) {
	a := make([]float32, m*k)
	bb := make([]float32, k*n)
	c := make([]float32, m*n)
	fillPattern(a, 1)
	fillPattern(bb, 2)
	b.SetBytes(int64(2 * m * n * k * 4)) // 2 flops per element-pair, float32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernel(m, n, k, a, bb, c)
	}
}

func BenchmarkGemm(b *testing.B) {
	for _, size := range []int{64, 128, 256, 384} {
		b.Run(fmt.Sprintf("scalar/%d", size), func(b *testing.B) {
			benchGemm(b, size, size, size, gemmScalar)
		})
		b.Run(fmt.Sprintf("parallel/%d", size), func(b *testing.B) {
			benchGemm(b, size, size, size, gemmParallel)
		})
	}
}

func BenchmarkGemmTransA(b *testing.B) {
	b.Run("scalar/256", func(b *testing.B) { benchGemm(b, 256, 256, 256, gemmTransAScalar) })
	b.Run("parallel/256", func(b *testing.B) { benchGemm(b, 256, 256, 256, gemmTransAParallel) })
}

func BenchmarkGemmTransB(b *testing.B) {
	b.Run("scalar/256", func(b *testing.B) { benchGemm(b, 256, 256, 256, gemmTransBScalar) })
	b.Run("parallel/256", func(b *testing.B) { benchGemm(b, 256, 256, 256, gemmTransBParallel) })
}

func BenchmarkIm2Col(b *testing.B) {
	const c, h, w = 64, 32, 32
	p := ConvParams{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	oh, ow := p.OutSize(h, w)
	img := make([]float32, c*h*w)
	col := make([]float32, c*p.KernelH*p.KernelW*oh*ow)
	fillPattern(img, 3)
	b.SetBytes(int64(len(col) * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2Col(img, c, h, w, p, col)
	}
}

func BenchmarkCol2Im(b *testing.B) {
	const c, h, w = 64, 32, 32
	p := ConvParams{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	oh, ow := p.OutSize(h, w)
	img := make([]float32, c*h*w)
	col := make([]float32, c*p.KernelH*p.KernelW*oh*ow)
	fillPattern(col, 4)
	b.SetBytes(int64(len(col) * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Col2Im(col, c, h, w, p, img)
	}
}
