package tensor

import (
	"fmt"

	"shmcaffe/internal/parallel"
)

// ConvParams describes a 2-D convolution or pooling geometry.
type ConvParams struct {
	KernelH, KernelW int
	StrideH, StrideW int
	PadH, PadW       int
}

// OutSize returns the output spatial size for an input of h×w.
func (p ConvParams) OutSize(h, w int) (oh, ow int) {
	oh = (h+2*p.PadH-p.KernelH)/p.StrideH + 1
	ow = (w+2*p.PadW-p.KernelW)/p.StrideW + 1
	return oh, ow
}

// Validate checks that the geometry is usable for an h×w input.
func (p ConvParams) Validate(h, w int) error {
	if p.KernelH <= 0 || p.KernelW <= 0 || p.StrideH <= 0 || p.StrideW <= 0 {
		return fmt.Errorf("tensor: invalid conv params %+v", p)
	}
	if p.PadH < 0 || p.PadW < 0 {
		return fmt.Errorf("tensor: negative padding %+v", p)
	}
	oh, ow := p.OutSize(h, w)
	if oh <= 0 || ow <= 0 {
		return fmt.Errorf("tensor: conv output %dx%d non-positive for input %dx%d params %+v", oh, ow, h, w, p)
	}
	return nil
}

// convParallelWork is the per-channel element count above which the
// im2col/col2im lowering fans out across the pool.
const convParallelWork = 1 << 15

// Im2Col expands one image (c×h×w, flat) into columns for GEMM-based
// convolution. col must have (c·kh·kw)×(oh·ow) elements and is overwritten.
// This mirrors the canonical Caffe lowering. Channels are independent (each
// owns a contiguous kh·kw·oh·ow block of col), so large lowerings run
// channel ranges in parallel; the result is position-for-position identical
// to the scalar walk.
func Im2Col(img []float32, c, h, w int, p ConvParams, col []float32) {
	oh, ow := p.OutSize(h, w)
	perChannel := p.KernelH * p.KernelW * oh * ow
	if c > 1 && perChannel*c >= convParallelWork {
		r := im2colRangerFree.Get()
		*r = im2colRanger{img: img, col: col, h: h, w: w, oh: oh, ow: ow, p: p}
		parallel.ForRanger(c, 1, r)
		*r = im2colRanger{}
		im2colRangerFree.Put(r)
		return
	}
	im2ColChannels(img, 0, c, h, w, oh, ow, p, col)
}

// im2ColChannels is the scalar reference kernel over channels [lo, hi).
func im2ColChannels(img []float32, lo, hi, h, w, oh, ow int, p ConvParams, col []float32) {
	colIdx := lo * p.KernelH * p.KernelW * oh * ow
	for ch := lo; ch < hi; ch++ {
		base := ch * h * w
		for kh := 0; kh < p.KernelH; kh++ {
			for kw := 0; kw < p.KernelW; kw++ {
				for y := 0; y < oh; y++ {
					iy := y*p.StrideH - p.PadH + kh
					for x := 0; x < ow; x++ {
						ix := x*p.StrideW - p.PadW + kw
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							col[colIdx] = img[base+iy*w+ix]
						} else {
							col[colIdx] = 0
						}
						colIdx++
					}
				}
			}
		}
	}
}

// Col2Im scatters columns back into an image gradient (accumulating), the
// adjoint of Im2Col. img must have c·h·w elements and should be zeroed by
// the caller if accumulation from a clean slate is desired. Each channel
// scatters only into its own h·w block of img, so channel ranges are
// data-disjoint and the parallel path accumulates in the same per-element
// order as the scalar walk.
func Col2Im(col []float32, c, h, w int, p ConvParams, img []float32) {
	oh, ow := p.OutSize(h, w)
	perChannel := p.KernelH * p.KernelW * oh * ow
	if c > 1 && perChannel*c >= convParallelWork {
		r := col2imRangerFree.Get()
		*r = col2imRanger{col: col, img: img, h: h, w: w, oh: oh, ow: ow, p: p}
		parallel.ForRanger(c, 1, r)
		*r = col2imRanger{}
		col2imRangerFree.Put(r)
		return
	}
	col2ImChannels(col, 0, c, h, w, oh, ow, p, img)
}

// col2ImChannels is the scalar reference kernel over channels [lo, hi).
func col2ImChannels(col []float32, lo, hi, h, w, oh, ow int, p ConvParams, img []float32) {
	colIdx := lo * p.KernelH * p.KernelW * oh * ow
	for ch := lo; ch < hi; ch++ {
		base := ch * h * w
		for kh := 0; kh < p.KernelH; kh++ {
			for kw := 0; kw < p.KernelW; kw++ {
				for y := 0; y < oh; y++ {
					iy := y*p.StrideH - p.PadH + kh
					for x := 0; x < ow; x++ {
						ix := x*p.StrideW - p.PadW + kw
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							img[base+iy*w+ix] += col[colIdx]
						}
						colIdx++
					}
				}
			}
		}
	}
}
