package tensor

import "shmcaffe/internal/parallel"

// Recycled parallel.Ranger adapters for the row/channel-partitioned kernels.
//
// A closure that captures its operands allocates at every call site (the
// capture block escapes through the pool's task channel — BENCH_kernels.json
// measured 96 B/op on the gemm dispatch). Packaging the operands in a
// recycled struct whose pointer implements Range keeps the dispatch at zero
// allocations: interface conversion from a pointer stores the pointer
// directly, and the struct is returned to a parallel.Freelist after the
// join (a Freelist, not a sync.Pool, so the zero-alloc contract holds
// across GC cycles). Each adapter zeroes its slice fields before Put so
// recycled entries never pin caller arrays.

// gemmRanger partitions C rows of a plain gemm across the pool.
type gemmRanger struct {
	a, b, c []float32
	k, n    int
}

func (g *gemmRanger) Range(lo, hi int) {
	gemmRows(g.a[lo*g.k:hi*g.k], g.b, g.c[lo*g.n:hi*g.n], hi-lo, g.k, g.n)
}

var gemmRangerFree = parallel.NewFreelist[gemmRanger](8)

// transARanger partitions C rows of the aᵀ×b kernel; each range packs its
// strip of aᵀ into a pooled panel (see gemmTransAParallel).
type transARanger struct {
	a, b, c []float32
	m, k, n int
}

func (g *transARanger) Range(lo, hi int) {
	rows := hi - lo
	pack, ph := getPack(rows * g.k)
	for l := 0; l < g.k; l++ {
		src := g.a[l*g.m+lo : l*g.m+hi]
		for i, v := range src {
			pack[i*g.k+l] = v
		}
	}
	gemmRows(pack, g.b, g.c[lo*g.n:hi*g.n], rows, g.k, g.n)
	putPack(ph)
}

var transARangerFree = parallel.NewFreelist[transARanger](8)

// transBRanger partitions C rows of the a×bᵀ kernel.
type transBRanger struct {
	a, b, c []float32
	k, n    int
}

func (g *transBRanger) Range(lo, hi int) {
	gemmTransBScalar(hi-lo, g.n, g.k, g.a[lo*g.k:hi*g.k], g.b, g.c[lo*g.n:hi*g.n])
}

var transBRangerFree = parallel.NewFreelist[transBRanger](8)

// im2colRanger partitions channels of the im2col lowering.
type im2colRanger struct {
	img, col     []float32
	h, w, oh, ow int
	p            ConvParams
}

func (r *im2colRanger) Range(lo, hi int) {
	im2ColChannels(r.img, lo, hi, r.h, r.w, r.oh, r.ow, r.p, r.col)
}

var im2colRangerFree = parallel.NewFreelist[im2colRanger](8)

// col2imRanger partitions channels of the col2im scatter.
type col2imRanger struct {
	col, img     []float32
	h, w, oh, ow int
	p            ConvParams
}

func (r *col2imRanger) Range(lo, hi int) {
	col2ImChannels(r.col, lo, hi, r.h, r.w, r.oh, r.ow, r.p, r.img)
}

var col2imRangerFree = parallel.NewFreelist[col2imRanger](8)
