package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConvParamsOutSize(t *testing.T) {
	tests := []struct {
		name   string
		p      ConvParams
		h, w   int
		oh, ow int
	}{
		{"same-3x3", ConvParams{3, 3, 1, 1, 1, 1}, 8, 8, 8, 8},
		{"valid-3x3", ConvParams{3, 3, 1, 1, 0, 0}, 8, 8, 6, 6},
		{"stride2", ConvParams{2, 2, 2, 2, 0, 0}, 8, 8, 4, 4},
		{"rect", ConvParams{3, 5, 1, 2, 1, 2}, 10, 10, 10, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			oh, ow := tt.p.OutSize(tt.h, tt.w)
			if oh != tt.oh || ow != tt.ow {
				t.Fatalf("OutSize = %dx%d, want %dx%d", oh, ow, tt.oh, tt.ow)
			}
			if err := tt.p.Validate(tt.h, tt.w); err != nil {
				t.Fatalf("Validate: %v", err)
			}
		})
	}
}

func TestConvParamsValidateErrors(t *testing.T) {
	if err := (ConvParams{0, 3, 1, 1, 0, 0}).Validate(8, 8); err == nil {
		t.Fatal("expected error for zero kernel")
	}
	if err := (ConvParams{3, 3, 1, 1, -1, 0}).Validate(8, 8); err == nil {
		t.Fatal("expected error for negative pad")
	}
	if err := (ConvParams{9, 9, 1, 1, 0, 0}).Validate(4, 4); err == nil {
		t.Fatal("expected error for non-positive output")
	}
}

// TestIm2ColIdentityKernel checks that a 1x1 kernel with stride 1 reproduces
// the image.
func TestIm2ColIdentityKernel(t *testing.T) {
	img := []float32{1, 2, 3, 4}
	p := ConvParams{KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1}
	col := make([]float32, 4)
	Im2Col(img, 1, 2, 2, p, col)
	for i := range img {
		if col[i] != img[i] {
			t.Fatalf("col[%d] = %v, want %v", i, col[i], img[i])
		}
	}
}

// TestIm2ColKnown verifies a hand-computed 2x2/stride-1 expansion of a 3x3
// image.
func TestIm2ColKnown(t *testing.T) {
	img := []float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}
	p := ConvParams{KernelH: 2, KernelW: 2, StrideH: 1, StrideW: 1}
	// Output is 2x2, kernel has 4 positions, so col is 4 rows x 4 cols.
	col := make([]float32, 16)
	Im2Col(img, 1, 3, 3, p, col)
	want := []float32{
		1, 2, 4, 5, // kernel offset (0,0)
		2, 3, 5, 6, // (0,1)
		4, 5, 7, 8, // (1,0)
		5, 6, 8, 9, // (1,1)
	}
	for i, w := range want {
		if col[i] != w {
			t.Fatalf("col[%d] = %v, want %v (%v)", i, col[i], w, col)
		}
	}
}

// TestCol2ImAdjoint checks the defining adjoint property of the pair:
// <Im2Col(x), y> == <x, Col2Im(y)> for all x, y. This is the invariant the
// conv backward pass relies on.
func TestCol2ImAdjoint(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		c := 1 + rng.Intn(3)
		h := 3 + rng.Intn(5)
		w := 3 + rng.Intn(5)
		p := ConvParams{
			KernelH: 1 + rng.Intn(3), KernelW: 1 + rng.Intn(3),
			StrideH: 1 + rng.Intn(2), StrideW: 1 + rng.Intn(2),
			PadH: rng.Intn(2), PadW: rng.Intn(2),
		}
		if p.Validate(h, w) != nil {
			return true // skip impossible geometry
		}
		oh, ow := p.OutSize(h, w)
		colLen := c * p.KernelH * p.KernelW * oh * ow

		x := New(c * h * w)
		rng.FillUniform(x, -1, 1)
		y := New(colLen)
		rng.FillUniform(y, -1, 1)

		colX := make([]float32, colLen)
		Im2Col(x.Data(), c, h, w, p, colX)
		var lhs float64
		for i := range colX {
			lhs += float64(colX[i]) * float64(y.Data()[i])
		}

		imgY := make([]float32, c*h*w)
		Col2Im(y.Data(), c, h, w, p, imgY)
		var rhs float64
		for i := range imgY {
			rhs += float64(imgY[i]) * float64(x.Data()[i])
		}
		return math.Abs(lhs-rhs) < 1e-3*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	vals := []float32{0, 1.5, -2.25, 3.14159, -0.0001}
	buf := Float32Bytes(vals)
	if len(buf) != 20 {
		t.Fatalf("encoded length = %d, want 20", len(buf))
	}
	out, err := Float32FromBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if out[i] != vals[i] {
			t.Fatalf("round trip [%d] = %v, want %v", i, out[i], vals[i])
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Float32FromBytes(make([]byte, 3)); err == nil {
		t.Fatal("expected error for non-multiple-of-4 input")
	}
	if err := DecodeFloat32(make([]byte, 8), make([]float32, 1)); err == nil {
		t.Fatal("expected error for short destination")
	}
	if _, err := EncodeFloat32(make([]float32, 4), make([]byte, 8)); err == nil {
		t.Fatal("expected error for short encode buffer")
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		n := rng.Intn(128)
		vals := make([]float32, n)
		for i := range vals {
			vals[i] = float32(rng.NormFloat64())
		}
		out, err := Float32FromBytes(Float32Bytes(vals))
		if err != nil {
			return false
		}
		for i := range vals {
			if out[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminismAndSplit(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed streams diverged")
		}
	}
	s1 := NewRNG(42).Split(1)
	s2 := NewRNG(42).Split(2)
	same := 0
	for i := 0; i < 64; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams overlap too much: %d/64 equal", same)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	rng := NewRNG(7)
	p := rng.Perm(50)
	seen := make(map[int]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestXavierInitBounds(t *testing.T) {
	rng := NewRNG(3)
	x := New(1000)
	rng.XavierInit(x, 100)
	bound := float32(math.Sqrt(3.0 / 100.0))
	for _, v := range x.Data() {
		if v < -bound || v >= bound {
			t.Fatalf("xavier value %v outside [-%v, %v)", v, bound, bound)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	rng := NewRNG(11)
	const n = 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}
