package tensor

import (
	"fmt"
	"math"
)

// Axpy computes y += alpha*x over the raw element vectors. This is the core
// kernel of every weight update in the solvers (Eqs. 2, 5, 6, 7 of the
// paper operate on flat weight vectors).
func Axpy(alpha float32, x, y *Tensor) error {
	if len(x.data) != len(y.data) {
		return fmt.Errorf("tensor: axpy %d vs %d elements: %w", len(x.data), len(y.data), ErrShapeMismatch)
	}
	AxpySlice(alpha, x.data, y.data)
	return nil
}

// AxpySlice computes y += alpha*x elementwise over raw slices.
// It is exported because the SMB accumulate path operates on byte-decoded
// float32 slices, not tensors. It dispatches through the kernel pointers
// in dispatch.go; element order matches AxpySliceScalar exactly, so y may
// alias x (same backing array and offset) with identical results. The
// alpha==1 case — the SMB accumulate loop — routes to the plain add
// kernel, which is bitwise-identical (1*x == x exactly, including NaN
// quieting) and skips the broadcast multiply.
//shm:hotpath
func AxpySlice(alpha float32, x, y []float32) {
	if alpha == 1 {
		addImpl(x, y)
		return
	}
	axpyImpl(alpha, x, y)
}

// axpySliceUnrolled is the portable AxpySlice kernel, unrolled fusedLanes
// wide (see fused.go) and the dispatch default.
func axpySliceUnrolled(alpha float32, x, y []float32) {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	i := 0
	for ; i+fusedLanes <= n; i += fusedLanes {
		xv := (*lanes8)(x[i:])
		yv := (*lanes8)(y[i:])
		yv[0] += alpha * xv[0]
		yv[1] += alpha * xv[1]
		yv[2] += alpha * xv[2]
		yv[3] += alpha * xv[3]
		yv[4] += alpha * xv[4]
		yv[5] += alpha * xv[5]
		yv[6] += alpha * xv[6]
		yv[7] += alpha * xv[7]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// addSliceUnrolled is the portable alpha==1 kernel: y += x, same unroll
// and ordering as axpySliceUnrolled with the multiply folded away.
func addSliceUnrolled(x, y []float32) {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	i := 0
	for ; i+fusedLanes <= n; i += fusedLanes {
		xv := (*lanes8)(x[i:])
		yv := (*lanes8)(y[i:])
		yv[0] += xv[0]
		yv[1] += xv[1]
		yv[2] += xv[2]
		yv[3] += xv[3]
		yv[4] += xv[4]
		yv[5] += xv[5]
		yv[6] += xv[6]
		yv[7] += xv[7]
	}
	for ; i < n; i++ {
		y[i] += x[i]
	}
}

// AxpySliceScalar is the straight-line scalar reference for AxpySlice. The
// equivalence tests and kernel benchmarks pin the unrolled body against it.
func AxpySliceScalar(alpha float32, x, y []float32) {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	for i := 0; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies every element of t by alpha.
func Scale(alpha float32, t *Tensor) {
	for i := range t.data {
		t.data[i] *= alpha
	}
}

// Add computes dst = a + b elementwise.
func Add(a, b, dst *Tensor) error {
	if len(a.data) != len(b.data) || len(a.data) != len(dst.data) {
		return fmt.Errorf("tensor: add: %w", ErrShapeMismatch)
	}
	for i := range dst.data {
		dst.data[i] = a.data[i] + b.data[i]
	}
	return nil
}

// Sub computes dst = a - b elementwise.
func Sub(a, b, dst *Tensor) error {
	if len(a.data) != len(b.data) || len(a.data) != len(dst.data) {
		return fmt.Errorf("tensor: sub: %w", ErrShapeMismatch)
	}
	for i := range dst.data {
		dst.data[i] = a.data[i] - b.data[i]
	}
	return nil
}

// Mul computes dst = a * b elementwise (Hadamard product).
func Mul(a, b, dst *Tensor) error {
	if len(a.data) != len(b.data) || len(a.data) != len(dst.data) {
		return fmt.Errorf("tensor: mul: %w", ErrShapeMismatch)
	}
	for i := range dst.data {
		dst.data[i] = a.data[i] * b.data[i]
	}
	return nil
}

// Dot returns the inner product of a and b.
func Dot(a, b *Tensor) (float32, error) {
	if len(a.data) != len(b.data) {
		return 0, fmt.Errorf("tensor: dot: %w", ErrShapeMismatch)
	}
	var s float32
	for i := range a.data {
		s += a.data[i] * b.data[i]
	}
	return s, nil
}

// Sum returns the sum of all elements.
func Sum(t *Tensor) float32 {
	var s float32
	for _, v := range t.data {
		s += v
	}
	return s
}

// MaxIndex returns the index of the largest element in the flat data.
func MaxIndex(t *Tensor) int {
	best := 0
	for i, v := range t.data {
		if v > t.data[best] {
			best = i
		}
	}
	return best
}

// L2Norm returns the Euclidean norm of the tensor.
func L2Norm(t *Tensor) float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// ClipInPlace clamps every element into [-limit, limit]. Gradient clipping
// keeps the small functional models stable at high worker counts.
func ClipInPlace(t *Tensor, limit float32) {
	if limit <= 0 {
		return
	}
	for i, v := range t.data {
		if v > limit {
			t.data[i] = limit
		} else if v < -limit {
			t.data[i] = -limit
		}
	}
}
