package tensor

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"
)

// nativeLittleEndian reports whether the host stores float32/uint32 in the
// wire byte order, which makes reinterpreting segment bytes as floats a
// pure pointer cast.
var nativeLittleEndian = func() bool {
	var probe [4]byte
	binary.LittleEndian.PutUint32(probe[:], 0x01020304)
	return *(*uint32)(unsafe.Pointer(&probe[0])) == 0x01020304
}()

// Float32View returns a []float32 aliasing b — no copy, no allocation —
// when the platform is little-endian and b is 4-byte aligned with a length
// that is a multiple of 4. ok is false otherwise and callers must fall back
// to DecodeFloat32. Writes through the view are writes to b: the SMB
// accumulate path uses this to run dst += src directly on segment bytes.
func Float32View(b []byte) (vals []float32, ok bool) {
	if !nativeLittleEndian || len(b)%4 != 0 {
		return nil, false
	}
	if len(b) == 0 {
		return nil, true
	}
	if uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(float32(0)) != 0 {
		return nil, false
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), len(b)/4), true
}

// EncodeFloat32 serializes vals as little-endian float32 into dst, which must
// have 4·len(vals) bytes. It returns the number of bytes written. The SMB
// wire protocol and segment store move weight vectors in this encoding.
func EncodeFloat32(vals []float32, dst []byte) (int, error) {
	need := 4 * len(vals)
	if len(dst) < need {
		return 0, fmt.Errorf("tensor: encode needs %d bytes, have %d", need, len(dst))
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(v))
	}
	return need, nil
}

// DecodeFloat32 deserializes little-endian float32 values from src into dst,
// which must have len(src)/4 elements; len(src) must be a multiple of 4.
func DecodeFloat32(src []byte, dst []float32) error {
	if len(src)%4 != 0 {
		return fmt.Errorf("tensor: decode length %d not a multiple of 4", len(src))
	}
	n := len(src) / 4
	if len(dst) < n {
		return fmt.Errorf("tensor: decode needs %d elements, have %d", n, len(dst))
	}
	for i := 0; i < n; i++ {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
	return nil
}

// Float32Bytes allocates and returns the little-endian encoding of vals.
func Float32Bytes(vals []float32) []byte {
	buf := make([]byte, 4*len(vals))
	if _, err := EncodeFloat32(vals, buf); err != nil {
		// Unreachable: buf is sized exactly.
		panic(err)
	}
	return buf
}

// Float32FromBytes allocates and returns the float32 decoding of src.
func Float32FromBytes(src []byte) ([]float32, error) {
	if len(src)%4 != 0 {
		return nil, fmt.Errorf("tensor: decode length %d not a multiple of 4", len(src))
	}
	out := make([]float32, len(src)/4)
	if err := DecodeFloat32(src, out); err != nil {
		return nil, err
	}
	return out, nil
}
