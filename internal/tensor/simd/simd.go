// Package simd is the hand-written vector backend under the tensor hot
// kernels: AVX2/FMA assembly for the float32 streaming loops (axpy, the
// SMB accumulate add, the fused SEASGD elastic sweeps, and the gemm
// quad-row microkernel), selected once at process start by a CPUID
// feature probe and exposed to internal/tensor as plain functions the
// dispatcher stores in indirect function pointers.
//
// Selection policy, in order:
//
//  1. A `noasm` build tag removes the assembly entirely; the package
//     compiles to panicking stubs and Enabled() is false. This is the
//     portable build CI exercises alongside the default one.
//  2. The SHMCAFFE_NOSIMD environment variable (any non-empty value)
//     forces the portable path at runtime without rebuilding.
//  3. The CPUID probe (cpu_amd64.go) requires AVX2, FMA, and OS support
//     for YMM state (OSXSAVE + XGETBV) — all three or nothing, so a
//     single Enabled() answer covers every kernel.
//
// Numerical contract (see DESIGN.md §14): every kernel except
// FusedAxpyCopy is bitwise-identical to the scalar-unrolled Go fallback
// in internal/tensor — vector lanes evaluate the same mul/add/sub
// sequence per element, tails run the identical scalar recurrence inside
// the assembly, and operand order is preserved so NaN propagation
// matches. FusedAxpyCopy is FMA-contracted (one rounding for
// alpha*x + y instead of two) and is therefore correctly rounded: within
// 1 ULP of the float64 reference, but not bitwise-equal to the portable
// path. Callers that need cross-backend bitwise reproducibility set
// SHMCAFFE_NOSIMD or build with -tags noasm.
//
// The kernels tolerate any slice lengths (they iterate over the shortest
// operand, matching the Go fallbacks), accept unaligned bases (VMOVUPS
// throughout — alignment costs nothing on the cores this targets), and
// allow the same exact-aliasing patterns the portable kernels document.
package simd

// enabled, backend and reason are decided once, at package init, by the
// per-architecture probe (cpu_amd64.go) or the stub build
// (simd_noasm.go). Nothing mutates them afterwards, so callers may cache
// the answers.
var (
	enabled bool
	backend = "portable"
	reason  = "no SIMD backend in this build"
)

// Enabled reports whether the assembly backend passed the feature probe
// and is safe to call. When false the kernel functions must not be
// invoked (the stubs panic; the amd64 kernels would execute AVX2 on a
// CPU that may lack it).
func Enabled() bool { return enabled }

// Backend names the active implementation: "avx2+fma" when the assembly
// is live, "portable" otherwise.
func Backend() string { return backend }

// Reason explains why the backend is disabled ("" when Enabled).
func Reason() string { return reason }

// FMAContracted reports whether FusedAxpyCopy fuses its multiply-add
// into a single rounding. True exactly when the AVX2 backend is live;
// consumers and tests switch their equivalence policy on this (bitwise
// against the portable kernels when false, ≤1 ULP against the float64
// reference when true).
func FMAContracted() bool { return enabled }
