//go:build amd64 && !noasm

package simd

// Assembly kernel declarations. Callers must check Enabled() first: the
// bodies execute AVX2 unconditionally. Every slice kernel iterates
// min(len(...)) elements — the length clamp, the 8-wide vector loop and
// the scalar tail all live in the assembly (kernels_amd64.s), so the
// tensor dispatcher can store these directly in its function pointers
// with no wrapper between the call site and the vector loop.
//
// Operand-order contract (what makes the non-FMA kernels bitwise-equal
// to the portable Go bodies): each element evaluates the identical
// mul/add/sub expression tree in the identical order, with the scalar
// tail using the VEX scalar forms of the same instructions. Only
// FusedAxpyCopy deviates — it contracts y + alpha*x into one FMA
// rounding (see the package comment and DESIGN.md §14).

// Axpy computes y[i] += alpha*x[i] for i < min(len(x), len(y)).
// y may alias x exactly (same base pointer).
//
//go:noescape
func Axpy(alpha float32, x, y []float32)

// Add computes y[i] += x[i] for i < min(len(x), len(y)); the alpha==1
// axpy fast path and the SMB accumulate add-loop. y may alias x exactly.
//
//go:noescape
func Add(x, y []float32)

// FusedElasticStep computes, per element over the min length:
//
//	d := alpha * (local[i] - global[i]); local[i] -= d; delta[i] = d
//
// delta must not alias local or global; local and global must not alias
// each other (the vector block stores local before delta).
//
//go:noescape
func FusedElasticStep(alpha float32, delta, local, global []float32)

// FusedElasticExchange computes, per element over the min length:
//
//	d := alpha * (local[i] - global[i])
//	local[i] -= d; global[i] += d; delta[i] = d
//
// delta, local and global must be pairwise non-aliasing.
//
//go:noescape
func FusedElasticExchange(alpha float32, delta, local, global []float32)

// FusedAxpyCopy computes dst[i] = fma(alpha, x[i], y[i]) over the min
// length — FMA-contracted, so within 1 ULP of the infinitely precise
// y + alpha*x but not bitwise-equal to the two-rounding portable body.
// dst may alias x or y exactly.
//
//go:noescape
func FusedAxpyCopy(alpha float32, x, y, dst []float32)

// FusedCopyAdd computes, per element over the min length:
//
//	v := x[i]; src[i] = v; dst[i] += v
//
// — the fused WRITE+ACCUMULATE stripe body: the pushed values land in the
// src segment and fold into dst in the same sweep. Pure adds in the same
// element order as copy-then-add, so bitwise-equal to the portable body.
// src and dst must not alias x or each other.
//
//go:noescape
func FusedCopyAdd(x, src, dst []float32)

// GemmInner4 is the quad-row gemm microkernel: with a pointing at four
// consecutive A values a0..a3 and b at the first of four B rows spaced
// ldb floats apart, it computes for j < n:
//
//	c[j] += a0*b0[j]; c[j] += a1*b1[j]; c[j] += a2*b2[j]; c[j] += a3*b3[j]
//
// as separate VMULPS/VADDPS per term in that order, which is the exact
// per-element accumulation order of the scalar blocked kernel — bitwise
// equality preserved, no FMA. c must not overlap a or the b rows.
//
//go:noescape
func GemmInner4(a *float32, b *float32, ldb int, c *float32, n int)
