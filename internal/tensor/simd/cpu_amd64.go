//go:build amd64 && !noasm

package simd

import "os"

// cpuid executes the CPUID instruction for the given leaf (EAX) and
// sub-leaf (ECX). Implemented in cpu_amd64.s.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0), which reports the
// register state the OS actually saves across context switches. Only
// valid once CPUID has confirmed OSXSAVE; implemented in cpu_amd64.s.
func xgetbv() (eax, edx uint32)

const (
	cpuid1FMA     = 1 << 12 // leaf 1 ECX: fused multiply-add
	cpuid1OSXSAVE = 1 << 27 // leaf 1 ECX: OS enabled XGETBV
	cpuid1AVX     = 1 << 28 // leaf 1 ECX: AVX instructions
	cpuid7AVX2    = 1 << 5  // leaf 7 EBX: AVX2 instructions
	xcr0YMM       = 0x6     // XCR0: XMM (bit 1) and YMM (bit 2) state saved
)

// init runs the feature probe once. The kernels use AVX2 loads/stores,
// FMA (FusedAxpyCopy), and YMM registers, so all of AVX, AVX2, FMA and
// OS-managed YMM state are required together; any miss leaves the
// package disabled and the tensor dispatcher on the portable kernels.
func init() {
	if os.Getenv("SHMCAFFE_NOSIMD") != "" {
		reason = "disabled by SHMCAFFE_NOSIMD"
		return
	}
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		reason = "cpuid leaf 7 unavailable"
		return
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const need1 = cpuid1FMA | cpuid1OSXSAVE | cpuid1AVX
	if ecx1&need1 != need1 {
		reason = "cpu lacks AVX/FMA/OSXSAVE"
		return
	}
	// OSXSAVE only says XGETBV works; XCR0 says whether the kernel
	// actually saves YMM state. Executing VEX-256 without it faults.
	if lo, _ := xgetbv(); lo&xcr0YMM != xcr0YMM {
		reason = "OS does not save YMM state"
		return
	}
	_, ebx7, _, _ := cpuid(7, 0)
	if ebx7&cpuid7AVX2 == 0 {
		reason = "cpu lacks AVX2"
		return
	}
	enabled = true
	backend = "avx2+fma"
	reason = ""
}
