//go:build !amd64 || noasm

package simd

// Portable build: no assembly is linked, Enabled() stays false, and the
// tensor dispatcher keeps its scalar-unrolled defaults. The kernel stubs
// exist only so call sites guarded by Enabled() compile on every
// platform; reaching one is a dispatcher bug, hence the panic.

func unreachable() {
	panic("simd: kernel called with Enabled() == false")
}

// Axpy panics; the portable build has no assembly backend.
func Axpy(alpha float32, x, y []float32) { unreachable() }

// Add panics; the portable build has no assembly backend.
func Add(x, y []float32) { unreachable() }

// FusedElasticStep panics; the portable build has no assembly backend.
func FusedElasticStep(alpha float32, delta, local, global []float32) { unreachable() }

// FusedElasticExchange panics; the portable build has no assembly backend.
func FusedElasticExchange(alpha float32, delta, local, global []float32) { unreachable() }

// FusedAxpyCopy panics; the portable build has no assembly backend.
func FusedAxpyCopy(alpha float32, x, y, dst []float32) { unreachable() }

// FusedCopyAdd panics; the portable build has no assembly backend.
func FusedCopyAdd(x, src, dst []float32) { unreachable() }

// GemmInner4 panics; the portable build has no assembly backend.
func GemmInner4(a *float32, b *float32, ldb int, c *float32, n int) { unreachable() }
