//go:build amd64 && !noasm

#include "textflag.h"

// AVX2/FMA float32 kernels. Shared conventions:
//
//   - Element count CX = min of the operand lengths, clamped up front, so
//     the Go side never pre-validates; BX is the running element index.
//   - Main loops are 8 or 16 elements per iteration of unaligned 32-byte
//     VMOVUPS (the target cores take no penalty on unaligned YMM access
//     that doesn't split cache lines, and the streams are float32-aligned
//     at worst); the tail runs the same expression with VEX scalar ops
//     (VMOVSS/VMULSS/...), never legacy SSE, to avoid AVX transition
//     stalls before the final VZEROUPPER.
//   - Arithmetic operand order mirrors the portable Go kernels term by
//     term: dst = src1 op src2 with src1 holding the value the Go
//     expression names first, so rounding AND two-NaN propagation match
//     the scalar reference bit for bit. FusedAxpyCopy alone contracts
//     its multiply-add (VFMADD231) and trades bitwise equality for
//     correctly-rounded results.

// func Axpy(alpha float32, x, y []float32)
//
// y[i] += alpha*x[i]. 32 elements per main iteration on four independent
// YMM chains; y may alias x exactly (every load of an element precedes
// the store to it within the block).
TEXT ·Axpy(SB), NOSPLIT, $0-56
	MOVQ x_len+16(FP), CX
	MOVQ y_len+40(FP), DX
	CMPQ DX, CX
	JGE  axpy_min
	MOVQ DX, CX

axpy_min:
	MOVQ         x_base+8(FP), SI
	MOVQ         y_base+32(FP), DI
	VBROADCASTSS alpha+0(FP), Y0
	XORQ         BX, BX
	MOVQ         CX, DX
	ANDQ         $-32, DX
	CMPQ         BX, DX
	JGE          axpy_blk8

axpy_loop32:
	VMOVUPS (SI)(BX*4), Y1
	VMOVUPS 32(SI)(BX*4), Y2
	VMOVUPS 64(SI)(BX*4), Y3
	VMOVUPS 96(SI)(BX*4), Y4
	VMULPS  Y1, Y0, Y1
	VMULPS  Y2, Y0, Y2
	VMULPS  Y3, Y0, Y3
	VMULPS  Y4, Y0, Y4
	VADDPS  (DI)(BX*4), Y1, Y1
	VADDPS  32(DI)(BX*4), Y2, Y2
	VADDPS  64(DI)(BX*4), Y3, Y3
	VADDPS  96(DI)(BX*4), Y4, Y4
	VMOVUPS Y1, (DI)(BX*4)
	VMOVUPS Y2, 32(DI)(BX*4)
	VMOVUPS Y3, 64(DI)(BX*4)
	VMOVUPS Y4, 96(DI)(BX*4)
	ADDQ    $32, BX
	CMPQ    BX, DX
	JLT     axpy_loop32

axpy_blk8:
	MOVQ CX, DX
	ANDQ $-8, DX
	CMPQ BX, DX
	JGE  axpy_tail

axpy_loop8:
	VMOVUPS (SI)(BX*4), Y1
	VMULPS  Y1, Y0, Y1
	VADDPS  (DI)(BX*4), Y1, Y1
	VMOVUPS Y1, (DI)(BX*4)
	ADDQ    $8, BX
	CMPQ    BX, DX
	JLT     axpy_loop8

axpy_tail:
	CMPQ BX, CX
	JGE  axpy_done

axpy_tail_loop:
	VMOVSS (SI)(BX*4), X1
	VMULSS X1, X0, X1
	VADDSS (DI)(BX*4), X1, X1
	VMOVSS X1, (DI)(BX*4)
	INCQ   BX
	CMPQ   BX, CX
	JLT    axpy_tail_loop

axpy_done:
	VZEROUPPER
	RET

// func Add(x, y []float32)
//
// y[i] += x[i] — the alpha==1 axpy fast path and the SMB accumulate
// inner loop. y may alias x exactly.
TEXT ·Add(SB), NOSPLIT, $0-48
	MOVQ x_len+8(FP), CX
	MOVQ y_len+32(FP), DX
	CMPQ DX, CX
	JGE  add_min
	MOVQ DX, CX

add_min:
	MOVQ x_base+0(FP), SI
	MOVQ y_base+24(FP), DI
	XORQ BX, BX
	MOVQ CX, DX
	ANDQ $-32, DX
	CMPQ BX, DX
	JGE  add_blk8

add_loop32:
	VMOVUPS (DI)(BX*4), Y1
	VMOVUPS 32(DI)(BX*4), Y2
	VMOVUPS 64(DI)(BX*4), Y3
	VMOVUPS 96(DI)(BX*4), Y4
	VADDPS  (SI)(BX*4), Y1, Y1
	VADDPS  32(SI)(BX*4), Y2, Y2
	VADDPS  64(SI)(BX*4), Y3, Y3
	VADDPS  96(SI)(BX*4), Y4, Y4
	VMOVUPS Y1, (DI)(BX*4)
	VMOVUPS Y2, 32(DI)(BX*4)
	VMOVUPS Y3, 64(DI)(BX*4)
	VMOVUPS Y4, 96(DI)(BX*4)
	ADDQ    $32, BX
	CMPQ    BX, DX
	JLT     add_loop32

add_blk8:
	MOVQ CX, DX
	ANDQ $-8, DX
	CMPQ BX, DX
	JGE  add_tail

add_loop8:
	VMOVUPS (DI)(BX*4), Y1
	VADDPS  (SI)(BX*4), Y1, Y1
	VMOVUPS Y1, (DI)(BX*4)
	ADDQ    $8, BX
	CMPQ    BX, DX
	JLT     add_loop8

add_tail:
	CMPQ BX, CX
	JGE  add_done

add_tail_loop:
	VMOVSS (DI)(BX*4), X1
	VADDSS (SI)(BX*4), X1, X1
	VMOVSS X1, (DI)(BX*4)
	INCQ   BX
	CMPQ   BX, CX
	JLT    add_tail_loop

add_done:
	VZEROUPPER
	RET

// func FusedElasticStep(alpha float32, delta, local, global []float32)
//
// d := alpha*(local[i]-global[i]); local[i] -= d; delta[i] = d.
// 16 elements per main iteration on two independent chains. delta must
// not alias local/global (local stores land before delta stores within
// a block); local and global must not alias each other.
TEXT ·FusedElasticStep(SB), NOSPLIT, $0-80
	MOVQ delta_len+16(FP), CX
	MOVQ local_len+40(FP), DX
	CMPQ DX, CX
	JGE  festep_min1
	MOVQ DX, CX

festep_min1:
	MOVQ global_len+64(FP), DX
	CMPQ DX, CX
	JGE  festep_min2
	MOVQ DX, CX

festep_min2:
	MOVQ         delta_base+8(FP), DI
	MOVQ         local_base+32(FP), R8
	MOVQ         global_base+56(FP), R9
	VBROADCASTSS alpha+0(FP), Y0
	XORQ         BX, BX
	MOVQ         CX, DX
	ANDQ         $-16, DX
	CMPQ         BX, DX
	JGE          festep_blk8

festep_loop16:
	VMOVUPS (R8)(BX*4), Y1
	VMOVUPS 32(R8)(BX*4), Y4
	VMOVUPS (R9)(BX*4), Y2
	VMOVUPS 32(R9)(BX*4), Y5
	VSUBPS  Y2, Y1, Y3
	VSUBPS  Y5, Y4, Y6
	VMULPS  Y3, Y0, Y3
	VMULPS  Y6, Y0, Y6
	VSUBPS  Y3, Y1, Y1
	VSUBPS  Y6, Y4, Y4
	VMOVUPS Y1, (R8)(BX*4)
	VMOVUPS Y4, 32(R8)(BX*4)
	VMOVUPS Y3, (DI)(BX*4)
	VMOVUPS Y6, 32(DI)(BX*4)
	ADDQ    $16, BX
	CMPQ    BX, DX
	JLT     festep_loop16

festep_blk8:
	MOVQ CX, DX
	ANDQ $-8, DX
	CMPQ BX, DX
	JGE  festep_tail

festep_loop8:
	VMOVUPS (R8)(BX*4), Y1
	VMOVUPS (R9)(BX*4), Y2
	VSUBPS  Y2, Y1, Y3
	VMULPS  Y3, Y0, Y3
	VSUBPS  Y3, Y1, Y1
	VMOVUPS Y1, (R8)(BX*4)
	VMOVUPS Y3, (DI)(BX*4)
	ADDQ    $8, BX
	CMPQ    BX, DX
	JLT     festep_loop8

festep_tail:
	CMPQ BX, CX
	JGE  festep_done

festep_tail_loop:
	VMOVSS (R8)(BX*4), X1
	VMOVSS (R9)(BX*4), X2
	VSUBSS X2, X1, X3
	VMULSS X3, X0, X3
	VSUBSS X3, X1, X1
	VMOVSS X1, (R8)(BX*4)
	VMOVSS X3, (DI)(BX*4)
	INCQ   BX
	CMPQ   BX, CX
	JLT    festep_tail_loop

festep_done:
	VZEROUPPER
	RET

// func FusedElasticExchange(alpha float32, delta, local, global []float32)
//
// d := alpha*(local[i]-global[i]); local[i] -= d; global[i] += d;
// delta[i] = d. Operands pairwise non-aliasing.
TEXT ·FusedElasticExchange(SB), NOSPLIT, $0-80
	MOVQ delta_len+16(FP), CX
	MOVQ local_len+40(FP), DX
	CMPQ DX, CX
	JGE  fex_min1
	MOVQ DX, CX

fex_min1:
	MOVQ global_len+64(FP), DX
	CMPQ DX, CX
	JGE  fex_min2
	MOVQ DX, CX

fex_min2:
	MOVQ         delta_base+8(FP), DI
	MOVQ         local_base+32(FP), R8
	MOVQ         global_base+56(FP), R9
	VBROADCASTSS alpha+0(FP), Y0
	XORQ         BX, BX
	MOVQ         CX, DX
	ANDQ         $-16, DX
	CMPQ         BX, DX
	JGE          fex_blk8

fex_loop16:
	VMOVUPS (R8)(BX*4), Y1
	VMOVUPS 32(R8)(BX*4), Y4
	VMOVUPS (R9)(BX*4), Y2
	VMOVUPS 32(R9)(BX*4), Y5
	VSUBPS  Y2, Y1, Y3
	VSUBPS  Y5, Y4, Y6
	VMULPS  Y3, Y0, Y3
	VMULPS  Y6, Y0, Y6
	VSUBPS  Y3, Y1, Y1
	VSUBPS  Y6, Y4, Y4
	VADDPS  Y3, Y2, Y2
	VADDPS  Y6, Y5, Y5
	VMOVUPS Y1, (R8)(BX*4)
	VMOVUPS Y4, 32(R8)(BX*4)
	VMOVUPS Y2, (R9)(BX*4)
	VMOVUPS Y5, 32(R9)(BX*4)
	VMOVUPS Y3, (DI)(BX*4)
	VMOVUPS Y6, 32(DI)(BX*4)
	ADDQ    $16, BX
	CMPQ    BX, DX
	JLT     fex_loop16

fex_blk8:
	MOVQ CX, DX
	ANDQ $-8, DX
	CMPQ BX, DX
	JGE  fex_tail

fex_loop8:
	VMOVUPS (R8)(BX*4), Y1
	VMOVUPS (R9)(BX*4), Y2
	VSUBPS  Y2, Y1, Y3
	VMULPS  Y3, Y0, Y3
	VSUBPS  Y3, Y1, Y1
	VADDPS  Y3, Y2, Y2
	VMOVUPS Y1, (R8)(BX*4)
	VMOVUPS Y2, (R9)(BX*4)
	VMOVUPS Y3, (DI)(BX*4)
	ADDQ    $8, BX
	CMPQ    BX, DX
	JLT     fex_loop8

fex_tail:
	CMPQ BX, CX
	JGE  fex_done

fex_tail_loop:
	VMOVSS (R8)(BX*4), X1
	VMOVSS (R9)(BX*4), X2
	VSUBSS X2, X1, X3
	VMULSS X3, X0, X3
	VSUBSS X3, X1, X1
	VADDSS X3, X2, X2
	VMOVSS X1, (R8)(BX*4)
	VMOVSS X2, (R9)(BX*4)
	VMOVSS X3, (DI)(BX*4)
	INCQ   BX
	CMPQ   BX, CX
	JLT    fex_tail_loop

fex_done:
	VZEROUPPER
	RET

// func FusedAxpyCopy(alpha float32, x, y, dst []float32)
//
// dst[i] = fma(alpha, x[i], y[i]), contracted to one rounding in both
// the vector body and the scalar tail so the whole kernel is uniformly
// correctly rounded. dst may alias x or y exactly.
TEXT ·FusedAxpyCopy(SB), NOSPLIT, $0-80
	MOVQ x_len+16(FP), CX
	MOVQ y_len+40(FP), DX
	CMPQ DX, CX
	JGE  fac_min1
	MOVQ DX, CX

fac_min1:
	MOVQ dst_len+64(FP), DX
	CMPQ DX, CX
	JGE  fac_min2
	MOVQ DX, CX

fac_min2:
	MOVQ         x_base+8(FP), SI
	MOVQ         y_base+32(FP), DX
	MOVQ         dst_base+56(FP), DI
	VBROADCASTSS alpha+0(FP), Y0
	XORQ         BX, BX
	MOVQ         CX, R10
	ANDQ         $-16, R10
	CMPQ         BX, R10
	JGE          fac_blk8

fac_loop16:
	VMOVUPS     (DX)(BX*4), Y1
	VMOVUPS     32(DX)(BX*4), Y2
	VFMADD231PS (SI)(BX*4), Y0, Y1
	VFMADD231PS 32(SI)(BX*4), Y0, Y2
	VMOVUPS     Y1, (DI)(BX*4)
	VMOVUPS     Y2, 32(DI)(BX*4)
	ADDQ        $16, BX
	CMPQ        BX, R10
	JLT         fac_loop16

fac_blk8:
	MOVQ CX, R10
	ANDQ $-8, R10
	CMPQ BX, R10
	JGE  fac_tail

fac_loop8:
	VMOVUPS     (DX)(BX*4), Y1
	VFMADD231PS (SI)(BX*4), Y0, Y1
	VMOVUPS     Y1, (DI)(BX*4)
	ADDQ        $8, BX
	CMPQ        BX, R10
	JLT         fac_loop8

fac_tail:
	CMPQ BX, CX
	JGE  fac_done

fac_tail_loop:
	VMOVSS      (DX)(BX*4), X1
	VFMADD231SS (SI)(BX*4), X0, X1
	VMOVSS      X1, (DI)(BX*4)
	INCQ        BX
	CMPQ        BX, CX
	JLT         fac_tail_loop

fac_done:
	VZEROUPPER
	RET

// func FusedCopyAdd(x, src, dst []float32)
//
// v := x[i]; src[i] = v; dst[i] += v — the fused WRITE+ACCUMULATE stripe
// body. Pure adds in the same element order as copy-then-add, so this is
// bitwise-identical to the portable kernel. src and dst must not alias x
// or each other.
TEXT ·FusedCopyAdd(SB), NOSPLIT, $0-72
	MOVQ x_len+8(FP), CX
	MOVQ src_len+32(FP), DX
	CMPQ DX, CX
	JGE  fca_min1
	MOVQ DX, CX

fca_min1:
	MOVQ dst_len+56(FP), DX
	CMPQ DX, CX
	JGE  fca_min2
	MOVQ DX, CX

fca_min2:
	MOVQ x_base+0(FP), SI
	MOVQ src_base+24(FP), R8
	MOVQ dst_base+48(FP), DI
	XORQ BX, BX

	// The src stream is write-only here, so its stores go non-temporal:
	// a regular store would read each src cache line for ownership first,
	// and that extra read stream is exactly what the fusion exists to
	// avoid (it is also why plain copy+add, whose memmove half gets the
	// same effect from ERMSB, beats a naive fused loop). VMOVNTPS needs
	// 32-byte alignment, so peel scalar elements until src is aligned;
	// float32 slice bases are always 4-byte aligned, so the peel
	// terminates within 7 elements.
	MOVQ R8, AX
	ANDQ $31, AX
	JZ   fca_vec
	MOVQ $32, DX
	SUBQ AX, DX
	SHRQ $2, DX
	CMPQ DX, CX
	JLE  fca_peel
	MOVQ CX, DX

fca_peel:
	CMPQ BX, DX
	JGE  fca_vec
	VMOVSS (SI)(BX*4), X1
	VMOVSS (DI)(BX*4), X3
	VADDSS X1, X3, X3
	VMOVSS X1, (R8)(BX*4)
	VMOVSS X3, (DI)(BX*4)
	INCQ   BX
	JMP    fca_peel

fca_vec:
	// R10 = BX + ((CX-BX) & ~31): end of the 32-element main loop.
	MOVQ CX, R10
	SUBQ BX, R10
	ANDQ $-32, R10
	ADDQ BX, R10
	CMPQ BX, R10
	JGE  fca_blk8

fca_loop32:
	VMOVUPS  (SI)(BX*4), Y1
	VMOVUPS  32(SI)(BX*4), Y2
	VMOVUPS  64(SI)(BX*4), Y3
	VMOVUPS  96(SI)(BX*4), Y4
	VMOVUPS  (DI)(BX*4), Y5
	VMOVUPS  32(DI)(BX*4), Y6
	VMOVUPS  64(DI)(BX*4), Y7
	VMOVUPS  96(DI)(BX*4), Y8
	VADDPS   Y1, Y5, Y5
	VADDPS   Y2, Y6, Y6
	VADDPS   Y3, Y7, Y7
	VADDPS   Y4, Y8, Y8
	VMOVNTPS Y1, (R8)(BX*4)
	VMOVNTPS Y2, 32(R8)(BX*4)
	VMOVNTPS Y3, 64(R8)(BX*4)
	VMOVNTPS Y4, 96(R8)(BX*4)
	VMOVUPS  Y5, (DI)(BX*4)
	VMOVUPS  Y6, 32(DI)(BX*4)
	VMOVUPS  Y7, 64(DI)(BX*4)
	VMOVUPS  Y8, 96(DI)(BX*4)
	ADDQ     $32, BX
	CMPQ     BX, R10
	JLT      fca_loop32

fca_blk8:
	// 8-element steps keep the 32-byte src alignment, so these stores
	// stay non-temporal too.
	MOVQ CX, R10
	SUBQ BX, R10
	ANDQ $-8, R10
	ADDQ BX, R10
	CMPQ BX, R10
	JGE  fca_tail

fca_loop8:
	VMOVUPS  (SI)(BX*4), Y1
	VMOVUPS  (DI)(BX*4), Y5
	VADDPS   Y1, Y5, Y5
	VMOVNTPS Y1, (R8)(BX*4)
	VMOVUPS  Y5, (DI)(BX*4)
	ADDQ     $8, BX
	CMPQ     BX, R10
	JLT      fca_loop8

fca_tail:
	CMPQ BX, CX
	JGE  fca_done

fca_tail_loop:
	VMOVSS (SI)(BX*4), X1
	VMOVSS (DI)(BX*4), X3
	VADDSS X1, X3, X3
	VMOVSS X1, (R8)(BX*4)
	VMOVSS X3, (DI)(BX*4)
	INCQ   BX
	CMPQ   BX, CX
	JLT    fca_tail_loop

fca_done:
	// Drain the non-temporal stores: callers publish src under a lock
	// word immediately after this returns, and NT stores are weakly
	// ordered — without the fence another process could acquire the
	// stripe and read stale src bytes.
	SFENCE
	VZEROUPPER
	RET

// func GemmInner4(a *float32, b *float32, ldb int, c *float32, n int)
//
// Quad-row gemm microkernel: c[j] accumulates a0*b0[j], a1*b1[j],
// a2*b2[j], a3*b3[j] as four separate mul+add terms IN THAT ORDER per
// element — the exact accumulation order of the scalar blocked kernel,
// so no FMA here. Successive j-blocks are independent chains, which is
// what lets out-of-order execution overlap the four serial adds.
TEXT ·GemmInner4(SB), NOSPLIT, $0-40
	MOVQ         a+0(FP), AX
	MOVQ         b+8(FP), SI
	MOVQ         ldb+16(FP), DX
	MOVQ         c+24(FP), DI
	MOVQ         n+32(FP), CX
	VBROADCASTSS (AX), Y0
	VBROADCASTSS 4(AX), Y1
	VBROADCASTSS 8(AX), Y2
	VBROADCASTSS 12(AX), Y3
	LEAQ         (SI)(DX*4), R8
	LEAQ         (R8)(DX*4), R9
	LEAQ         (R9)(DX*4), R10
	XORQ         BX, BX
	MOVQ         CX, DX
	ANDQ         $-8, DX
	CMPQ         BX, DX
	JGE          gi4_tail

gi4_loop8:
	VMOVUPS (DI)(BX*4), Y4
	VMOVUPS (SI)(BX*4), Y5
	VMULPS  Y5, Y0, Y5
	VADDPS  Y5, Y4, Y4
	VMOVUPS (R8)(BX*4), Y5
	VMULPS  Y5, Y1, Y5
	VADDPS  Y5, Y4, Y4
	VMOVUPS (R9)(BX*4), Y5
	VMULPS  Y5, Y2, Y5
	VADDPS  Y5, Y4, Y4
	VMOVUPS (R10)(BX*4), Y5
	VMULPS  Y5, Y3, Y5
	VADDPS  Y5, Y4, Y4
	VMOVUPS Y4, (DI)(BX*4)
	ADDQ    $8, BX
	CMPQ    BX, DX
	JLT     gi4_loop8

gi4_tail:
	CMPQ BX, CX
	JGE  gi4_done

gi4_tail_loop:
	VMOVSS (DI)(BX*4), X4
	VMOVSS (SI)(BX*4), X5
	VMULSS X5, X0, X5
	VADDSS X5, X4, X4
	VMOVSS (R8)(BX*4), X5
	VMULSS X5, X1, X5
	VADDSS X5, X4, X4
	VMOVSS (R9)(BX*4), X5
	VMULSS X5, X2, X5
	VADDSS X5, X4, X4
	VMOVSS (R10)(BX*4), X5
	VMULSS X5, X3, X5
	VADDSS X5, X4, X4
	VMOVSS X4, (DI)(BX*4)
	INCQ   BX
	CMPQ   BX, CX
	JLT    gi4_tail_loop

gi4_done:
	VZEROUPPER
	RET
