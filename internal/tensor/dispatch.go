package tensor

import "shmcaffe/internal/tensor/simd"

// Kernel dispatch. The exported hot kernels (AxpySlice, FusedElasticStep,
// FusedElasticExchange, FusedAxpyCopy) and the blocked gemm call through
// the indirect function pointers below. The pointers default to the
// portable scalar-unrolled bodies and are swapped exactly once, at package
// init, to the AVX2/FMA assembly in internal/tensor/simd when its CPUID
// probe passes — so steady state pays one indirect call and zero branches
// per kernel invocation, and a build with `-tags noasm` (or a run with
// SHMCAFFE_NOSIMD set) never leaves the portable path.
//
// tensor's init runs after simd's (import dependency), so simd.Enabled()
// is already final here and nothing ever mutates these pointers again;
// concurrent kernel callers see a fixed dispatch table.
var (
	axpyImpl                 = axpySliceUnrolled
	addImpl                  = addSliceUnrolled
	fusedElasticStepImpl     = fusedElasticStepUnrolled
	fusedElasticExchangeImpl = fusedElasticExchangeUnrolled
	fusedAxpyCopyImpl        = fusedAxpyCopyUnrolled
	fusedCopyAddImpl         = fusedCopyAddUnrolled

	// gemmInner4 is the quad-row gemm microkernel; nil means the blocked
	// kernel runs its pure-Go inner loop (see gemmRows).
	gemmInner4 func(a, b *float32, ldb int, c *float32, n int)
)

func init() {
	if !simd.Enabled() {
		return
	}
	axpyImpl = simd.Axpy
	addImpl = simd.Add
	fusedElasticStepImpl = simd.FusedElasticStep
	fusedElasticExchangeImpl = simd.FusedElasticExchange
	fusedAxpyCopyImpl = simd.FusedAxpyCopy
	fusedCopyAddImpl = simd.FusedCopyAdd
	gemmInner4 = simd.GemmInner4
}

// SimdBackend names the kernel backend the dispatcher selected at init:
// "avx2+fma" or "portable". Surfaced in the benchmark reports so
// committed numbers say what they measured.
func SimdBackend() string { return simd.Backend() }

// SimdEnabled reports whether the assembly backend is live; tests use it
// to pick the equivalence policy for the FMA-contracted kernel.
func SimdEnabled() bool { return simd.Enabled() }
