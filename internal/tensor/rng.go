package tensor

import "math"

// RNG is a small deterministic pseudo-random generator (SplitMix64) used for
// weight initialization and synthetic data. A dedicated generator keeps every
// experiment reproducible regardless of math/rand global state and lets each
// distributed worker own an independent stream.
type RNG struct {
	state uint64
	// spare holds a cached second normal variate from Box-Muller.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64-bit value of the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := r.Float64()
		v := r.Float64()
		if u <= 1e-300 {
			continue
		}
		mag := math.Sqrt(-2 * math.Log(u))
		r.spare = mag * math.Sin(2*math.Pi*v)
		r.hasSpare = true
		return mag * math.Cos(2*math.Pi*v)
	}
}

// FillNormal fills t with N(mean, std²) variates.
func (r *RNG) FillNormal(t *Tensor, mean, std float64) {
	for i := range t.data {
		t.data[i] = float32(mean + std*r.NormFloat64())
	}
}

// FillUniform fills t with uniform variates in [lo, hi).
func (r *RNG) FillUniform(t *Tensor, lo, hi float64) {
	for i := range t.data {
		t.data[i] = float32(lo + (hi-lo)*r.Float64())
	}
}

// XavierInit fills t with the Caffe "xavier" filler: uniform in
// [-√(3/fanIn), +√(3/fanIn)].
func (r *RNG) XavierInit(t *Tensor, fanIn int) {
	if fanIn <= 0 {
		fanIn = 1
	}
	bound := math.Sqrt(3.0 / float64(fanIn))
	r.FillUniform(t, -bound, bound)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives an independent generator; worker i of an experiment takes
// Split(i) of the experiment seed so streams never collide.
func (r *RNG) Split(i uint64) *RNG {
	return NewRNG(r.state ^ (0x632be59bd9b4e019 * (i + 1)))
}
