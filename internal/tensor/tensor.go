// Package tensor provides the dense float32 tensor type and the numeric
// kernels used by the neural-network substrate. It is a deliberately small,
// allocation-conscious replacement for the BLAS/cuDNN layer that Caffe uses
// on GPU hardware.
package tensor

import (
	"errors"
	"fmt"
	"strings"
)

// ErrShapeMismatch is returned when an operation receives tensors whose
// shapes are incompatible.
var ErrShapeMismatch = errors.New("tensor: shape mismatch")

// Tensor is a dense, row-major float32 tensor. The zero value is an empty
// tensor; use New or FromSlice to construct a usable one.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape. A call with no
// dimensions produces a scalar-like tensor of one element.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); len(data) must equal the shape volume.
func FromSlice(data []float32, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			return nil, fmt.Errorf("tensor: non-positive dimension %d in shape %v", d, shape)
		}
		n *= d
	}
	if len(data) != n {
		return nil, fmt.Errorf("tensor: data length %d does not match shape %v (%d): %w",
			len(data), shape, n, ErrShapeMismatch)
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: data}, nil
}

// MustFromSlice is FromSlice that panics on error; intended for literals in
// tests and examples.
func MustFromSlice(data []float32, shape ...int) *Tensor {
	t, err := FromSlice(data, shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int {
	s := make([]int, len(t.shape))
	copy(s, t.shape)
	return s
}

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying storage. Mutating the returned slice mutates
// the tensor; this is the intended fast path for kernels and serialization.
func (t *Tensor) Data() []float32 { return t.data }

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.data[t.offset(idx)]
}

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's elements into t. Shapes must have equal volume.
func (t *Tensor) CopyFrom(src *Tensor) error {
	if len(t.data) != len(src.data) {
		return fmt.Errorf("tensor: copy volume %d != %d: %w", len(src.data), len(t.data), ErrShapeMismatch)
	}
	copy(t.data, src.data)
	return nil
}

// Reshape returns a view of t with a new shape of equal volume. The view
// shares storage with t.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		return nil, fmt.Errorf("tensor: reshape %v to %v: %w", t.shape, shape, ErrShapeMismatch)
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: t.data}, nil
}

// Zero sets every element to zero.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// String renders a short description, not the full contents.
func (t *Tensor) String() string {
	var b strings.Builder
	b.WriteString("Tensor")
	fmt.Fprintf(&b, "%v", t.shape)
	n := len(t.data)
	if n > 8 {
		n = 8
	}
	fmt.Fprintf(&b, "{%v", t.data[:n])
	if len(t.data) > 8 {
		b.WriteString(" ...")
	}
	b.WriteString("}")
	return b.String()
}
