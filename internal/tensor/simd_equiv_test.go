package tensor

import (
	"math"
	"testing"

	"shmcaffe/internal/tensor/simd"
)

func bitwiseEqual32(a, b float32) bool {
	return math.Float32bits(a) == math.Float32bits(b)
}

// SIMD-vs-scalar equivalence across every tail class. The AVX2 kernels run
// 32/16/8-wide main loops with scalar VEX tails, so the interesting lengths
// are every residue mod 16 (0–15) on top of zero or more full vectors, at
// every unaligned starting offset within a 64-byte line. The contract
// (DESIGN.md §14):
//
//   - Axpy / Add / FusedElasticStep / FusedElasticExchange: bitwise equal
//     to the scalar kernels on every backend — no FMA contraction, same
//     per-element expression order.
//   - FusedAxpyCopy: bitwise on the portable backend; within 1 ULP of the
//     float64 reference when the FMA backend is active (one rounding versus
//     the scalar kernel's two).
func TestSimdTailAndOffsetEquivalence(t *testing.T) {
	t.Logf("simd backend: %s enabled=%v", simd.Backend(), simd.Enabled())
	const maxVec = 64 // up to two full 32-wide axpy iterations
	alphas := []float32{0, 1, -1, 0.37, -2.5}
	for _, base := range []int{0, 16, 32, maxVec} {
		for tail := 0; tail < 16; tail++ {
			n := base + tail
			for off := 0; off < 16; off++ {
				// Backing arrays sized so every offset slice holds n elements.
				raw := func(seed int) []float32 {
					s := make([]float32, off+n)
					fillPattern(s, seed)
					return s[off : off+n]
				}
				for _, alpha := range alphas {
					x := raw(1)
					ys := raw(2)
					yd := make([]float32, n)
					copy(yd, ys)
					AxpySliceScalar(alpha, x, ys)
					AxpySlice(alpha, x, yd)
					for i := range ys {
						if !bitwiseEqual32(ys[i], yd[i]) {
							t.Fatalf("Axpy n=%d off=%d alpha=%v i=%d: simd=%v scalar=%v", n, off, alpha, i, yd[i], ys[i])
						}
					}

					delta := raw(3)
					local := raw(4)
					global := raw(5)
					wantDelta := append([]float32(nil), delta...)
					wantLocal := append([]float32(nil), local...)
					wantGlobal := append([]float32(nil), global...)
					fusedElasticStepScalar(alpha, wantDelta, wantLocal, wantGlobal)
					FusedElasticStep(alpha, delta, local, global)
					assertBitwiseSlices(t, "FusedElasticStep", n, off, alpha, delta, wantDelta, local, wantLocal)

					delta, local, global = raw(6), raw(7), raw(8)
					wantDelta = append([]float32(nil), delta...)
					wantLocal = append([]float32(nil), local...)
					wantGlobal = append([]float32(nil), global...)
					fusedElasticExchangeScalar(alpha, wantDelta, wantLocal, wantGlobal)
					FusedElasticExchange(alpha, delta, local, global)
					assertBitwiseSlices(t, "FusedElasticExchange", n, off, alpha, delta, wantDelta, local, wantLocal)
					assertBitwiseSlices(t, "FusedElasticExchange/global", n, off, alpha, global, wantGlobal, nil, nil)

					x, ys = raw(9), raw(10)
					dst := raw(11)
					ref := fmaRef64(alpha, x, ys)
					want := make([]float32, n)
					fusedAxpyCopyScalar(alpha, x, ys, want)
					FusedAxpyCopy(alpha, x, ys, dst)
					if SimdEnabled() {
						assertWithin1ULP(t, "FusedAxpyCopy", dst, ref)
					} else {
						assertBitwiseSlices(t, "FusedAxpyCopy", n, off, alpha, dst, want, nil, nil)
					}
				}
			}
		}
	}
}

// TestSimdAliasedDstTails exercises the documented aliasing mode
// (dst == y, the in-place production call shape) across every tail length.
func TestSimdAliasedDstTails(t *testing.T) {
	for n := 0; n < 40; n++ {
		x := make([]float32, n)
		y := make([]float32, n)
		fillPattern(x, 21)
		fillPattern(y, 22)
		ref := fmaRef64(0.7, x, y)
		want := make([]float32, n)
		fusedAxpyCopyScalar(0.7, x, y, want)
		FusedAxpyCopy(0.7, x, y, y) // dst aliases y
		if SimdEnabled() {
			assertWithin1ULP(t, "FusedAxpyCopy aliased", y, ref)
		} else {
			assertBitwiseSlices(t, "FusedAxpyCopy aliased", n, 0, 0.7, y, want, nil, nil)
		}
	}
}

func assertBitwiseSlices(t *testing.T, tag string, n, off int, alpha float32, got, want, got2, want2 []float32) {
	t.Helper()
	for i := range want {
		if !bitwiseEqual32(got[i], want[i]) {
			t.Fatalf("%s n=%d off=%d alpha=%v i=%d: simd=%v scalar=%v", tag, n, off, alpha, i, got[i], want[i])
		}
	}
	for i := range want2 {
		if !bitwiseEqual32(got2[i], want2[i]) {
			t.Fatalf("%s (second output) n=%d off=%d alpha=%v i=%d: simd=%v scalar=%v", tag, n, off, alpha, i, got2[i], want2[i])
		}
	}
}
