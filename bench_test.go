// Benchmark harness: one testing.B benchmark per table and figure of the
// paper, plus microbenchmarks of the load-bearing substrate operations.
// Each exhibit benchmark regenerates its table through internal/bench and
// reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// both exercises the generators and prints the reproduced numbers.
package shmcaffe_test

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"shmcaffe"
	"shmcaffe/internal/bench"
	"shmcaffe/internal/nccl"
	"shmcaffe/internal/nn"
	"shmcaffe/internal/perfmodel"
	"shmcaffe/internal/smb"
	"shmcaffe/internal/tensor"
	"shmcaffe/internal/trace"
)

// ---- Exhibit benchmarks (one per table/figure) ----

func BenchmarkFig7SMBBandwidth(b *testing.B) {
	hw := perfmodel.DefaultHardware()
	var saturated float64
	for i := 0; i < b.N; i++ {
		bw, err := perfmodel.SimulateSMBBandwidth(32, 1e9, 16e6, hw)
		if err != nil {
			b.Fatal(err)
		}
		saturated = bw
	}
	b.ReportMetric(saturated/1e9, "GB/s@32procs")
}

func BenchmarkTable2TrainingTime(b *testing.B) {
	hw := perfmodel.DefaultHardware()
	var tab *trace.Table
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = bench.Table2TrainingTime(hw)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastScalability(b, tab), "shmcaffe16_speedup")
}

func lastScalability(b *testing.B, tab *trace.Table) float64 {
	b.Helper()
	row := tab.Rows[len(tab.Rows)-1]
	v, err := strconv.ParseFloat(strings.TrimSuffix(row[len(row)-1], "x"), 64)
	if err != nil {
		b.Fatal(err)
	}
	return v
}

func BenchmarkFig10CompComm(b *testing.B) {
	hw := perfmodel.DefaultHardware()
	var ratio float64
	for i := 0; i < b.N; i++ {
		shm, err := perfmodel.SimulateHSGD(nn.InceptionV1, []int{4, 4, 4, 4}, 40, hw)
		if err != nil {
			b.Fatal(err)
		}
		cmpi, err := perfmodel.SimulateCaffeMPI(nn.InceptionV1, 16, 40, hw)
		if err != nil {
			b.Fatal(err)
		}
		ratio = cmpi.Comm.Seconds() / shm.Comm.Seconds()
	}
	b.ReportMetric(ratio, "commspeedup_vs_caffempi")
}

func BenchmarkTable5ShmCaffeA(b *testing.B) {
	hw := perfmodel.DefaultHardware()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table5ShmCaffeA(hw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6ShmCaffeH(b *testing.B) {
	hw := perfmodel.DefaultHardware()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table6ShmCaffeH(hw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15AvsH(b *testing.B) {
	hw := perfmodel.DefaultHardware()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig15AvsH(hw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Convergence(b *testing.B) {
	opts := bench.DefaultConvergenceOptions()
	opts.Epochs = 2
	opts.PerClass = 40
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig8Convergence(4, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11AsyncVsHybrid(b *testing.B) {
	opts := bench.DefaultConvergenceOptions()
	opts.Epochs = 2
	opts.PerClass = 40
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig11AsyncVsHybrid([]int{1, 4}, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationOverlap(b *testing.B) {
	hw := perfmodel.DefaultHardware()
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationOverlap(hw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGroupSize(b *testing.B) {
	hw := perfmodel.DefaultHardware()
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationGroupSize(hw); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Substrate microbenchmarks ----

// BenchmarkSMBAccumulate measures the server-side accumulate of a 1M-
// element (4 MB) weight increment — the hot operation of SEASGD.
func BenchmarkSMBAccumulate(b *testing.B) {
	store := smb.NewStore()
	const elems = 1 << 20
	kw, err := store.Create("wg", elems*4)
	if err != nil {
		b.Fatal(err)
	}
	kd, _ := store.Create("dw", elems*4)
	hw, _ := store.Attach(kw)
	hd, _ := store.Attach(kd)
	vals := make([]float32, elems)
	for i := range vals {
		vals[i] = 1
	}
	if err := store.Write(hd, 0, tensor.Float32Bytes(vals)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(elems * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.Accumulate(hw, hd); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSMBReadWrite measures the in-process segment copy path.
func BenchmarkSMBReadWrite(b *testing.B) {
	store := smb.NewStore()
	const size = 4 << 20
	key, _ := store.Create("seg", size)
	h, _ := store.Attach(key)
	buf := make([]byte, size)
	b.SetBytes(2 * size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.Write(h, 0, buf); err != nil {
			b.Fatal(err)
		}
		if err := store.Read(h, 0, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRingAllReduce measures the NCCL-style ring over 4 goroutine
// devices with 256k elements each.
func BenchmarkRingAllReduce(b *testing.B) {
	const devices = 4
	const elems = 1 << 18
	group, err := nccl.NewGroup(devices)
	if err != nil {
		b.Fatal(err)
	}
	bufs := make([][]float32, devices)
	for d := range bufs {
		bufs[d] = make([]float32, elems)
	}
	b.SetBytes(int64(elems * 4 * devices))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for d := 0; d < devices; d++ {
			d := d
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := group.AllReduce(d, bufs[d]); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
}

// BenchmarkElasticExchange measures one Eq. (5)–(7) exchange over a 1M-
// element weight vector.
func BenchmarkElasticExchange(b *testing.B) {
	const elems = 1 << 20
	local := make([]float32, elems)
	global := make([]float32, elems)
	scratch := make([]float32, elems)
	b.SetBytes(elems * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.AxpySlice(0, scratch, local) // keep slices warm
		if err := exchange(local, global, scratch); err != nil {
			b.Fatal(err)
		}
	}
}

func exchange(local, global, scratch []float32) error {
	a := float32(0.2)
	for i := range scratch {
		scratch[i] = a * (local[i] - global[i])
	}
	for i := range local {
		local[i] -= scratch[i]
		global[i] += scratch[i]
	}
	return nil
}

// BenchmarkTrainStepMLP measures one forward+backward+update of the
// functional MLP replica.
func BenchmarkTrainStepMLP(b *testing.B) {
	net, err := shmcaffe.MLP("bench", 8, 16, 4)
	if err != nil {
		b.Fatal(err)
	}
	net.InitWeights(shmcaffe.NewRNG(1))
	solver := nn.NewSGDSolver(net, shmcaffe.DefaultSolverConfig())
	rng := tensor.NewRNG(2)
	x := tensor.New(8, 8)
	rng.FillNormal(x, 0, 1)
	labels := []int{0, 1, 2, 3, 0, 1, 2, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Step(x, labels); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainStepCNN measures one step of the convolutional replica
// (im2col + GEMM path).
func BenchmarkTrainStepCNN(b *testing.B) {
	net, err := shmcaffe.SmallCNN("bench", 1, 8, 4, 0)
	if err != nil {
		b.Fatal(err)
	}
	net.InitWeights(shmcaffe.NewRNG(1))
	solver := nn.NewSGDSolver(net, shmcaffe.DefaultSolverConfig())
	rng := tensor.NewRNG(2)
	x := tensor.New(4, 1, 8, 8)
	rng.FillNormal(x, 0, 1)
	labels := []int{0, 1, 2, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Step(x, labels); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGEMM measures the matmul kernel at a conv-lowering-like shape.
func BenchmarkGEMM(b *testing.B) {
	const m, k, n = 64, 128, 256
	a := tensor.New(m, k)
	bb := tensor.New(k, n)
	dst := tensor.New(m, n)
	rng := tensor.NewRNG(1)
	rng.FillNormal(a, 0, 1)
	rng.FillNormal(bb, 0, 1)
	b.SetBytes(int64(4 * (m*k + k*n + m*n)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tensor.MatMul(a, bb, dst); err != nil {
			b.Fatal(err)
		}
	}
}
