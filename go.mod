module shmcaffe

go 1.22
