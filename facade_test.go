package shmcaffe_test

import (
	"bytes"
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"testing"

	"shmcaffe"
)

// TestPublicAPIEndToEnd drives a complete SEASGD job through the public
// facade only: dataset → sharding → SMB store → workers → evaluation of
// the global weight → checkpoint round trip.
func TestPublicAPIEndToEnd(t *testing.T) {
	const workers = 3
	const seed = 99

	full, err := shmcaffe.NewGaussianDataset(shmcaffe.GaussianConfig{
		Classes: 4, PerClass: 50, Shape: []int{8}, Noise: 0.3, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	train, val, err := shmcaffe.SplitDataset(full, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	store := shmcaffe.NewStore()
	world, err := shmcaffe.NewWorld(workers)
	if err != nil {
		t.Fatal(err)
	}
	solver := shmcaffe.DefaultSolverConfig()
	solver.BaseLR = 0.05

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for r := 0; r < workers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[r] = func() error {
				net, err := shmcaffe.MLP(fmt.Sprintf("w%d", r), 8, 16, 4)
				if err != nil {
					return err
				}
				net.InitWeights(shmcaffe.NewRNG(seed))
				shard, err := shmcaffe.ShardDataset(train, r, workers)
				if err != nil {
					return err
				}
				loader, err := shmcaffe.NewLoader(shard, 8, seed+uint64(r))
				if err != nil {
					return err
				}
				comm, err := world.Comm(r)
				if err != nil {
					return err
				}
				w, err := shmcaffe.NewWorker(shmcaffe.WorkerConfig{
					Job:           "facade",
					Comm:          comm,
					Client:        shmcaffe.NewLocalClient(store),
					Net:           net,
					Solver:        solver,
					Elastic:       shmcaffe.DefaultElasticConfig(),
					Termination:   shmcaffe.StopOnMaster,
					MaxIterations: 40,
					Loader:        loader,
				})
				if err != nil {
					return err
				}
				_, err = w.Run()
				return err
			}()
		}()
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", r, err)
		}
	}

	// Evaluate Wg through the facade types.
	client := shmcaffe.NewLocalClient(store)
	key, err := client.Lookup(shmcaffe.SegmentNames{Job: "facade"}.Global())
	if err != nil {
		t.Fatal(err)
	}
	h, err := client.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	evalNet, err := shmcaffe.MLP("eval", 8, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, evalNet.NumParams()*4)
	if err := client.Read(h, 0, buf); err != nil {
		t.Fatal(err)
	}
	weights := decodeF32(buf)
	if err := evalNet.SetFlatWeights(weights); err != nil {
		t.Fatal(err)
	}
	loader, err := shmcaffe.NewLoader(val, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	b := loader.Next()
	_, acc, err := evalNet.Evaluate(b.X, b.Labels, 1)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.6 {
		t.Fatalf("facade end-to-end accuracy %.2f", acc)
	}

	// Checkpoint round trip through the facade.
	var snap bytes.Buffer
	if err := shmcaffe.SaveCheckpoint(&snap, evalNet); err != nil {
		t.Fatal(err)
	}
	restored, _ := shmcaffe.MLP("restored", 8, 16, 4)
	if _, err := shmcaffe.LoadCheckpoint(&snap, restored); err != nil {
		t.Fatal(err)
	}
}

func decodeF32(buf []byte) []float32 {
	out := make([]float32, len(buf)/4)
	for i := range out {
		bits := uint32(buf[4*i]) | uint32(buf[4*i+1])<<8 |
			uint32(buf[4*i+2])<<16 | uint32(buf[4*i+3])<<24
		out[i] = math.Float32frombits(bits)
	}
	return out
}

func TestPlatformsFacade(t *testing.T) {
	reg := shmcaffe.Platforms()
	if len(reg) != 5 {
		t.Fatalf("%d platforms", len(reg))
	}
	for name, tr := range reg {
		if tr.Name() == "" {
			t.Fatalf("platform %q unnamed", name)
		}
	}
}

func TestPerfmodelFacade(t *testing.T) {
	hw := shmcaffe.DefaultHardware()
	models := shmcaffe.PaperModels()
	if len(models) != 4 {
		t.Fatalf("%d models", len(models))
	}
	b, err := shmcaffe.SimulateSEASGD(models[0], 4, 20, hw)
	if err != nil {
		t.Fatal(err)
	}
	if b.Iter <= 0 {
		t.Fatal("empty breakdown")
	}
	bw, err := shmcaffe.SimulateSMBBandwidth(8, 1e9, 16e6, hw)
	if err != nil {
		t.Fatal(err)
	}
	if bw < 6e9 {
		t.Fatalf("bandwidth %v", bw)
	}
}

func TestParseNetSpecFacade(t *testing.T) {
	net, err := shmcaffe.ParseNetSpec("input: 4\ndense out=2\n")
	if err != nil {
		t.Fatal(err)
	}
	if net.NumParams() != 10 {
		t.Fatalf("params %d", net.NumParams())
	}
	if _, err := shmcaffe.ParseNetSpec("garbage"); err == nil {
		t.Fatal("expected parse error")
	}
}

// TestFacadeDataPipeline exercises the corpus, augmentation, and RDS
// surfaces of the public API together.
func TestFacadeDataPipeline(t *testing.T) {
	base, err := shmcaffe.NewPatternDataset(3, 20, 1, 8, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	aug, err := shmcaffe.NewAugmentedDataset(base, shmcaffe.AugmentConfig{FlipH: true, Noise: 0.05, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if aug.Len() != base.Len() {
		t.Fatal("augmentation changed length")
	}

	path := filepath.Join(t.TempDir(), "c.db")
	if err := shmcaffe.SaveCorpus(base, path); err != nil {
		t.Fatal(err)
	}
	db, err := shmcaffe.OpenCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Len() != base.Len() {
		t.Fatalf("corpus length %d", db.Len())
	}

	// RDS + SMB through the facade.
	ep, err := shmcaffe.ListenRDS("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	srv, err := shmcaffe.NewSMBServer(shmcaffe.NewStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go func() {
		for {
			conn, err := ep.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	clientEP, err := shmcaffe.ListenRDS("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer clientEP.Close()
	conn, err := clientEP.Dial(ep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	client := shmcaffe.NewSMBStreamClient(conn)
	defer client.Close()
	key, err := client.Create("facade-rds", 16)
	if err != nil {
		t.Fatal(err)
	}
	h, err := client.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Write(h, 0, []byte("0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if err := client.Read(h, 0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "0123456789abcdef" {
		t.Fatalf("rds round trip %q", buf)
	}
}
