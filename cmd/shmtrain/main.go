// Command shmtrain runs one distributed training job on any of the five
// platforms and prints its convergence curve.
//
// Usage:
//
//	shmtrain -platform shmcaffe-a -workers 8 -epochs 10
//	shmtrain -platform shmcaffe-h -workers 16 -group 4
//	shmtrain -platform shmcaffe-a -workers 4 -smb 127.0.0.1:7700   # external SMB server
//	shmtrain -platform caffe -workers 4 -model cnn
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"syscall"
	"time"

	"shmcaffe/internal/core"
	"shmcaffe/internal/dataset"
	"shmcaffe/internal/nn"
	"shmcaffe/internal/platform"
	"shmcaffe/internal/telemetry"
	"shmcaffe/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "shmtrain:", err)
		// Fatal exit: leave the flight recorder on disk so the post-mortem
		// (reconnects, fired deadlines, dead peers) survives the process.
		if path, derr := dumpFlightRecorder("shmtrain"); derr == nil {
			fmt.Fprintln(os.Stderr, "shmtrain: flight recorder dump:", path)
		}
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("shmtrain", flag.ContinueOnError)
	var (
		platformName = fs.String("platform", "shmcaffe-a", "caffe | caffe-mpi | mpicaffe | shmcaffe-a | shmcaffe-h")
		workers      = fs.Int("workers", 4, "total workers (GPUs)")
		group        = fs.Int("group", 0, "workers per node for shmcaffe-h (0 = all in one group)")
		epochs       = fs.Int("epochs", 8, "training epochs")
		batch        = fs.Int("batch", 8, "per-worker minibatch size")
		classes      = fs.Int("classes", 4, "synthetic classes")
		perClass     = fs.Int("per-class", 100, "samples per class")
		noise        = fs.Float64("noise", 0.8, "sample noise std")
		model        = fs.String("model", "mlp", "mlp | cnn | inception | resnet | vgg")
		lr           = fs.Float64("lr", 0.05, "base learning rate")
		movingRate   = fs.Float64("moving-rate", 0.2, "SEASGD moving_rate (alpha)")
		interval     = fs.Int("update-interval", 1, "SEASGD update_interval")
		seed         = fs.Uint64("seed", 42, "experiment seed")
		smbAddr      = fs.String("smb", "", "external SMB server address (shmcaffe platforms)")
		smbTransport = fs.String("smb-transport", "tcp", "SMB wire: tcp | tcp_sg | shm | auto | rds")
		smbTimeout   = fs.Duration("smb-timeout", 10*time.Second, "per-op SMB deadline for TCP clients (0 = no deadlines)")
		liveness     = fs.Duration("liveness-timeout", 0, "exclude workers silent this long from termination alignment (0 = fault-free protocol)")
		noOverlap    = fs.Bool("no-overlap", false, "multi-process mode: push global updates inline instead of overlapping them with compute (deterministic; the Fig. 6 ablation)")
		jobName      = fs.String("job", "", "SMB job name (needed when sharing an external server)")
		savePath     = fs.String("save", "", "write the trained model as a checkpoint file")
		dataPath     = fs.String("data", "", "train from a corpus database built by mkcorpus instead of generating data")
		netspecPath  = fs.String("netspec", "", "build the model from a netspec file instead of -model")
		rank         = fs.Int("rank", -1, "multi-process mode: this process's rank (requires -world and -smb)")
		world        = fs.Int("world", 0, "multi-process mode: total process count")
		telAddr      = fs.String("telemetry", "", "serve Prometheus /metrics and /debug/pprof on this HTTP address (e.g. 127.0.0.1:0)")
		traceOut     = fs.String("trace-out", "", "write a Chrome trace_event JSON file of the SEASGD phase spans at exit")
		telLinger    = fs.Duration("telemetry-linger", 0, "keep the telemetry endpoint up this long after training ends")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The flag speaks operator language (0 = off); platform.Config speaks
	// library language (0 = default, negative = off).
	opTimeout := *smbTimeout
	if opTimeout == 0 {
		opTimeout = -1
	}

	sink, err := startTelemetry(out, *telAddr, *traceOut, *telLinger)
	if err != nil {
		return err
	}
	// SIGQUIT dumps the flight recorder before the runtime's stack dump.
	stopDump := telemetry.DumpEventsOnSignal(flightDumpPath("shmtrain"),
		func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "shmtrain: "+format+"\n", args...)
		}, syscall.SIGQUIT)
	defer stopDump()
	// finish writes the trace and lingers on every exit path; a finish
	// failure surfaces only when training itself succeeded.
	defer func() {
		if ferr := sink.finish(); ferr != nil && err == nil {
			err = ferr
		}
	}()

	if *rank >= 0 {
		// Multi-process mode: this process is ONE SEASGD worker; the SMB
		// server provides both the parameter buffer and the rendezvous
		// (core.SetupBuffersPolling). Start one shmtrain per machine.
		if *smbAddr == "" || *world < 1 {
			return fmt.Errorf("multi-process mode needs -smb and -world")
		}
		job := *jobName
		if job == "" {
			job = "mpjob"
		}
		return runSingleWorker(out, singleWorkerOpts{
			rank: *rank, world: *world, smbAddr: *smbAddr, transport: *smbTransport,
			job: job, epochs: *epochs, batch: *batch,
			classes: *classes, perClass: *perClass, noise: *noise,
			lr: *lr, movingRate: *movingRate, interval: *interval, seed: *seed,
			opTimeout: opTimeout, liveness: *liveness, noOverlap: *noOverlap,
			tel: sink.trainer(), reg: sink.registry(),
		})
	}

	trainer, ok := platform.Registry()[*platformName]
	if !ok {
		return fmt.Errorf("unknown platform %q", *platformName)
	}

	var (
		full dataset.Dataset
		mdl  platform.ModelBuilder
	)
	if *netspecPath != "" {
		src, err := os.ReadFile(*netspecPath)
		if err != nil {
			return err
		}
		spec := string(src)
		// Validate once up front so errors carry the file context.
		if _, err := nn.ParseNetSpec(spec); err != nil {
			return fmt.Errorf("%s: %w", *netspecPath, err)
		}
		mdl = func(string) (*nn.Network, error) { return nn.ParseNetSpec(spec) }
	}
	nClasses := *classes
	if *dataPath != "" {
		db, err := dataset.OpenDB(*dataPath)
		if err != nil {
			return err
		}
		defer db.Close()
		full = db
		nClasses = db.NumClasses()
		shape := db.SampleShape()
		switch {
		case mdl != nil: // -netspec already chose the model
		case len(shape) == 1:
			features := shape[0]
			mdl = func(name string) (*nn.Network, error) { return nn.MLP(name, features, 16, nClasses) }
		case len(shape) == 3:
			ch, size := shape[0], shape[1]
			switch *model {
			case "inception":
				mdl = func(name string) (*nn.Network, error) { return nn.MiniInception(name, ch, size, nClasses) }
			case "resnet":
				mdl = func(name string) (*nn.Network, error) { return nn.MiniResNet(name, ch, size, nClasses) }
			case "vgg":
				mdl = func(name string) (*nn.Network, error) { return nn.MiniVGG(name, ch, size, nClasses) }
			default:
				mdl = func(name string) (*nn.Network, error) { return nn.SmallCNN(name, ch, size, nClasses, 0) }
			}
		default:
			return fmt.Errorf("corpus sample shape %v unsupported", shape)
		}
	}
	if full != nil {
		train, val, err := dataset.Split(full, 0.8)
		if err != nil {
			return err
		}
		return train2(out, trainer, mdl, train, val, trainOpts{
			workers: *workers, group: *group, epochs: *epochs, batch: *batch,
			lr: *lr, movingRate: *movingRate, interval: *interval, seed: *seed,
			smbAddr: *smbAddr, smbTransport: *smbTransport, jobName: *jobName, savePath: *savePath,
			smbTimeout: opTimeout, liveness: *liveness,
			tel: sink.trainer(), reg: sink.registry(),
		})
	}
	switch *model {
	case "mlp":
		full, err = dataset.NewGaussian(dataset.GaussianConfig{
			Classes: *classes, PerClass: *perClass, Shape: []int{8},
			Noise: *noise, Seed: *seed,
		})
		if mdl == nil {
			mdl = func(name string) (*nn.Network, error) { return nn.MLP(name, 8, 16, nClasses) }
		}
	case "cnn", "inception", "resnet", "vgg":
		full, err = dataset.NewPatternImages(*classes, *perClass, 1, 8, *noise, *seed)
		if mdl == nil {
			kind := *model
			mdl = func(name string) (*nn.Network, error) {
				switch kind {
				case "inception":
					return nn.MiniInception(name, 1, 8, nClasses)
				case "resnet":
					return nn.MiniResNet(name, 1, 8, nClasses)
				case "vgg":
					return nn.MiniVGG(name, 1, 8, nClasses)
				default:
					return nn.SmallCNN(name, 1, 8, nClasses, 0)
				}
			}
		}
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
	if err != nil {
		return err
	}
	train, val, err := dataset.Split(full, 0.8)
	if err != nil {
		return err
	}
	return train2(out, trainer, mdl, train, val, trainOpts{
		workers: *workers, group: *group, epochs: *epochs, batch: *batch,
		lr: *lr, movingRate: *movingRate, interval: *interval, seed: *seed,
		smbAddr: *smbAddr, smbTransport: *smbTransport, jobName: *jobName, savePath: *savePath,
		smbTimeout: opTimeout, liveness: *liveness,
		tel: sink.trainer(), reg: sink.registry(),
	})
}

// trainOpts carries the run parameters into the shared training driver.
type trainOpts struct {
	workers, group, epochs, batch, interval  int
	lr, movingRate                           float64
	seed                                     uint64
	smbAddr, smbTransport, jobName, savePath string
	smbTimeout, liveness                     time.Duration
	tel                                      *telemetry.Trainer
	reg                                      *telemetry.Registry
}

// train2 runs the configured job and renders its curve and summary.
func train2(out io.Writer, trainer platform.Trainer, mdl platform.ModelBuilder,
	train, val dataset.Dataset, o trainOpts) error {

	solver := nn.DefaultSolverConfig()
	solver.BaseLR = o.lr
	cfg := platform.Config{
		Workers:         o.workers,
		GroupSize:       o.group,
		Model:           mdl,
		Train:           train,
		Val:             val,
		BatchSize:       o.batch,
		Epochs:          o.epochs,
		Solver:          solver,
		Elastic:         core.ElasticConfig{MovingRate: o.movingRate, UpdateInterval: o.interval},
		Seed:            o.seed,
		SMBAddr:         o.smbAddr,
		SMBTransport:    o.smbTransport,
		Job:             o.jobName,
		SMBOpTimeout:    o.smbTimeout,
		LivenessTimeout: o.liveness,
		Telemetry:       o.tel,
		Metrics:         o.reg,
	}

	fmt.Fprintf(out, "training %s: %d workers, %d epochs, %d samples\n\n",
		trainer.Name(), o.workers, o.epochs, train.Len())
	res, err := trainer.Train(cfg)
	if err != nil {
		return err
	}

	t := trace.New(fmt.Sprintf("%s convergence (%d workers)", res.Platform, res.Workers),
		"Epoch", "Train loss", "Val loss", "Accuracy")
	for _, p := range res.Curve {
		t.Add(trace.Itoa(p.Epoch), trace.F2(p.TrainLoss), trace.F2(p.ValLoss), trace.Pct(p.Accuracy))
	}
	if err := t.Render(out); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nfinal: accuracy %s, val loss %.3f, %d iterations/worker\n",
		trace.Pct(res.FinalAcc), res.FinalLoss, res.Iterations)

	if o.savePath != "" {
		if len(res.FinalWeights) == 0 {
			return fmt.Errorf("no final weights to save")
		}
		snapNet, err := mdl("snapshot")
		if err != nil {
			return err
		}
		if err := snapNet.SetFlatWeights(res.FinalWeights); err != nil {
			return err
		}
		f, err := os.Create(o.savePath)
		if err != nil {
			return err
		}
		if err := nn.SaveCheckpoint(f, snapNet); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "checkpoint written to %s\n", o.savePath)
	}
	return nil
}
