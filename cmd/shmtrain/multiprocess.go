package main

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"time"

	"shmcaffe/internal/core"
	"shmcaffe/internal/dataset"
	"shmcaffe/internal/nn"
	"shmcaffe/internal/rds"
	"shmcaffe/internal/smb"
	"shmcaffe/internal/telemetry"
	"shmcaffe/internal/tensor"
	"shmcaffe/internal/trace"
)

// singleWorkerOpts parameterizes one multi-process SEASGD worker.
type singleWorkerOpts struct {
	rank, world        int
	smbAddr, transport string
	job                string
	epochs, batch      int
	classes, perClass  int
	interval           int
	noise              float64
	lr, movingRate     float64
	seed               uint64
	opTimeout          time.Duration // per-op SMB deadline (negative = none)
	liveness           time.Duration // crash-aware termination (0 = off)
	noOverlap          bool          // inline pushes: deterministic given one worker

	tel *telemetry.Trainer
	reg *telemetry.Registry
}

// runSingleWorker runs this process's share of a multi-process SEASGD job.
// Every participating process must use identical -seed/-classes/-per-class
// so they regenerate the same corpus and shard it disjointly.
func runSingleWorker(out io.Writer, o singleWorkerOpts) error {
	client, cleanup, negotiated, err := dialSMB(o.smbAddr, o.transport, o.rank, o.opTimeout)
	if err != nil {
		return err
	}
	defer cleanup()
	if o.reg != nil {
		if ic, ok := client.(interface{ Instrument(*telemetry.Registry) }); ok {
			ic.Instrument(o.reg)
		}
	}
	if o.tel != nil {
		// Negotiate wire-level trace propagation so the worker's pushes
		// carry trace contexts; an old server declines and nothing changes.
		if tc, ok := client.(interface{ EnableTrace() }); ok {
			tc.EnableTrace()
		}
	}

	full, err := dataset.NewGaussian(dataset.GaussianConfig{
		Classes: o.classes, PerClass: o.perClass, Shape: []int{8},
		Noise: o.noise, Seed: o.seed,
	})
	if err != nil {
		return err
	}
	train, val, err := dataset.Split(full, 0.8)
	if err != nil {
		return err
	}
	shard, err := dataset.NewShard(train, o.rank, o.world)
	if err != nil {
		return err
	}
	loader, err := dataset.NewLoader(shard, o.batch, o.seed+uint64(o.rank)*7919)
	if err != nil {
		return err
	}
	net, err := nn.MLP(fmt.Sprintf("w%d", o.rank), 8, 16, o.classes)
	if err != nil {
		return err
	}
	net.InitWeights(tensor.NewRNG(o.seed))

	solver := nn.DefaultSolverConfig()
	solver.BaseLR = o.lr
	itersPerEpoch := train.Len() / (o.batch * o.world)
	if itersPerEpoch < 1 {
		itersPerEpoch = 1
	}
	cfg := core.WorkerConfig{
		Job:             o.job,
		Client:          client,
		Net:             net,
		Solver:          solver,
		Elastic:         core.ElasticConfig{MovingRate: o.movingRate, UpdateInterval: o.interval},
		Termination:     core.StopOnMaster,
		MaxIterations:   itersPerEpoch * o.epochs,
		Loader:          loader,
		Telemetry:       o.tel,
		LivenessTimeout: o.liveness,
		DisableOverlap:  o.noOverlap,
	}
	fmt.Fprintf(out, "worker %d/%d joining job %q on %s (%s)\n",
		o.rank, o.world, o.job, o.smbAddr, negotiated)
	w, err := core.NewWorkerPolling(cfg, o.rank, o.world, core.BootstrapOptions{})
	if err != nil {
		return err
	}
	stats, err := w.Run()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "worker %d finished: %d iterations, %d pushes, stopped by %q\n",
		o.rank, stats.Iterations, stats.Pushes, stats.StoppedBy)

	// The master evaluates the final global weight.
	if o.rank == 0 {
		global := make([]float32, net.NumParams())
		if err := w.Buffers().ReadGlobal(global); err != nil {
			return err
		}
		// Content hash of the final Wg bytes: lets a harness assert that two
		// runs with the same seed converged bitwise-identically regardless
		// of which transport carried the pushes (check.sh shm_smoke).
		fmt.Fprintf(out, "Wg sha256: %x\n", sha256.Sum256(tensor.Float32Bytes(global)))
		evalNet, err := nn.MLP("eval", 8, 16, o.classes)
		if err != nil {
			return err
		}
		if err := evalNet.SetFlatWeights(global); err != nil {
			return err
		}
		vloader, err := dataset.NewLoader(val, 64, o.seed)
		if err != nil {
			return err
		}
		b := vloader.Next()
		loss, acc, err := evalNet.Evaluate(b.X, b.Labels, 1)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "global weight Wg: val loss %.3f, accuracy %s\n", loss, trace.Pct(acc))
	}
	return nil
}

// dialSMB opens one SMB connection over the selected transport and reports
// what was actually negotiated. The TCP paths get the fault-tolerant
// supervised client: per-op deadlines plus reconnect with sequence-stamped
// pushes, keyed by rank so the server-side dedup table distinguishes
// processes. "shm" maps segments of a co-located server, "auto" negotiates
// shm and falls back to tcp. RDS stays a bare stream client — its endpoint
// cannot be re-dialed without tearing down the local socket.
func dialSMB(addr, transport string, rank int, opTimeout time.Duration) (smb.Client, func(), string, error) {
	opts := smb.DialOptions{
		Addr:      addr,
		OpTimeout: opTimeout,
		Seed:      uint64(rank)*7919 + 1,
		ClientID:  uint64(rank + 1),
	}
	probe := func(c smb.Client) error {
		// Supervised clients dial lazily; probe now so a bad address fails
		// here instead of deep inside the bootstrap key exchange.
		if _, err := c.Lookup("\x00reachability-probe"); err != nil && !errors.Is(err, smb.ErrUnknownSegment) {
			c.Close()
			return err
		}
		return nil
	}
	switch transport {
	case "", "tcp", "tcp_sg", "shm":
		name := transport
		if name == "" {
			name = "tcp"
		}
		c, err := smb.DialTransport(name, opts)
		if err != nil {
			return nil, nil, "", err
		}
		if err := probe(c); err != nil {
			return nil, nil, "", err
		}
		return c, func() { c.Close() }, name, nil
	case "auto":
		c, name, err := smb.DialAuto(opts)
		if err != nil {
			return nil, nil, "", err
		}
		if err := probe(c); err != nil {
			return nil, nil, "", err
		}
		return c, func() { c.Close() }, name + ", auto-negotiated", nil
	case "rds":
		ep, err := rds.ListenUDP("127.0.0.1:0")
		if err != nil {
			return nil, nil, "", err
		}
		conn, err := ep.Dial(addr)
		if err != nil {
			ep.Close()
			return nil, nil, "", err
		}
		c := smb.NewStreamClient(conn)
		return c, func() { c.Close(); ep.Close() }, "rds", nil
	default:
		return nil, nil, "", fmt.Errorf("unknown SMB transport %q", transport)
	}
}
