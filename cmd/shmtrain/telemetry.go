package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"time"

	"shmcaffe/internal/telemetry"
)

// promContentType is the Prometheus text exposition format version the
// registry writes.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// telemetrySink bundles the run's observability surface: the metric
// registry and phase tracer handed to the training platform, the HTTP
// server exposing /metrics and pprof, and the trace file written at exit.
type telemetrySink struct {
	Trainer  *telemetry.Trainer
	reg      *telemetry.Registry
	srv      *http.Server
	addr     string
	traceOut string
	linger   time.Duration
	out      io.Writer
}

// startTelemetry wires up the observability surface. Either argument being
// set enables collection; httpAddr == "" skips the HTTP server and
// traceOut == "" skips the trace file. Returns nil (a no-op sink — the
// telemetry package's nil receivers record nothing) when both are empty.
func startTelemetry(out io.Writer, httpAddr, traceOut string, linger time.Duration) (*telemetrySink, error) {
	if httpAddr == "" && traceOut == "" {
		return nil, nil
	}
	reg := telemetry.NewRegistry()
	// The fleet aggregator (shmtop) estimates this node's clock offset as
	// reported wallclock minus the scrape midpoint — the HTTP analogue of
	// the control segment's per-worker clock slots.
	reg.GaugeFunc("shm_wallclock_unix_nano",
		"this process's wall clock at scrape time (UnixNano)",
		func() float64 { return float64(time.Now().UnixNano()) })
	s := &telemetrySink{
		Trainer:  telemetry.NewTrainer(reg, 0),
		reg:      reg,
		traceOut: traceOut,
		linger:   linger,
		out:      out,
	}
	if httpAddr == "" {
		return s, nil
	}
	ln, err := net.Listen("tcp", httpAddr)
	if err != nil {
		return nil, fmt.Errorf("telemetry listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", promContentType)
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = telemetry.FlightRecorder().WriteJSON(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = s.Trainer.Tracer.WriteChromeTrace(w)
	})
	// The standard pprof handlers; Index serves the /debug/pprof/<profile>
	// family (heap, goroutine, block, mutex, ...) itself.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.addr = ln.Addr().String()
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln) //lint:ignore goleak joined by srv.Close in finish
	fmt.Fprintf(out, "telemetry listening on http://%s (metrics at /metrics, flight recorder at /debug/events, trace at /debug/trace, pprof at /debug/pprof/)\n", s.addr)
	return s, nil
}

// flightDumpPath names the per-process flight-recorder dump file.
func flightDumpPath(prefix string) string {
	return filepath.Join(os.TempDir(), fmt.Sprintf("%s-%d-events.txt", prefix, os.Getpid()))
}

// dumpFlightRecorder writes the process-global flight recorder to the
// per-process dump file and returns its path.
func dumpFlightRecorder(prefix string) (string, error) {
	path := flightDumpPath(prefix)
	if err := telemetry.DumpEvents(path); err != nil {
		return "", err
	}
	return path, nil
}

// trainer returns the phase trainer to hand to the platform; nil-safe.
func (s *telemetrySink) trainer() *telemetry.Trainer {
	if s == nil {
		return nil
	}
	return s.Trainer
}

// registry returns the metric registry for data-path instruments; nil-safe.
func (s *telemetrySink) registry() *telemetry.Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// finish writes the trace file, keeps the scrape endpoint up for the linger
// window, and shuts the server down. Call after training completes.
func (s *telemetrySink) finish() error {
	if s == nil {
		return nil
	}
	if s.traceOut != "" {
		if err := s.Trainer.Tracer.WriteChromeTraceFile(s.traceOut); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
		fmt.Fprintf(s.out, "trace written to %s (%d spans, %d dropped)\n",
			s.traceOut, s.Trainer.Tracer.Len(), s.Trainer.Tracer.Dropped())
	}
	if s.srv != nil {
		if s.linger > 0 {
			fmt.Fprintf(s.out, "telemetry lingering %s for a final scrape\n", s.linger)
			time.Sleep(s.linger)
		}
		return s.srv.Close()
	}
	return nil
}
