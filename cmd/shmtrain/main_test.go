package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"shmcaffe/internal/nn"
)

func TestRunAllPlatformsSmall(t *testing.T) {
	for _, platform := range []string{"caffe", "caffe-mpi", "mpicaffe", "shmcaffe-a", "shmcaffe-h"} {
		platform := platform
		t.Run(platform, func(t *testing.T) {
			var out bytes.Buffer
			args := []string{
				"-platform", platform, "-workers", "2", "-epochs", "2",
				"-per-class", "30", "-noise", "0.3",
			}
			if err := run(args, &out); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out.String(), "final: accuracy") {
				t.Fatalf("missing summary: %q", out.String())
			}
		})
	}
}

func TestRunModels(t *testing.T) {
	for _, model := range []string{"mlp", "cnn", "inception", "resnet", "vgg"} {
		model := model
		t.Run(model, func(t *testing.T) {
			var out bytes.Buffer
			args := []string{
				"-platform", "caffe", "-workers", "1", "-epochs", "1",
				"-per-class", "20", "-model", model,
			}
			if err := run(args, &out); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunSavesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	var out bytes.Buffer
	args := []string{
		"-platform", "shmcaffe-a", "-workers", "2", "-epochs", "2",
		"-per-class", "30", "-save", path,
	}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	net, err := nn.MLP("restore", 8, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nn.LoadCheckpoint(f, net); err != nil {
		t.Fatalf("checkpoint unreadable: %v", err)
	}
}

func TestRunUnknownPlatformAndModel(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-platform", "tensorflow"}, &out); err == nil {
		t.Fatal("expected error for unknown platform")
	}
	if err := run([]string{"-model", "transformer"}, &out); err == nil {
		t.Fatal("expected error for unknown model")
	}
}
