package main

import (
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"shmcaffe/internal/telemetry"
)

// syncBuffer is an io.Writer the test can poll while run() writes to it
// from another goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRe = regexp.MustCompile(`telemetry listening on http://(\S+)`)

// TestTelemetryEndToEnd is the issue's acceptance criterion: a two-worker
// -telemetry run serves a Prometheus-parseable /metrics carrying the SMB
// accumulate-latency histogram and the T1 staleness histogram, and emits a
// Chrome trace with every Fig. 6 phase.
func TestTelemetryEndToEnd(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	var buf syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-platform", "shmcaffe-a", "-workers", "2", "-epochs", "2",
			"-per-class", "40",
			"-telemetry", "127.0.0.1:0",
			"-trace-out", tracePath,
			"-telemetry-linger", "3s",
		}, &buf)
	}()

	// Find the bound address in the log.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no telemetry URL in output:\n%s", buf.String())
		}
		if m := listenRe.FindStringSubmatch(buf.String()); m != nil {
			addr = m[1]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Scrape until the run has recorded both families (training races the
	// scrape; the linger window guarantees a final complete exposition).
	var out string
	for {
		if time.Now().After(deadline) {
			t.Fatalf("metrics never complete; last scrape:\n%s", out)
		}
		resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
		if err != nil {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		if ct := resp.Header.Get("Content-Type"); ct != promContentType {
			t.Fatalf("Content-Type %q", ct)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		out = string(body)
		if strings.Contains(out, "smb_accumulate_seconds_bucket") &&
			strings.Contains(out, "seasgd_t1_staleness_iterations_count") &&
			strings.Contains(out, `seasgd_phase_seconds_count{phase="T.A3"}`) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// pprof index answers on the same server.
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status %d", resp.StatusCode)
	}

	if err := <-done; err != nil {
		t.Fatal(err)
	}

	events, err := telemetry.LoadTraceFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, ev := range events {
		if ev.Ph == "X" {
			seen[ev.Name] = true
		}
	}
	// Worker phases only: the srv.* phases live in the SMB server's tracer,
	// not in an in-process training run's.
	for p := telemetry.Phase(0); p <= telemetry.PhaseTA5; p++ {
		if name := p.String(); !seen[name] {
			t.Errorf("trace missing %s spans", name)
		}
	}
}
