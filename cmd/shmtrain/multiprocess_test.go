package main

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"shmcaffe/internal/rds"
	"shmcaffe/internal/smb"
)

// TestMultiProcessMode simulates three separate shmtrain processes joining
// one job through a real TCP SMB server: each invocation of run() is what
// one OS process would execute.
func TestMultiProcessMode(t *testing.T) {
	srv, err := smb.NewServer(smb.NewStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve()
	}()
	defer func() {
		srv.Close()
		<-done
	}()

	const world = 3
	outs := make([]bytes.Buffer, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[r] = run([]string{
				"-rank", fmt.Sprint(r),
				"-world", fmt.Sprint(world),
				"-smb", srv.Addr(),
				"-job", "mp-test",
				"-epochs", "3",
				"-per-class", "60",
				"-noise", "0.3",
			}, &outs[r])
		}()
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v\n%s", r, err, outs[r].String())
		}
	}
	if !strings.Contains(outs[0].String(), "global weight Wg") {
		t.Fatalf("master output missing evaluation: %q", outs[0].String())
	}
	for r := range outs {
		if !strings.Contains(outs[r].String(), "finished") {
			t.Fatalf("rank %d output %q", r, outs[r].String())
		}
	}
	// The server holds the whole segment family.
	if _, err := srv.Store().Lookup(smb.SegmentNames{Job: "mp-test"}.Global()); err != nil {
		t.Fatal(err)
	}
}

func TestMultiProcessModeValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-rank", "0"}, &out); err == nil {
		t.Fatal("expected error without -smb/-world")
	}
}

// TestMultiProcessModeOverRDS runs the multi-process rendezvous across the
// reliable datagram transport.
func TestMultiProcessModeOverRDS(t *testing.T) {
	ep, err := rds.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	srv, err := smb.NewServer(smb.NewStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go func() {
		for {
			conn, err := ep.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()

	const world = 2
	outs := make([]bytes.Buffer, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[r] = run([]string{
				"-rank", fmt.Sprint(r),
				"-world", fmt.Sprint(world),
				"-smb", ep.Addr(),
				"-smb-transport", "rds",
				"-job", "mp-rds",
				"-epochs", "2",
				"-per-class", "40",
				"-noise", "0.3",
			}, &outs[r])
		}()
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v\n%s", r, err, outs[r].String())
		}
	}
	if srv.Store().Stats().Accumulates == 0 {
		t.Fatal("no accumulates crossed RDS")
	}
}
