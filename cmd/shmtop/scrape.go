package main

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"time"

	"shmcaffe/internal/telemetry"
)

// nodeSpec is one -nodes entry: a metrics address with an optional display
// name ("name=host:port").
type nodeSpec struct {
	Name string
	Addr string
}

// parseNodes splits the comma-separated -nodes value into specs.
func parseNodes(list string) ([]nodeSpec, error) {
	var out []nodeSpec
	for _, raw := range strings.Split(list, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		spec := nodeSpec{Name: raw, Addr: raw}
		if i := strings.IndexByte(raw, '='); i >= 0 {
			spec.Name, spec.Addr = raw[:i], raw[i+1:]
			if spec.Name == "" || spec.Addr == "" {
				return nil, fmt.Errorf("malformed node %q (want name=host:port)", raw)
			}
		}
		out = append(out, spec)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no nodes given")
	}
	return out, nil
}

// nodeStatus is one node's scraped state — the row of the shmtop table and
// the per-node record of the snapshot report.
type nodeStatus struct {
	Name    string `json:"name"`
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
	Err     string `json:"error,omitempty"`
	// Role classifies the process by the metric families it exports:
	// "server" (smb store families) or "worker" (seasgd families);
	// "unknown" when neither is present.
	Role string `json:"role"`

	// ClockOffsetNano estimates the node's wall clock minus the
	// aggregator's, sampled as reported shm_wallclock_unix_nano minus the
	// scrape midpoint. HasClock is false when the node predates the gauge
	// (offset then defaults to zero — its spans merge unshifted).
	ClockOffsetNano int64 `json:"clock_offset_nano"`
	HasClock        bool  `json:"has_clock"`
	ScrapeRTTNano   int64 `json:"scrape_rtt_nano"`

	Connections int64 `json:"connections"`
	ConnErrors  int64 `json:"conn_errors"`
	ReapedSeqs  int64 `json:"reaped_sequences"`
	Accumulates int64 `json:"accumulates"`
	Iterations  int64 `json:"iterations"`
	Pushes      int64 `json:"pushes"`
	Reconnects  int64 `json:"reconnects"`

	// AccP50/AccP99 are the server-side accumulate latency quantiles in
	// seconds (NaN-free: zero when the histogram is absent or empty).
	AccP50 float64 `json:"acc_p50_seconds"`
	AccP99 float64 `json:"acc_p99_seconds"`

	// Flight-recorder digest from /debug/events.
	Events    int    `json:"events"`
	LastEvent string `json:"last_event,omitempty"`
}

// scraper fetches node state over HTTP.
type scraper struct {
	client *http.Client
	now    func() time.Time
}

func newScraper(timeout time.Duration) *scraper {
	return &scraper{client: &http.Client{Timeout: timeout}, now: time.Now}
}

// get fetches one path from addr, returning the body.
func (s *scraper) get(addr, path string) ([]byte, error) {
	resp, err := s.client.Get("http://" + addr + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s%s: status %d", addr, path, resp.StatusCode)
	}
	return body, nil
}

// scrape collects one node's status. A failed metrics fetch marks the node
// unhealthy but still returns a row — a down node must stay visible.
func (s *scraper) scrape(spec nodeSpec) nodeStatus {
	st := nodeStatus{Name: spec.Name, Addr: spec.Addr, Role: "unknown"}

	t0 := s.now()
	body, err := s.get(spec.Addr, "/metrics")
	t1 := s.now()
	if err != nil {
		st.Err = err.Error()
		return st
	}
	st.ScrapeRTTNano = t1.Sub(t0).Nanoseconds()
	samples, err := telemetry.ParsePrometheus(strings.NewReader(string(body)))
	if err != nil {
		st.Err = err.Error()
		return st
	}

	// NTP-style one-shot offset estimate: the remote gauge was rendered
	// somewhere inside [t0, t1]; the midpoint is the minimum-error guess,
	// so |error| ≤ RTT/2 plus the gauge's float64 granularity (~256ns).
	if wall, ok := telemetry.SampleValue(samples, "shm_wallclock_unix_nano", nil); ok {
		mid := t0.UnixNano() + st.ScrapeRTTNano/2
		st.ClockOffsetNano = int64(wall) - mid
		st.HasClock = true
	}

	counter := func(name string) int64 {
		v, _ := telemetry.SampleValue(samples, name, nil)
		return int64(v)
	}
	if _, ok := telemetry.SampleValue(samples, "smb_segments", nil); ok {
		st.Role = "server"
	} else if _, ok := telemetry.SampleValue(samples, "seasgd_iterations_total", nil); ok {
		st.Role = "worker"
	}
	st.Connections = counter("smb_server_connections")
	st.ConnErrors = counter("smb_server_conn_errors_total")
	st.ReapedSeqs = counter("smb_server_reaped_sequences_total")
	st.Accumulates = counter("smb_accumulates_total")
	st.Iterations = counter("seasgd_iterations_total")
	st.Pushes = counter("seasgd_pushes_total")
	st.Reconnects = counter("smb_supervised_reconnects_total")
	if h, ok := telemetry.ExtractHistogram(samples, "smb_accumulate_seconds", nil); ok {
		st.AccP50 = finite(h.Quantile(0.50))
		st.AccP99 = finite(h.Quantile(0.99))
	}

	// Liveness probe: the server answering /healthz proves its backend is
	// not wedged, not just that HTTP is up.
	if _, err := s.get(spec.Addr, "/healthz"); err == nil {
		st.Healthy = true
	} else {
		st.Err = err.Error()
	}

	// Flight-recorder digest (best-effort: older nodes lack the endpoint).
	if evs, err := s.events(spec.Addr); err == nil {
		st.Events = len(evs)
		if n := len(evs); n > 0 {
			st.LastEvent = evs[n-1].Kind
		}
	}
	return st
}

// scrapedEvent is the /debug/events wire form shmtop consumes.
type scrapedEvent struct {
	Time string           `json:"time"`
	Kind string           `json:"kind"`
	Args map[string]int64 `json:"args,omitempty"`
}

// events fetches and decodes a node's flight recorder.
func (s *scraper) events(addr string) ([]scrapedEvent, error) {
	body, err := s.get(addr, "/debug/events")
	if err != nil {
		return nil, err
	}
	return decodeEvents(body)
}

// trace fetches and parses a node's Chrome trace export.
func (s *scraper) trace(addr string) ([]telemetry.TraceEvent, error) {
	body, err := s.get(addr, "/debug/trace")
	if err != nil {
		return nil, err
	}
	return telemetry.ParseChromeTrace(body)
}

// finite maps NaN/Inf (empty histogram) to zero for display and JSON.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}
