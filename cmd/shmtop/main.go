// Command shmtop is the fleet aggregator: it scrapes the observability
// surface (/metrics, /healthz, /debug/events, /debug/trace) of every node in
// a ShmCaffe deployment — SMB servers and training workers alike — and
// presents one cluster-wide view.
//
// Live mode renders a refreshing status table; -snapshot writes a one-shot
// report (JSON, or Markdown when the path ends in .md); -trace-out merges
// every node's Chrome trace into a single cross-node timeline, shifting each
// node's spans by a per-node clock offset estimated from the
// shm_wallclock_unix_nano gauge (offset ≈ reported clock − scrape midpoint,
// error bounded by RTT/2). Spans that crossed the wire via trace propagation
// appear as parent/child chains spanning two processes.
//
// Usage:
//
//	shmtop -nodes server=127.0.0.1:7780,worker0=127.0.0.1:7781 -interval 2s
//	shmtop -nodes 127.0.0.1:7780,127.0.0.1:7781 -snapshot fleet.md -trace-out fleet-trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"shmcaffe/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "shmtop:", err)
		os.Exit(1)
	}
}

func run(argv []string, out io.Writer) error {
	fs := flag.NewFlagSet("shmtop", flag.ContinueOnError)
	var (
		nodesFlag = fs.String("nodes", "", "comma-separated node metrics addresses (host:port or name=host:port)")
		interval  = fs.Duration("interval", 2*time.Second, "live mode refresh interval")
		count     = fs.Int("count", 0, "live mode: stop after this many refreshes (0 = until interrupted)")
		snapshot  = fs.String("snapshot", "", "write a one-shot fleet report to this path (.md = Markdown, else JSON) and exit")
		traceOut  = fs.String("trace-out", "", "write the merged cross-node Chrome trace to this path")
		timeout   = fs.Duration("timeout", 3*time.Second, "per-request scrape timeout")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	specs, err := parseNodes(*nodesFlag)
	if err != nil {
		return fmt.Errorf("-nodes: %w", err)
	}
	s := newScraper(*timeout)

	if *snapshot != "" || *traceOut != "" {
		return snapshotOnce(s, specs, *snapshot, *traceOut, out)
	}
	return live(s, specs, *interval, *count, out)
}

// snapshotOnce takes one fleet scrape and writes the requested artifacts.
func snapshotOnce(s *scraper, specs []nodeSpec, snapshot, traceOut string, out io.Writer) error {
	rep, merged := collect(s, specs)
	if traceOut != "" {
		if err := telemetry.WriteMergedTraceFile(traceOut, merged); err != nil {
			return err
		}
		fmt.Fprintf(out, "merged trace (%d spans, %d cross-node chains) written to %s\n",
			rep.MergedSpans, rep.CrossNodeChains, traceOut)
	}
	if snapshot == "" {
		return nil
	}
	f, err := os.Create(snapshot)
	if err != nil {
		return err
	}
	if strings.HasSuffix(snapshot, ".md") {
		err = writeMarkdownReport(f, rep)
	} else {
		err = writeJSONReport(f, rep)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		fmt.Fprintf(out, "snapshot written to %s\n", snapshot)
	}
	return err
}

// live renders the fleet table every interval. Traces are not fetched in
// live mode — per-refresh merging would hammer the nodes for no new signal.
func live(s *scraper, specs []nodeSpec, interval time.Duration, count int, out io.Writer) error {
	for i := 0; ; i++ {
		rep := report{TakenAt: time.Now()}
		for _, spec := range specs {
			rep.Nodes = append(rep.Nodes, s.scrape(spec))
		}
		if i > 0 {
			fmt.Fprintln(out)
		}
		if err := writeTable(out, rep); err != nil {
			return err
		}
		if count > 0 && i+1 >= count {
			return nil
		}
		time.Sleep(interval)
	}
}
