package main

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"shmcaffe/internal/telemetry"
	"shmcaffe/internal/trace"
)

// decodeEvents parses a /debug/events JSON payload.
func decodeEvents(body []byte) ([]scrapedEvent, error) {
	var evs []scrapedEvent
	if err := json.Unmarshal(body, &evs); err != nil {
		return nil, fmt.Errorf("decode /debug/events: %w", err)
	}
	return evs, nil
}

// report is the snapshot document: one scrape of the whole fleet plus the
// merged cross-node trace summary.
type report struct {
	TakenAt time.Time    `json:"taken_at"`
	Nodes   []nodeStatus `json:"nodes"`
	// MergedSpans counts the duration events in the offset-corrected fleet
	// trace; CrossNodeChains counts parent→child span links that cross
	// process boundaries within one trace ID — the proof that wire-level
	// propagation stitched a client push to its server-side handling.
	MergedSpans     int `json:"merged_spans"`
	CrossNodeChains int `json:"cross_node_chains"`
}

// collect scrapes every node and best-effort merges their traces into one
// fleet timeline, each node's spans shifted by its estimated clock offset.
func collect(s *scraper, specs []nodeSpec) (report, []telemetry.TraceEvent) {
	rep := report{TakenAt: time.Now()}
	var nodes []telemetry.NodeTrace
	for _, spec := range specs {
		st := s.scrape(spec)
		rep.Nodes = append(rep.Nodes, st)
		if evs, err := s.trace(spec.Addr); err == nil && len(evs) > 0 {
			nodes = append(nodes, telemetry.NodeTrace{
				Name:            st.Name,
				Events:          evs,
				ClockOffsetNano: st.ClockOffsetNano,
			})
		}
	}
	merged := telemetry.MergeTraces(nodes)
	for _, ev := range merged {
		if ev.Ph == "X" {
			rep.MergedSpans++
		}
	}
	rep.CrossNodeChains = telemetry.CrossNodeChains(merged)
	return rep, merged
}

// health renders the HEALTH cell.
func health(st nodeStatus) string {
	if st.Healthy {
		return "up"
	}
	return "DOWN"
}

// offsetCell renders the clock offset, or "-" for nodes without the gauge.
func offsetCell(st nodeStatus) string {
	if !st.HasClock {
		return "-"
	}
	return time.Duration(st.ClockOffsetNano).String()
}

// quantileCell renders a latency quantile ("-" when the histogram is
// absent). Sub-millisecond values keep Duration precision — an in-memory
// accumulate sits well under the 0.1 ms the Ms rendering would round to 0.
func quantileCell(v float64) string {
	if v == 0 {
		return "-"
	}
	d := time.Duration(v * float64(time.Second))
	if d < time.Millisecond {
		return d.String()
	}
	return trace.Ms(d)
}

// writeTable renders the fleet as the live-mode table.
func writeTable(w io.Writer, rep report) error {
	tbl := trace.New(fmt.Sprintf("shmtop — %d nodes @ %s",
		len(rep.Nodes), rep.TakenAt.Format("15:04:05")),
		"NODE", "ROLE", "HEALTH", "OFFSET", "CONNS", "ERRS", "REAPED",
		"ACCUM", "ITERS", "PUSHES", "ACC P50", "ACC P99", "EVENTS")
	for _, st := range rep.Nodes {
		events := trace.Itoa(st.Events)
		if st.LastEvent != "" {
			events += " (" + st.LastEvent + ")"
		}
		tbl.Add(st.Name, st.Role, health(st), offsetCell(st),
			trace.Itoa(int(st.Connections)), trace.Itoa(int(st.ConnErrors)),
			trace.Itoa(int(st.ReapedSeqs)), trace.Itoa(int(st.Accumulates)),
			trace.Itoa(int(st.Iterations)), trace.Itoa(int(st.Pushes)),
			quantileCell(st.AccP50), quantileCell(st.AccP99), events)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	// Live mode skips trace fetching, so only report the merge when one ran.
	if rep.MergedSpans == 0 && rep.CrossNodeChains == 0 {
		return nil
	}
	_, err := fmt.Fprintf(w, "merged trace: %d spans, %d cross-node chains\n",
		rep.MergedSpans, rep.CrossNodeChains)
	return err
}

// writeJSONReport emits the snapshot as indented JSON.
func writeJSONReport(w io.Writer, rep report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// writeMarkdownReport emits the snapshot as a Markdown fleet report.
func writeMarkdownReport(w io.Writer, rep report) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# shmtop fleet snapshot\n\nTaken: %s\n\n",
		rep.TakenAt.UTC().Format(time.RFC3339))
	b.WriteString("| Node | Role | Health | Offset | Conns | Errs | Reaped | Accum | Iters | Pushes | Acc p50 | Acc p99 | Events |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|---|---|---|---|\n")
	for _, st := range rep.Nodes {
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %d | %d | %d | %d | %d | %d | %s | %s | %d |\n",
			st.Name, st.Role, health(st), offsetCell(st),
			st.Connections, st.ConnErrors, st.ReapedSeqs, st.Accumulates,
			st.Iterations, st.Pushes,
			quantileCell(st.AccP50), quantileCell(st.AccP99), st.Events)
	}
	fmt.Fprintf(&b, "\nMerged trace: **%d** spans, **%d** cross-node chains.\n",
		rep.MergedSpans, rep.CrossNodeChains)
	for _, st := range rep.Nodes {
		if st.Err != "" {
			fmt.Fprintf(&b, "\n- `%s` error: %s\n", st.Name, st.Err)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
