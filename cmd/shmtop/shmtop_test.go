package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"shmcaffe/internal/telemetry"
)

// fakeNode serves a canned observability surface for scrape tests.
type fakeNode struct {
	metrics string
	healthy bool
	events  string
	trace   string
}

func (f *fakeNode) start(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, f.metrics)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !f.healthy {
			http.Error(w, "wedged", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok segments=1")
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, f.events)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, f.trace)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// hostport strips the http:// scheme from an httptest URL.
func hostport(u string) string { return strings.TrimPrefix(u, "http://") }

// serverMetrics renders a minimal SMB-server exposition whose wallclock is
// skewed by skew relative to the test's own clock.
func serverMetrics(skew time.Duration) string {
	return fmt.Sprintf(`# TYPE smb_segments gauge
smb_segments 2
# TYPE smb_server_connections gauge
smb_server_connections 3
# TYPE smb_server_conn_errors_total counter
smb_server_conn_errors_total 1
# TYPE smb_server_reaped_sequences_total counter
smb_server_reaped_sequences_total 4
# TYPE smb_accumulates_total counter
smb_accumulates_total 120
# TYPE smb_accumulate_seconds histogram
smb_accumulate_seconds_bucket{le="0.001"} 60
smb_accumulate_seconds_bucket{le="0.01"} 118
smb_accumulate_seconds_bucket{le="+Inf"} 120
smb_accumulate_seconds_sum 0.5
smb_accumulate_seconds_count 120
# TYPE shm_wallclock_unix_nano gauge
shm_wallclock_unix_nano %g
`, float64(time.Now().Add(skew).UnixNano()))
}

const workerMetrics = `# TYPE seasgd_iterations_total counter
seasgd_iterations_total 200
# TYPE seasgd_pushes_total counter
seasgd_pushes_total 40
# TYPE smb_supervised_reconnects_total counter
smb_supervised_reconnects_total 2
`

const eventsJSON = `[
  {"time": "2026-08-08T00:00:00Z", "kind": "reconnect", "args": {"client": 1, "attempt": 1}},
  {"time": "2026-08-08T00:00:01Z", "kind": "chaos_crash", "args": {"crashes": 1}}
]`

// traceJSON renders a one-span trace export with a clock_epoch anchor.
func traceJSON(t *testing.T, epoch int64, events []telemetry.TraceEvent) string {
	t.Helper()
	all := append([]telemetry.TraceEvent{{
		Name: "clock_epoch", Ph: "M", PID: 1,
		Args: map[string]string{"unix_nano": fmt.Sprintf("%d", epoch)},
	}}, events...)
	var buf bytes.Buffer
	buf.WriteString(`{"traceEvents":`)
	if err := json.NewEncoder(&buf).Encode(all); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(`}`)
	return buf.String()
}

func TestParseNodes(t *testing.T) {
	specs, err := parseNodes("a:1, srv=b:2 ,c:3")
	if err != nil {
		t.Fatal(err)
	}
	want := []nodeSpec{{"a:1", "a:1"}, {"srv", "b:2"}, {"c:3", "c:3"}}
	if len(specs) != len(want) {
		t.Fatalf("got %v", specs)
	}
	for i := range want {
		if specs[i] != want[i] {
			t.Errorf("spec[%d] = %v, want %v", i, specs[i], want[i])
		}
	}
	for _, bad := range []string{"", "=x:1", "name="} {
		if _, err := parseNodes(bad); err == nil {
			t.Errorf("parseNodes(%q) accepted", bad)
		}
	}
}

// TestScrapeServer: role detection, counters, histogram quantiles, the
// flight-recorder digest, and an offset estimate within RTT of the injected
// skew.
func TestScrapeServer(t *testing.T) {
	const skew = 3 * time.Second
	node := &fakeNode{metrics: serverMetrics(skew), healthy: true, events: eventsJSON}
	srv := node.start(t)

	st := newScraper(2 * time.Second).scrape(nodeSpec{Name: "srv", Addr: hostport(srv.URL)})
	if !st.Healthy || st.Err != "" {
		t.Fatalf("unhealthy: %+v", st)
	}
	if st.Role != "server" {
		t.Errorf("role %q", st.Role)
	}
	if st.Connections != 3 || st.ConnErrors != 1 || st.ReapedSeqs != 4 || st.Accumulates != 120 {
		t.Errorf("counters %+v", st)
	}
	if !st.HasClock {
		t.Fatal("no clock offset")
	}
	// The estimate should land within (RTT + 1ms slack) of the real skew.
	err := time.Duration(st.ClockOffsetNano) - skew
	if lim := time.Duration(st.ScrapeRTTNano) + time.Millisecond; err < -lim || err > lim {
		t.Errorf("offset %v, want %v ± %v", time.Duration(st.ClockOffsetNano), skew, lim)
	}
	if st.AccP50 <= 0 || st.AccP50 > 0.001 {
		t.Errorf("p50 %v", st.AccP50)
	}
	if st.AccP99 < 0.001 || st.AccP99 > 0.01 {
		t.Errorf("p99 %v", st.AccP99)
	}
	if st.Events != 2 || st.LastEvent != "chaos_crash" {
		t.Errorf("events %d last %q", st.Events, st.LastEvent)
	}
}

func TestScrapeWorkerAndDown(t *testing.T) {
	node := &fakeNode{metrics: workerMetrics, healthy: true, events: "[]"}
	srv := node.start(t)
	s := newScraper(2 * time.Second)

	st := s.scrape(nodeSpec{Name: "w0", Addr: hostport(srv.URL)})
	if st.Role != "worker" {
		t.Errorf("role %q", st.Role)
	}
	if st.Iterations != 200 || st.Pushes != 40 || st.Reconnects != 2 {
		t.Errorf("counters %+v", st)
	}
	if st.HasClock {
		t.Error("worker without wallclock gauge reported a clock")
	}

	// A dead node stays visible as a DOWN row.
	down := s.scrape(nodeSpec{Name: "gone", Addr: "127.0.0.1:1"})
	if down.Healthy || down.Err == "" {
		t.Errorf("down node %+v", down)
	}
}

// TestSnapshotCrossNode: two fake nodes share a trace_id, the child span's
// parent_id pointing at the other process's span — collect() must count the
// cross-node chain, and the snapshot artifacts must carry it.
func TestSnapshotCrossNode(t *testing.T) {
	epoch := time.Now().Add(-time.Minute).UnixNano()
	worker := &fakeNode{metrics: workerMetrics, healthy: true, events: "[]",
		trace: traceJSON(t, epoch, []telemetry.TraceEvent{{
			Name: "T.A3", Ph: "X", TS: 100, Dur: 5000, PID: 1, TID: 0,
			Args: map[string]string{
				"trace_id": "00000000000000aa", "span_id": "00000000000000aa",
			},
		}})}
	server := &fakeNode{metrics: serverMetrics(0), healthy: true, events: eventsJSON,
		trace: traceJSON(t, epoch, []telemetry.TraceEvent{{
			Name: "srv.acc", Ph: "X", TS: 1200, Dur: 800, PID: 1, TID: 7,
			Args: map[string]string{
				"trace_id": "00000000000000aa", "span_id": "00000000000000bb",
				"parent_id": "00000000000000aa",
			},
		}})}
	ws, ss := worker.start(t), server.start(t)

	specs := []nodeSpec{
		{Name: "worker0", Addr: hostport(ws.URL)},
		{Name: "server", Addr: hostport(ss.URL)},
	}
	rep, _ := collect(newScraper(2*time.Second), specs)
	if rep.MergedSpans != 2 {
		t.Errorf("merged spans %d, want 2", rep.MergedSpans)
	}
	if rep.CrossNodeChains < 1 {
		t.Fatalf("cross-node chains %d, want ≥1", rep.CrossNodeChains)
	}

	// End-to-end through run(): snapshot JSON + merged trace file.
	dir := t.TempDir()
	snap := filepath.Join(dir, "fleet.json")
	traceOut := filepath.Join(dir, "fleet-trace.json")
	var out bytes.Buffer
	err := run([]string{
		"-nodes", fmt.Sprintf("worker0=%s,server=%s", hostport(ws.URL), hostport(ss.URL)),
		"-snapshot", snap, "-trace-out", traceOut,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	var got report
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.CrossNodeChains < 1 {
		t.Errorf("snapshot cross_node_chains %d", got.CrossNodeChains)
	}
	if len(got.Nodes) != 2 || got.Nodes[1].Role != "server" {
		t.Errorf("snapshot nodes %+v", got.Nodes)
	}

	events, err := telemetry.LoadTraceFile(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	if telemetry.CrossNodeChains(events) < 1 {
		t.Error("merged trace file lost the cross-node chain")
	}
	// Both processes named in the merged file.
	names := map[string]bool{}
	for _, ev := range events {
		if ev.Ph == "M" && ev.Name == "process_name" {
			names[ev.Args["name"]] = true
		}
	}
	if !names["worker0"] || !names["server"] {
		t.Errorf("process names %v", names)
	}
}

// TestMarkdownSnapshot: .md path selects the Markdown writer.
func TestMarkdownSnapshot(t *testing.T) {
	node := &fakeNode{metrics: serverMetrics(0), healthy: true, events: "[]"}
	srv := node.start(t)
	snap := filepath.Join(t.TempDir(), "fleet.md")
	var out bytes.Buffer
	err := run([]string{"-nodes", "srv=" + hostport(srv.URL), "-snapshot", snap}, &out)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	md := string(raw)
	for _, want := range []string{"# shmtop fleet snapshot", "| srv | server | up |", "cross-node chains"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

// TestLiveTable: one refresh renders every node row.
func TestLiveTable(t *testing.T) {
	server := &fakeNode{metrics: serverMetrics(0), healthy: true, events: eventsJSON}
	worker := &fakeNode{metrics: workerMetrics, healthy: false, events: "[]"}
	ss, ws := server.start(t), worker.start(t)

	var out bytes.Buffer
	err := run([]string{
		"-nodes", fmt.Sprintf("srv=%s,w0=%s", hostport(ss.URL), hostport(ws.URL)),
		"-count", "1", "-interval", "1ms",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"NODE", "srv", "w0", "server", "worker", "DOWN", "chaos_crash"} {
		if !strings.Contains(text, want) {
			t.Errorf("table missing %q:\n%s", want, text)
		}
	}
}
