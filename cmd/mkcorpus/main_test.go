package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuildAndInspect(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.db")
	var out bytes.Buffer
	if err := run([]string{"-out", path, "-kind", "gaussian", "-classes", "3", "-per-class", "10"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote 30 samples") {
		t.Fatalf("build output %q", out.String())
	}
	out.Reset()
	if err := run([]string{"-inspect", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "30 samples, 3 classes") {
		t.Fatalf("inspect output %q", out.String())
	}
	if !strings.Contains(out.String(), "class 2: 10 samples") {
		t.Fatalf("histogram missing: %q", out.String())
	}
}

func TestBuildPatternCorpus(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.db")
	var out bytes.Buffer
	if err := run([]string{"-out", path, "-kind", "pattern", "-classes", "2", "-per-class", "5", "-size", "8"}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-inspect", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "[1 8 8]") {
		t.Fatalf("pattern shape missing: %q", out.String())
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Fatal("expected error without -out/-inspect")
	}
	if err := run([]string{"-out", "/tmp/x.db", "-kind", "csv"}, &out); err == nil {
		t.Fatal("expected error for unknown kind")
	}
	if err := run([]string{"-inspect", "/nonexistent.db"}, &out); err == nil {
		t.Fatal("expected error for missing file")
	}
}
