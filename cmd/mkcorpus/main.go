// Command mkcorpus builds and inspects file-backed training corpora — the
// counterpart of Caffe's convert_imageset, which the paper's pipeline uses
// to turn ImageNet into LMDB ("the training data was converted to LMDB
// data format", Sec. IV-C).
//
//	mkcorpus -out corpus.db -kind gaussian -classes 4 -per-class 200
//	mkcorpus -out images.db -kind pattern -classes 4 -per-class 100 -size 8
//	mkcorpus -inspect corpus.db
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"shmcaffe/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mkcorpus:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mkcorpus", flag.ContinueOnError)
	var (
		outPath  = fs.String("out", "", "output database path")
		inspect  = fs.String("inspect", "", "print metadata of an existing database")
		kind     = fs.String("kind", "gaussian", "gaussian | pattern")
		classes  = fs.Int("classes", 4, "class count")
		perClass = fs.Int("per-class", 100, "samples per class")
		features = fs.Int("features", 8, "feature count (gaussian)")
		size     = fs.Int("size", 8, "image side (pattern)")
		channels = fs.Int("channels", 1, "image channels (pattern)")
		noise    = fs.Float64("noise", 0.3, "noise std")
		seed     = fs.Uint64("seed", 42, "generator seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *inspect != "" {
		db, err := dataset.OpenDB(*inspect)
		if err != nil {
			return err
		}
		defer db.Close()
		fmt.Fprintf(out, "%s: %d samples, %d classes, sample shape %v\n",
			*inspect, db.Len(), db.NumClasses(), db.SampleShape())
		// Class histogram.
		counts := make([]int, db.NumClasses())
		x := make([]float32, volume(db.SampleShape()))
		for i := 0; i < db.Len(); i++ {
			counts[db.Sample(i, x)]++
		}
		for c, n := range counts {
			fmt.Fprintf(out, "  class %d: %d samples\n", c, n)
		}
		return nil
	}

	if *outPath == "" {
		fs.Usage()
		return fmt.Errorf("need -out or -inspect")
	}
	var (
		ds  dataset.Dataset
		err error
	)
	switch *kind {
	case "gaussian":
		ds, err = dataset.NewGaussian(dataset.GaussianConfig{
			Classes:  *classes,
			PerClass: *perClass,
			Shape:    []int{*features},
			Noise:    *noise,
			Seed:     *seed,
		})
	case "pattern":
		ds, err = dataset.NewPatternImages(*classes, *perClass, *channels, *size, *noise, *seed)
	default:
		return fmt.Errorf("unknown corpus kind %q", *kind)
	}
	if err != nil {
		return err
	}
	if err := dataset.SaveToDB(ds, *outPath); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %d samples (%d classes) to %s\n", ds.Len(), ds.NumClasses(), *outPath)
	return nil
}

func volume(shape []int) int {
	v := 1
	for _, d := range shape {
		v *= d
	}
	return v
}
