package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for driver tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestRunReportsFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"a/a.go": `package a

import (
	"errors"
	"fmt"
)

var errX = errors.New("x")

// F loses the error chain.
func F() error { return fmt.Errorf("context: %v", errX) }

func Leak() {
	go func() {
		for {
		}
	}()
}
`,
	})
	var stdout, stderr bytes.Buffer
	code := run(dir, []string{"./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"errwrap:", "goleak:", "a/a.go:"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
}

func TestRunCleanModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"a/a.go": `package a

import (
	"errors"
	"fmt"
)

var errX = errors.New("x")

// F wraps properly.
func F() error { return fmt.Errorf("context: %w", errX) }
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run(dir, []string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

func TestRunSelection(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"a/a.go": `package a

import (
	"errors"
	"fmt"
)

var errX = errors.New("x")

func F() error { return fmt.Errorf("context: %v", errX) }
`,
	})
	var stdout, stderr bytes.Buffer
	// Only goleak selected: the errwrap violation must not be reported.
	if code := run(dir, []string{"-run", "goleak", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout: %s", code, stdout.String())
	}
	if code := run(dir, []string{"-run", "nosuch", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown analyzer: exit code = %d, want 2", code)
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(".", []string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{
		"guardedby", "goleak", "errwrap", "opcode", "determinism",
		"lockorder", "hotalloc", "atomicmix", "wireproto",
	} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}

// findingModule has one errwrap finding, used by the baseline and SARIF
// round-trip tests.
func findingModule(t *testing.T) string {
	t.Helper()
	return writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"a/a.go": `package a

import (
	"errors"
	"fmt"
)

var errX = errors.New("x")

func F() error { return fmt.Errorf("context: %v", errX) }
`,
	})
}

// TestBaselineRoundTrip: write a baseline from a dirty module, verify the
// same module then passes against it, and that a new finding still fails.
func TestBaselineRoundTrip(t *testing.T) {
	dir := findingModule(t)
	base := filepath.Join(dir, "lint-baseline.json")

	var stdout, stderr bytes.Buffer
	if code := run(dir, []string{"-baseline", base, "-write-baseline", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("write-baseline: exit %d\nstderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "errwrap") || !strings.Contains(string(data), "a/a.go") {
		t.Fatalf("baseline missing expected entry:\n%s", data)
	}

	// The accepted finding no longer fails the run.
	stdout.Reset()
	stderr.Reset()
	if code := run(dir, []string{"-baseline", base, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("baselined run: exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}

	// A new finding in another file is not absorbed.
	extra := filepath.Join(dir, "a", "b.go")
	if err := os.WriteFile(extra, []byte(`package a

import "fmt"

func G() error { return fmt.Errorf("again: %v", errX) }
`), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run(dir, []string{"-baseline", base, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("new finding vs baseline: exit %d, want 1\nstdout: %s", code, stdout.String())
	}
	if out := stdout.String(); !strings.Contains(out, "a/b.go") || strings.Contains(out, "a/a.go") {
		t.Fatalf("baselined run must report only the new finding:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "new finding(s) not in baseline") {
		t.Fatalf("stderr should mention baseline:\n%s", stderr.String())
	}
}

// TestMissingBaselineFile: -baseline with a nonexistent file is an empty
// baseline, so findings still fail (a deleted baseline cannot mask a dirty
// tree).
func TestMissingBaselineFile(t *testing.T) {
	dir := findingModule(t)
	var stdout, stderr bytes.Buffer
	if code := run(dir, []string{"-baseline", filepath.Join(dir, "nope.json"), "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

// TestSARIFOutput checks the SARIF log is valid JSON in the expected 2.1.0
// shape, with module-relative forward-slash URIs.
func TestSARIFOutput(t *testing.T) {
	dir := findingModule(t)
	sarifPath := filepath.Join(dir, "out.sarif")
	var stdout, stderr bytes.Buffer
	if code := run(dir, []string{"-sarif", sarifPath, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("invalid SARIF JSON: %v\n%s", err, data)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected SARIF shape: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run0 := log.Runs[0]
	if run0.Tool.Driver.Name != "shmlint" || len(run0.Tool.Driver.Rules) == 0 {
		t.Fatalf("bad driver metadata: %+v", run0.Tool.Driver)
	}
	found := false
	for _, r := range run0.Results {
		if r.RuleID != "errwrap" {
			continue
		}
		found = true
		if len(r.Locations) != 1 {
			t.Fatalf("result without location: %+v", r)
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI != "a/a.go" {
			t.Errorf("URI = %q, want module-relative a/a.go", loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine == 0 {
			t.Error("missing startLine")
		}
	}
	if !found {
		t.Fatalf("no errwrap result in SARIF:\n%s", data)
	}
}

// TestSARIFRespectsBaseline: baselined findings are excluded from the SARIF
// log too — the two outputs must agree on what is new.
func TestSARIFRespectsBaseline(t *testing.T) {
	dir := findingModule(t)
	base := filepath.Join(dir, "lint-baseline.json")
	sarifPath := filepath.Join(dir, "out.sarif")
	var stdout, stderr bytes.Buffer
	if code := run(dir, []string{"-baseline", base, "-write-baseline", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("write-baseline: exit %d", code)
	}
	if code := run(dir, []string{"-baseline", base, "-sarif", sarifPath, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("baselined run: exit %d", code)
	}
	data, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"ruleId": "errwrap"`) {
		t.Fatalf("SARIF contains baselined finding:\n%s", data)
	}
}

// TestWriteBaselineRequiresPath pins the flag-validation exit code.
func TestWriteBaselineRequiresPath(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(".", []string{"-write-baseline"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
