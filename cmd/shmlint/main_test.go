package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for driver tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestRunReportsFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"a/a.go": `package a

import (
	"errors"
	"fmt"
)

var errX = errors.New("x")

// F loses the error chain.
func F() error { return fmt.Errorf("context: %v", errX) }

func Leak() {
	go func() {
		for {
		}
	}()
}
`,
	})
	var stdout, stderr bytes.Buffer
	code := run(dir, []string{"./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"errwrap:", "goleak:", "a/a.go:"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
}

func TestRunCleanModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"a/a.go": `package a

import (
	"errors"
	"fmt"
)

var errX = errors.New("x")

// F wraps properly.
func F() error { return fmt.Errorf("context: %w", errX) }
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run(dir, []string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

func TestRunSelection(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"a/a.go": `package a

import (
	"errors"
	"fmt"
)

var errX = errors.New("x")

func F() error { return fmt.Errorf("context: %v", errX) }
`,
	})
	var stdout, stderr bytes.Buffer
	// Only goleak selected: the errwrap violation must not be reported.
	if code := run(dir, []string{"-run", "goleak", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout: %s", code, stdout.String())
	}
	if code := run(dir, []string{"-run", "nosuch", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown analyzer: exit code = %d, want 2", code)
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(".", []string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"guardedby", "goleak", "errwrap", "opcode", "determinism"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}
