// Command shmlint runs the project's static-analysis suite
// (internal/lint) over module packages. It is tier 2 of the verify
// pipeline (scripts/check.sh), next to go vet and go test -race: the
// analyzers machine-check the concurrency and protocol conventions the
// SMB/SEASGD core depends on — mutex-guarded field access, goroutine
// lifetime, %w error wrapping, opcode dispatch exhaustiveness, and
// deterministic numeric paths.
//
// Usage:
//
//	shmlint [-list] [-run name,name] [packages...]
//
// Package patterns are module-relative ("./...", "./internal/smb", or
// full import paths); the default is ./... . Exit status: 0 clean,
// 1 findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"shmcaffe/internal/lint"
)

func main() {
	os.Exit(run(".", os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable driver body; dir is any directory inside the target
// module.
func run(dir string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("shmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a := lint.Lookup(name)
			if a == nil {
				fmt.Fprintf(stderr, "shmlint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(dir)
	if err != nil {
		fmt.Fprintln(stderr, "shmlint:", err)
		return 2
	}
	dirs, err := loader.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "shmlint:", err)
		return 2
	}

	findings := 0
	for _, pkgDir := range dirs {
		pkg, err := loader.LoadDir(pkgDir)
		if err != nil {
			fmt.Fprintln(stderr, "shmlint:", err)
			return 2
		}
		diags, err := lint.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(stderr, "shmlint:", err)
			return 2
		}
		for _, d := range diags {
			if rel, err := filepath.Rel(loader.ModuleDir(), d.Pos.Filename); err == nil {
				d.Pos.Filename = rel
			}
			fmt.Fprintln(stdout, d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "shmlint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
