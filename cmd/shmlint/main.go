// Command shmlint runs the project's static-analysis suite
// (internal/lint) over module packages. It is part of the tier-1 gate
// (scripts/check.sh): the analyzers machine-check the concurrency and
// protocol conventions the SMB/SEASGD core depends on — mutex-guarded
// field access, goroutine lifetime, %w error wrapping, opcode dispatch
// exhaustiveness, deterministic numeric paths, and (through the
// cross-package summary engine) lock acquisition order, hot-path
// allocation freedom, atomic/plain access mixing, and wire-protocol
// opcode parity.
//
// Usage:
//
//	shmlint [-list] [-run name,name] [-baseline file] [-write-baseline]
//	        [-sarif file] [packages...]
//
// Package patterns are module-relative ("./...", "./internal/smb", or
// full import paths); the default is ./... . With -baseline, committed
// findings are filtered out and only new ones fail the run; with
// -write-baseline, the current findings are written to the baseline file
// instead of failing. -sarif writes a SARIF 2.1.0 log of the (post-
// baseline) findings to the given file, or stdout with "-".
//
// Exit status: 0 clean, 1 new findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"shmcaffe/internal/lint"
)

func main() {
	os.Exit(run(".", os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable driver body; dir is any directory inside the target
// module.
func run(dir string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("shmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	baselinePath := fs.String("baseline", "", "baseline file: committed findings that do not fail the run")
	writeBaseline := fs.Bool("write-baseline", false, "write current findings to -baseline instead of failing")
	sarifPath := fs.String("sarif", "", "write SARIF 2.1.0 findings to this file (\"-\" for stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(stderr, "shmlint: -write-baseline requires -baseline")
		return 2
	}

	if *list {
		for _, a := range lint.All {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a := lint.Lookup(name)
			if a == nil {
				fmt.Fprintf(stderr, "shmlint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(dir)
	if err != nil {
		fmt.Fprintln(stderr, "shmlint:", err)
		return 2
	}
	dirs, err := loader.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "shmlint:", err)
		return 2
	}

	// Package analyzers run per package; the summary-engine analyzers run
	// once over the whole load afterwards.
	var diags []lint.Diagnostic
	var targets []*lint.Package
	for _, pkgDir := range dirs {
		pkg, err := loader.LoadDir(pkgDir)
		if err != nil {
			fmt.Fprintln(stderr, "shmlint:", err)
			return 2
		}
		targets = append(targets, pkg)
		ds, err := lint.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(stderr, "shmlint:", err)
			return 2
		}
		diags = append(diags, ds...)
	}
	prog := lint.BuildProgram(loader, targets)
	ds, err := lint.RunOnProgram(prog, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "shmlint:", err)
		return 2
	}
	diags = append(diags, ds...)

	// Normalize to module-relative forward-slash paths: what the text
	// output prints, what the baseline keys on, what SARIF embeds.
	for i := range diags {
		if rel, err := filepath.Rel(loader.ModuleDir(), diags[i].Pos.Filename); err == nil {
			diags[i].Pos.Filename = filepath.ToSlash(rel)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})

	if *writeBaseline {
		f, err := os.Create(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "shmlint:", err)
			return 2
		}
		werr := lint.NewBaseline(diags).Write(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(stderr, "shmlint:", werr)
			return 2
		}
		fmt.Fprintf(stderr, "shmlint: baseline %s written with %d finding(s)\n", *baselinePath, len(diags))
		return 0
	}

	if *baselinePath != "" {
		base, err := lint.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "shmlint:", err)
			return 2
		}
		diags = base.Filter(diags)
	}

	if *sarifPath != "" {
		out := stdout
		var f *os.File
		if *sarifPath != "-" {
			f, err = os.Create(*sarifPath)
			if err != nil {
				fmt.Fprintln(stderr, "shmlint:", err)
				return 2
			}
			out = f
		}
		werr := lint.WriteSARIF(out, analyzers, diags)
		if f != nil {
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
		}
		if werr != nil {
			fmt.Fprintln(stderr, "shmlint:", werr)
			return 2
		}
	}

	// With -sarif -, stdout carries the JSON log; keep it parseable by
	// moving the text findings to stderr.
	text := stdout
	if *sarifPath == "-" {
		text = stderr
	}
	for _, d := range diags {
		fmt.Fprintln(text, d)
	}
	if len(diags) > 0 {
		what := "finding(s)"
		if *baselinePath != "" {
			what = "new finding(s) not in baseline"
		}
		fmt.Fprintf(stderr, "shmlint: %d %s\n", len(diags), what)
		return 1
	}
	return 0
}
