// Command shmserve is the batching inference frontend: it serves forward
// passes of an internal/nn model whose weights live in a trainer's SMB Wg
// segment, refreshed through consistent copy-on-write snapshots
// (Snapshot/SnapRead) instead of the live Read that tears under a write
// storm. Point it at the same server and -job as a running
// `shmtrain multiprocess` fleet and it serves the model the trainer is
// converging, continuously.
//
//	shmserve -addr 127.0.0.1:7700 -job mpjob -listen 127.0.0.1:8080
//	curl -d '{"features":[0.1,...]}' http://127.0.0.1:8080/infer
//
// Requests to /infer are batched (up to -batch, waiting at most
// -batch-delay) into one batch-first Forward call. /metrics exposes the
// Prometheus surface: snapshot age, batch-size and end-to-end latency
// histograms, refresh counters. A built-in load generator
// (-loadgen http://host:port) drives a running frontend and prints the
// client-side p50/p99.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"shmcaffe/internal/nn"
	"shmcaffe/internal/smb"
	"shmcaffe/internal/telemetry"
	"shmcaffe/internal/tensor"
)

// promContentType is the Prometheus text exposition format version the
// registry writes (same constant as cmd/smbserver).
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "shmserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("shmserve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:7700", "SMB server address the trainer writes Wg to")
		transport  = fs.String("transport", "auto", "SMB transport: auto, tcp, tcp_sg or shm")
		job        = fs.String("job", "mpjob", "job name whose global weight segment to serve")
		features   = fs.Int("features", 8, "model input features (must match the trainer)")
		hidden     = fs.Int("hidden", 16, "model hidden width (must match the trainer)")
		classes    = fs.Int("classes", 4, "model classes (must match the trainer)")
		listen     = fs.String("listen", "127.0.0.1:8080", "HTTP listen address (port 0 picks one)")
		refresh    = fs.Duration("refresh", 200*time.Millisecond, "snapshot refresh interval")
		batch      = fs.Int("batch", 16, "max requests folded into one forward pass")
		batchDelay = fs.Duration("batch-delay", 2*time.Millisecond, "max wait to fill a batch")
		wait       = fs.Duration("wait", 30*time.Second, "how long to wait for the trainer to create the segment")
		opTimeout  = fs.Duration("op-timeout", 5*time.Second, "per-operation SMB timeout")
		loadgen    = fs.String("loadgen", "", "load-generator mode: target frontend base URL (e.g. http://127.0.0.1:8080)")
		conc       = fs.Int("concurrency", 4, "with -loadgen: concurrent client goroutines")
		duration   = fs.Duration("duration", 3*time.Second, "with -loadgen: how long to generate load")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *loadgen != "" {
		return runLoadgen(*loadgen, *features, *conc, *duration)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	client, closeClient, tname, err := dialSMB(*addr, *transport, *opTimeout)
	if err != nil {
		return err
	}
	defer closeClient()
	sc, ok := client.(smb.Snapshotter)
	if !ok {
		return fmt.Errorf("transport %s does not support snapshots", tname)
	}

	net, err := nn.MLP("serve", *features, *hidden, *classes)
	if err != nil {
		return err
	}
	segName := smb.SegmentNames{Job: *job}.Global()
	h, err := waitForSegment(ctx, client, segName, *wait)
	if err != nil {
		return err
	}
	log.Printf("shmserve: attached %s via %s (%d params)", segName, tname, net.NumParams())

	srv := &server{
		sc:       sc,
		h:        h,
		net:      net,
		features: *features,
		classes:  *classes,
		nparams:  net.NumParams(),
		reqCh:    make(chan inferReq, 256),
	}
	srv.initMetrics()

	// First refresh runs synchronously: /infer never sees a weightless
	// model, and a mismatched -features/-hidden/-classes fails here with a
	// size error instead of serving garbage.
	if err := srv.refreshOnce(); err != nil {
		return fmt.Errorf("initial snapshot of %s: %w", segName, err)
	}
	go srv.refreshLoop(ctx, *refresh)
	go srv.batchLoop(ctx, *batch, *batchDelay)

	ln, err := net2Listen(*listen)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.mux()}
	go func() {
		<-ctx.Done()
		sdCtx, sdCancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer sdCancel()
		_ = hs.Shutdown(sdCtx)
	}()
	log.Printf("shmserve: listening on http://%s (job %q, transport %s)", ln.Addr(), *job, tname)
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// net2Listen is a seam so the listen call reads apart from the nn import
// shadowing the net package name in run.
func net2Listen(addr string) (net.Listener, error) { return net.Listen("tcp", addr) }

// dialSMB connects to the SMB server over the named transport (the same
// negotiation the trainer uses, minus the experimental endpoints).
func dialSMB(addr, transport string, opTimeout time.Duration) (smb.Client, func(), string, error) {
	opts := smb.DialOptions{Addr: addr, OpTimeout: opTimeout, Seed: 104729, ClientID: 104729}
	probe := func(c smb.Client) error {
		if _, err := c.Lookup("\x00reachability-probe"); err != nil && !errors.Is(err, smb.ErrUnknownSegment) {
			c.Close()
			return err
		}
		return nil
	}
	switch transport {
	case "tcp", "tcp_sg", "shm":
		c, err := smb.DialTransport(transport, opts)
		if err != nil {
			return nil, nil, "", err
		}
		if err := probe(c); err != nil {
			return nil, nil, "", err
		}
		return c, func() { c.Close() }, transport, nil
	case "", "auto":
		c, name, err := smb.DialAuto(opts)
		if err != nil {
			return nil, nil, "", err
		}
		if err := probe(c); err != nil {
			return nil, nil, "", err
		}
		return c, func() { c.Close() }, name, nil
	default:
		return nil, nil, "", fmt.Errorf("unknown transport %q (want auto, tcp, tcp_sg or shm)", transport)
	}
}

// waitForSegment polls for the trainer's weight segment: the frontend is
// typically started alongside the trainer, before the first solver Create.
func waitForSegment(ctx context.Context, c smb.Client, name string, wait time.Duration) (smb.Handle, error) {
	deadline := time.Now().Add(wait)
	for {
		key, err := c.Lookup(name)
		if err == nil {
			return c.Attach(key)
		}
		if !errors.Is(err, smb.ErrUnknownSegment) {
			return 0, err
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("segment %q not created within %s (is the trainer running with the same -job?)", name, wait)
		}
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// weightsCut is one published model state: the flat weights of a snapshot,
// its store version, and when the cut was taken (feeds the age gauge).
type weightsCut struct {
	flat    []float32
	version uint64
	taken   time.Time
}

type inferReq struct {
	x    []float32
	resp chan inferResp
}

type inferResp struct {
	class   int
	scores  []float32
	version uint64
	err     error
}

type server struct {
	sc       smb.Snapshotter
	h        smb.Handle
	net      *nn.Network
	features int
	classes  int
	nparams  int
	reqCh    chan inferReq

	latest atomic.Pointer[weightsCut]

	reg          *telemetry.Registry
	batchSize    *telemetry.Histogram
	inferLatency *telemetry.Histogram
	infers       *telemetry.Counter
	refreshes    *telemetry.Counter
	refreshFails *telemetry.Counter
}

func (s *server) initMetrics() {
	s.reg = telemetry.NewRegistry()
	s.reg.GaugeFunc("shmserve_snapshot_age_seconds",
		"age of the weight snapshot currently being served",
		func() float64 {
			w := s.latest.Load()
			if w == nil {
				return -1
			}
			return time.Since(w.taken).Seconds()
		})
	s.reg.GaugeFunc("shmserve_model_version",
		"store version of the weight snapshot currently being served",
		func() float64 {
			w := s.latest.Load()
			if w == nil {
				return 0
			}
			return float64(w.version)
		})
	s.batchSize = s.reg.Histogram("shmserve_batch_size",
		"requests folded into one forward pass", telemetry.LinearBuckets(1, 1, 32))
	s.inferLatency = s.reg.Histogram("shmserve_infer_seconds",
		"end-to-end /infer latency (enqueue, batch, forward, reply)", telemetry.DefLatencyBuckets)
	s.infers = s.reg.Counter("shmserve_infers_total", "inference requests served")
	s.refreshes = s.reg.Counter("shmserve_refreshes_total", "successful weight snapshot refreshes")
	s.refreshFails = s.reg.Counter("shmserve_refresh_failures_total", "failed weight snapshot refreshes")
}

// refreshOnce takes one consistent cut of the weight segment and publishes
// it. The snapshot is released immediately after the copy: the frontend
// pins the cut only for the SnapRead, not between refreshes, so the store
// retires the COW pages instead of accumulating one pinned set per cycle.
func (s *server) refreshOnce() error {
	info, err := s.sc.Snapshot(s.h)
	if err != nil {
		return err
	}
	want := s.nparams * 4
	if info.Size < want {
		_ = s.sc.SnapRelease(info.ID)
		return fmt.Errorf("segment holds %d bytes but the model needs %d (check -features/-hidden/-classes against the trainer)", info.Size, want)
	}
	buf := make([]byte, want)
	if err := s.sc.SnapRead(info.ID, 0, buf); err != nil {
		_ = s.sc.SnapRelease(info.ID)
		return err
	}
	if err := s.sc.SnapRelease(info.ID); err != nil {
		return err
	}
	flat := make([]float32, s.nparams)
	if err := tensor.DecodeFloat32(buf, flat); err != nil {
		return err
	}
	s.latest.Store(&weightsCut{flat: flat, version: info.Version, taken: time.Now()})
	s.refreshes.Inc()
	return nil
}

func (s *server) refreshLoop(ctx context.Context, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := s.refreshOnce(); err != nil {
				s.refreshFails.Inc()
				log.Printf("shmserve: refresh: %v", err)
			}
		}
	}
}

// batchLoop is the single consumer of reqCh: it folds up to maxBatch
// requests (waiting at most delay after the first) into one batch-first
// Forward. Running alone it also owns the Network — SetFlatWeights and
// Forward never race, so a refresh mid-batch is simply picked up by the
// next batch.
func (s *server) batchLoop(ctx context.Context, maxBatch int, delay time.Duration) {
	var applied uint64
	for {
		var first inferReq
		select {
		case <-ctx.Done():
			return
		case first = <-s.reqCh:
		}
		batch := append(make([]inferReq, 0, maxBatch), first)
		timer := time.NewTimer(delay)
	fill:
		for len(batch) < maxBatch {
			select {
			case r := <-s.reqCh:
				batch = append(batch, r)
			case <-timer.C:
				break fill
			case <-ctx.Done():
				timer.Stop()
				return
			}
		}
		timer.Stop()
		s.batchSize.Observe(float64(len(batch)))

		w := s.latest.Load()
		if w.version != applied {
			if err := s.net.SetFlatWeights(w.flat); err != nil {
				s.fail(batch, err)
				continue
			}
			applied = w.version
		}
		xs := make([]float32, 0, len(batch)*s.features)
		for _, r := range batch {
			xs = append(xs, r.x...)
		}
		x, err := tensor.FromSlice(xs, len(batch), s.features)
		if err != nil {
			s.fail(batch, err)
			continue
		}
		logits, err := s.net.Forward(x, false)
		if err != nil {
			s.fail(batch, err)
			continue
		}
		data := logits.Data()
		for i, r := range batch {
			row := data[i*s.classes : (i+1)*s.classes]
			best := 0
			for j, v := range row {
				if v > row[best] {
					best = j
				}
			}
			scores := make([]float32, s.classes)
			copy(scores, row)
			r.resp <- inferResp{class: best, scores: scores, version: w.version}
		}
		s.infers.Add(int64(len(batch)))
	}
}

func (s *server) fail(batch []inferReq, err error) {
	for _, r := range batch {
		r.resp <- inferResp{err: err}
	}
}

type inferRequestBody struct {
	Features []float32 `json:"features"`
}

type inferResponseBody struct {
	Class        int       `json:"class"`
	Scores       []float32 `json:"scores"`
	ModelVersion uint64    `json:"model_version"`
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/infer", s.handleInfer)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", promContentType)
		_ = s.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		cut := s.latest.Load()
		fmt.Fprintf(w, "ok version=%d age=%.3fs\n", cut.version, time.Since(cut.taken).Seconds())
	})
	return mux
}

func (s *server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	t0 := time.Now()
	var body inferRequestBody
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&body); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(body.Features) != s.features {
		http.Error(w, fmt.Sprintf("want %d features, got %d", s.features, len(body.Features)), http.StatusBadRequest)
		return
	}
	req := inferReq{x: body.Features, resp: make(chan inferResp, 1)}
	select {
	case s.reqCh <- req:
	case <-r.Context().Done():
		return
	}
	var resp inferResp
	select {
	case resp = <-req.resp:
	case <-r.Context().Done():
		return
	}
	if resp.err != nil {
		http.Error(w, resp.err.Error(), http.StatusInternalServerError)
		return
	}
	s.inferLatency.ObserveSeconds(int64(time.Since(t0)))
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(inferResponseBody{
		Class:        resp.class,
		Scores:       resp.scores,
		ModelVersion: resp.version,
	})
}

// runLoadgen hammers a running frontend with random feature vectors and
// prints the client-observed latency distribution — the companion to the
// server-side benchtables -serve rows.
func runLoadgen(base string, features, conc int, duration time.Duration) error {
	type result struct {
		lat  []time.Duration
		errs int
	}
	stop := time.Now().Add(duration)
	results := make([]result, conc)
	var wg sync.WaitGroup
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(slot)*7919 + 1))
			cl := &http.Client{Timeout: 5 * time.Second}
			x := make([]float32, features)
			for time.Now().Before(stop) {
				for j := range x {
					x[j] = rng.Float32()*2 - 1
				}
				body, _ := json.Marshal(inferRequestBody{Features: x})
				t0 := time.Now()
				resp, err := cl.Post(base+"/infer", "application/json", bytes.NewReader(body))
				if err != nil {
					results[slot].errs++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					results[slot].errs++
					continue
				}
				results[slot].lat = append(results[slot].lat, time.Since(t0))
			}
		}(i)
	}
	wg.Wait()
	var all []time.Duration
	errs := 0
	for _, r := range results {
		all = append(all, r.lat...)
		errs += r.errs
	}
	if len(all) == 0 {
		return fmt.Errorf("loadgen: no successful requests against %s (%d errors)", base, errs)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration { return all[int(p/100*float64(len(all)-1))] }
	fmt.Printf("loadgen: %d requests, %d errors, %.0f req/s, p50 %s, p99 %s\n",
		len(all), errs, float64(len(all))/duration.Seconds(), pct(50), pct(99))
	return nil
}
