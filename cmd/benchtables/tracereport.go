package main

import (
	"fmt"
	"io"
	"path/filepath"
	"time"

	"shmcaffe/internal/telemetry"
	"shmcaffe/internal/trace"
)

// phaseRole names the Fig. 6 role of each phase in the breakdown table.
func phaseRole(p telemetry.Phase) string {
	switch {
	case telemetry.HiddenPhase(p):
		return "hidden"
	case p == telemetry.PhaseT45:
		return "compute"
	case p == telemetry.PhaseTA5:
		return "blocked"
	default:
		return "exposed"
	}
}

// us formats a duration in microseconds, the natural unit of the spans.
func us(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1e3)
}

// traceReport prints the per-phase breakdown of a Chrome trace written by
// shmtrain -trace-out: Fig. 6 in tabular form, plus the overlap summary.
func traceReport(out io.Writer, path string, csv bool) error {
	events, err := telemetry.LoadTraceFile(path)
	if err != nil {
		return err
	}
	b := telemetry.ComputeBreakdown(events)
	if len(b.Phases) == 0 {
		return fmt.Errorf("%s: no SEASGD phase spans in trace (%d unknown events)", path, b.Unknown)
	}

	t := trace.New(fmt.Sprintf("Phase breakdown of %s (Fig. 6)", filepath.Base(path)),
		"Phase", "Role", "Spans", "Total ms", "Mean us", "Min us", "Max us")
	for _, st := range b.Phases {
		t.Add(st.Phase.String(), phaseRole(st.Phase), trace.Itoa(st.Count),
			trace.F2(float64(st.Total.Nanoseconds())/1e6),
			us(st.Mean()), us(st.Min), us(st.Max))
	}
	var rerr error
	if csv {
		rerr = t.RenderCSV(out)
	} else {
		rerr = t.Render(out)
	}
	if rerr != nil {
		return rerr
	}

	fmt.Fprintf(out, "\nworkers: %d\n", b.Workers)
	fmt.Fprintf(out, "compute (T4+T5):          %s\n", trace.Ms(b.ComputeTime))
	fmt.Fprintf(out, "hidden comm (T.A1-T.A4):  %s\n", trace.Ms(b.HiddenTime))
	fmt.Fprintf(out, "exposed comm (T1+T2):     %s\n", trace.Ms(b.ExposedTime))
	fmt.Fprintf(out, "blocked (T.A5):           %s\n", trace.Ms(b.BlockedTime))
	fmt.Fprintf(out, "overlap ratio (hidden/compute): %.3f\n", b.OverlapRatio())
	if b.Unknown > 0 {
		fmt.Fprintf(out, "skipped %d non-phase events\n", b.Unknown)
	}
	return nil
}
