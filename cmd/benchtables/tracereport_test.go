package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleTrace is a hand-built trace: per worker, 10ms of compute, 6ms of
// hidden T.A work, 3ms exposed, 1ms blocked.
const sampleTrace = `{"traceEvents":[
{"name":"T1","cat":"seasgd","ph":"X","ts":0,"dur":2000,"pid":0,"tid":0},
{"name":"T2","cat":"seasgd","ph":"X","ts":2000,"dur":1000,"pid":0,"tid":0},
{"name":"T4+T5","cat":"seasgd","ph":"X","ts":3000,"dur":10000,"pid":0,"tid":0},
{"name":"T.A1","cat":"seasgd","ph":"X","ts":3000,"dur":500,"pid":0,"tid":1},
{"name":"T.A2","cat":"seasgd","ph":"X","ts":3500,"dur":2500,"pid":0,"tid":1},
{"name":"T.A3","cat":"seasgd","ph":"X","ts":6000,"dur":2000,"pid":0,"tid":1},
{"name":"T.A4","cat":"seasgd","ph":"X","ts":8000,"dur":1000,"pid":0,"tid":1},
{"name":"T.A5","cat":"seasgd","ph":"X","ts":13000,"dur":1000,"pid":0,"tid":0},
{"name":"process_name","ph":"M","pid":0,"args":{"name":"train"}}
]}`

func TestTraceReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := os.WriteFile(path, []byte(sampleTrace), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-trace", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"Phase breakdown",
		"T4+T5",
		"compute",
		"T.A3",
		"hidden",
		"workers: 1",
		"overlap ratio (hidden/compute): 0.600",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
}

func TestTraceReportCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := os.WriteFile(path, []byte(sampleTrace), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-trace", path, "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "T4+T5") {
		t.Fatalf("CSV report missing compute row:\n%s", out.String())
	}
}

func TestTraceReportRejectsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := os.WriteFile(path, []byte(`{"traceEvents":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-trace", path}, &out); err == nil {
		t.Fatal("expected error for a trace with no phase spans")
	}
}
