// Command benchtables regenerates the paper's tables and figures.
//
// Usage:
//
//	benchtables -all                 # every exhibit
//	benchtables -exhibit table2      # one exhibit
//	benchtables -exhibit fig8 -workers 8 -epochs 10
//	benchtables -ablations           # the DESIGN.md §6 ablations
//	benchtables -csv                 # CSV instead of aligned text
//	benchtables -trace trace.json    # phase breakdown of a shmtrain -trace-out file
//
// Exhibits: table1 table2 table3 table4 table5 table6 fig7 fig8 fig10
// fig11 fig15 (fig9 is the chart form of table2; figs 12-14 are the chart
// forms of tables 5-6).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"shmcaffe/internal/bench"
	"shmcaffe/internal/perfmodel"
	"shmcaffe/internal/trace"
)

func main() {
	if bench.MaybeServeBenchChild() {
		return // this invocation was a re-exec'd transport-bench server
	}
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchtables", flag.ContinueOnError)
	var (
		all       = fs.Bool("all", false, "regenerate every exhibit")
		exhibit   = fs.String("exhibit", "", "one exhibit: table1..table6, fig7, fig8, fig10, fig11, fig15")
		ablations = fs.Bool("ablations", false, "run the design-choice ablations")
		charts    = fs.Bool("charts", false, "render the timing figures as bar charts")
		csv       = fs.Bool("csv", false, "emit CSV instead of aligned text")
		outDir    = fs.String("out", "", "with -all: also write each exhibit to <dir>/<name>.txt and .csv")
		workers   = fs.Int("workers", 8, "worker count for fig8")
		epochs    = fs.Int("epochs", 0, "override epochs for the convergence exhibits")
		perClass  = fs.Int("per-class", 0, "override per-class sample count for the convergence exhibits")
		kernels   = fs.Bool("kernels", false, "run the kernel microbenchmarks (gemm, im2col, SMB) and emit JSON")
		kernOut   = fs.String("kernels-out", "", "with -kernels: write the JSON report here instead of stdout")
		kernQuick = fs.Bool("kernels-quick", false, "with -kernels/-serve: shorter size and sample lists for smoke runs")
		serve     = fs.Bool("serve", false, "run the serving benchmark (read p50/p99 under an accumulate storm) and render the table")
		traceFile = fs.String("trace", "", "print the per-phase breakdown of a Chrome trace written by shmtrain -trace-out")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	hw := perfmodel.DefaultHardware()
	opts := bench.DefaultConvergenceOptions()
	if *epochs > 0 {
		opts.Epochs = *epochs
	}
	if *perClass > 0 {
		opts.PerClass = *perClass
	}

	emit := func(t *trace.Table) error {
		var err error
		if *csv {
			err = t.RenderCSV(out)
		} else {
			err = t.Render(out)
		}
		if err != nil {
			return err
		}
		_, err = fmt.Fprintln(out)
		return err
	}

	type gen func() (*trace.Table, error)
	exhibits := []struct {
		name string
		fn   gen
	}{
		{"table1", func() (*trace.Table, error) { return bench.Table1Hardware(), nil }},
		{"fig7", func() (*trace.Table, error) { return bench.Fig7Bandwidth(hw) }},
		{"fig8", func() (*trace.Table, error) { return bench.Fig8Convergence(*workers, opts) }},
		{"table2", func() (*trace.Table, error) { return bench.Table2TrainingTime(hw) }},
		{"fig9", func() (*trace.Table, error) { return bench.Fig9TimeToAccuracy(*workers, 0.9, opts, hw) }},
		{"fig10", func() (*trace.Table, error) { return bench.Fig10CompComm(hw) }},
		{"fig11", func() (*trace.Table, error) { return bench.Fig11AsyncVsHybrid([]int{1, 4, 8, 16}, opts) }},
		{"table3", func() (*trace.Table, error) { return bench.Table3Configs(), nil }},
		{"table4", func() (*trace.Table, error) { return bench.Table4Models(), nil }},
		{"eq8", func() (*trace.Table, error) { return bench.Eq8Decomposition(hw), nil }},
		{"table5", func() (*trace.Table, error) { return bench.Table5ShmCaffeA(hw) }},
		{"table6", func() (*trace.Table, error) { return bench.Table6ShmCaffeH(hw) }},
		{"fig15", func() (*trace.Table, error) { return bench.Fig15AvsH(hw) }},
	}
	ablationList := []gen{
		func() (*trace.Table, error) { return bench.AblationOverlap(hw) },
		func() (*trace.Table, error) { return bench.AblationHiddenRead(hw) },
		func() (*trace.Table, error) { return bench.AblationUpdateInterval(hw) },
		func() (*trace.Table, error) { return bench.AblationAccumulate(hw) },
		func() (*trace.Table, error) { return bench.AblationGroupSize(hw) },
		func() (*trace.Table, error) { return bench.FutureWorkMultiServer(hw) },
		func() (*trace.Table, error) { return bench.StragglerSensitivity(hw) },
		func() (*trace.Table, error) { return bench.AblationMovingRate(4, opts) },
		func() (*trace.Table, error) { return bench.AblationUpdateIntervalFunctional(4, opts) },
		func() (*trace.Table, error) { return bench.AblationLayerwiseOverlap(hw) },
		func() (*trace.Table, error) { return bench.RelatedWorkDisciplines(4, opts) },
	}

	switch {
	case *traceFile != "":
		return traceReport(out, *traceFile, *csv)
	case *serve:
		rep := &bench.KernelReport{Speedups: map[string]float64{}}
		if err := bench.ServeBench(rep, *kernQuick); err != nil {
			return err
		}
		return emit(bench.ServeTable(rep))
	case *kernels:
		rep, err := bench.KernelBench(*kernQuick)
		if err != nil {
			return err
		}
		if rep.NumCPU != rep.GOMAXPROCS {
			// A capped GOMAXPROCS (cgroup quota, taskset, explicit env) makes
			// the parallel and transport rows measure a narrower machine than
			// the hardware suggests — flag it so the provenance is read right.
			fmt.Fprintf(os.Stderr,
				"benchtables: warning: NumCPU=%d but GOMAXPROCS=%d disagree; "+
					"parallel speedups reflect the GOMAXPROCS cap, not the hardware\n",
				rep.NumCPU, rep.GOMAXPROCS)
		}
		if *kernOut == "" {
			return rep.WriteJSON(out)
		}
		f, err := os.Create(*kernOut)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	case *charts:
		chartGens := []func() (*trace.Chart, error){
			func() (*trace.Chart, error) { return bench.Fig7Chart(hw) },
			func() (*trace.Chart, error) { return bench.Fig10Chart(hw) },
			func() (*trace.Chart, error) { return bench.Fig13Chart(*workers, hw) },
			func() (*trace.Chart, error) { return bench.Fig15Chart(hw) },
		}
		for _, fn := range chartGens {
			c, err := fn()
			if err != nil {
				return err
			}
			if err := c.Render(out); err != nil {
				return err
			}
			if _, err := fmt.Fprintln(out); err != nil {
				return err
			}
		}
		return nil
	case *exhibit != "":
		want := strings.ToLower(*exhibit)
		for _, e := range exhibits {
			if e.name == want {
				t, err := e.fn()
				if err != nil {
					return err
				}
				return emit(t)
			}
		}
		return fmt.Errorf("unknown exhibit %q", *exhibit)
	case *ablations:
		for _, fn := range ablationList {
			t, err := fn()
			if err != nil {
				return err
			}
			if err := emit(t); err != nil {
				return err
			}
		}
		return nil
	case *all:
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
		}
		for _, e := range exhibits {
			t, err := e.fn()
			if err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
			if err := emit(t); err != nil {
				return err
			}
			if *outDir != "" {
				if err := writeExhibitFiles(*outDir, e.name, t); err != nil {
					return err
				}
			}
		}
		return nil
	default:
		fs.Usage()
		return fmt.Errorf("choose -all, -exhibit, -ablations, -charts or -trace")
	}
}

// writeExhibitFiles persists one exhibit as aligned text and CSV.
func writeExhibitFiles(dir, name string, t *trace.Table) error {
	txt, err := os.Create(filepath.Join(dir, name+".txt"))
	if err != nil {
		return err
	}
	if err := t.Render(txt); err != nil {
		txt.Close()
		return err
	}
	if err := txt.Close(); err != nil {
		return err
	}
	csvF, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	if err := t.RenderCSV(csvF); err != nil {
		csvF.Close()
		return err
	}
	return csvF.Close()
}
