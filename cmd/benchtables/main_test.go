package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExhibit(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exhibit", "fig7"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig. 7") {
		t.Fatalf("missing title: %q", out.String())
	}
	if !strings.Contains(out.String(), "96.0%") {
		t.Fatalf("missing saturation row: %q", out.String())
	}
}

func TestRunTableExhibits(t *testing.T) {
	for _, name := range []string{"table1", "table3", "table4", "table5", "table6", "fig10", "fig15", "table2"} {
		var out bytes.Buffer
		if err := run([]string{"-exhibit", name}, &out); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.Len() == 0 {
			t.Fatalf("%s produced no output", name)
		}
	}
}

func TestRunConvergenceExhibitSmall(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-exhibit", "fig8", "-workers", "2", "-epochs", "2", "-per-class", "30"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ShmCaffe") {
		t.Fatalf("fig8 missing platform rows: %q", out.String())
	}
}

func TestRunCSVMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exhibit", "table4", "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(out.String(), "\n", 2)[0]
	if !strings.Contains(first, ",") {
		t.Fatalf("not CSV: %q", first)
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exhibit", "fig99"}, &out); err == nil {
		t.Fatal("expected error for unknown exhibit")
	}
	if err := run([]string{}, &out); err == nil {
		t.Fatal("expected error for no mode")
	}
}

func TestRunAllWithOutDir(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	// Keep convergence exhibits tiny.
	err := run([]string{"-all", "-out", dir, "-workers", "2", "-epochs", "2", "-per-class", "30"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table2.txt", "table2.csv", "fig7.txt", "fig15.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
	}
}
