// Command smbserver runs a standalone Soft Memory Box server — the
// dedicated memory server of the paper's testbed. Distributed training
// processes (cmd/shmtrain with -smb, or library users dialing smb.Dial)
// allocate and share remote segments through it.
//
// Usage:
//
//	smbserver -addr 0.0.0.0:7700
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"shmcaffe/internal/faults"
	"shmcaffe/internal/rds"
	"shmcaffe/internal/smb"
	"shmcaffe/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "smbserver:", err)
		// Fatal exit: leave the flight recorder on disk for the post-mortem.
		if path := eventDumpPath(); telemetry.DumpEvents(path) == nil {
			fmt.Fprintln(os.Stderr, "smbserver: flight recorder dump:", path)
		}
		os.Exit(1)
	}
}

// eventDumpPath names this process's flight-recorder dump file.
func eventDumpPath() string {
	return filepath.Join(os.TempDir(), fmt.Sprintf("smbserver-%d-events.txt", os.Getpid()))
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:7700", "TCP listen address")
		rdsAddr  = flag.String("rds", "", "additionally serve the RDS datagram transport on this UDP address")
		shmPath  = flag.String("shm", "", "offer the zero-copy shared-memory transport on this unix control socket (co-located clients only)")
		httpAddr = flag.String("http", "", "serve Prometheus metrics on this HTTP address (GET /metrics; JSON at /metrics.json; liveness at /healthz)")
		statsSec = flag.Int("stats", 10, "seconds between traffic stat lines (0 disables)")

		chaosDrop    = flag.Float64("chaos-drop", 0, "chaos: per-op probability an accepted connection's read/write is killed")
		chaosSeed    = flag.Uint64("chaos-seed", 1, "chaos: fault-injection seed")
		chaosRestart = flag.Duration("chaos-restart-after", 0, "chaos: crash and restart the serving plane once, this long after startup (0 = never)")
		chaosDown    = flag.Duration("chaos-down", 500*time.Millisecond, "chaos: how long the server stays down during the restart")
	)
	flag.Parse()

	store := smb.NewStore()
	logf := func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	}

	if *chaosDrop > 0 || *chaosRestart > 0 {
		if *shmPath != "" {
			// The shm control socket hands out memfd mappings that bypass the
			// restartable serving plane entirely — crashing the frontend would
			// not interrupt mapped traffic, which defeats the drill.
			return fmt.Errorf("chaos mode does not support -shm")
		}
		return runChaos(store, *addr, *httpAddr, *rdsAddr, chaosOpts{
			drop: *chaosDrop, seed: *chaosSeed,
			restartAfter: *chaosRestart, down: *chaosDown,
		}, logf)
	}

	srv, err := smb.NewServer(store, *addr)
	if err != nil {
		return err
	}
	srv.SetLogf(logf)
	// Server-side spans (srv.dispatch, srv.acc, srv.chunk, srv.wait) record
	// into this ring and export on the metrics endpoint's /debug/trace;
	// trace-negotiating clients get their contexts propagated into it.
	tracer := telemetry.NewTracer(1 << 16)
	srv.SetTracer(tracer)
	fmt.Printf("SMB server listening on tcp %s\n", srv.Addr())

	if *shmPath != "" {
		// Offer the zero-copy path: new segments get memfd backing, the unix
		// control socket carries the fd-pass handshake, and the TCP endpoint
		// advertises the socket so "auto" clients can negotiate it.
		if err := store.EnableShm(); err != nil {
			srv.Close()
			return fmt.Errorf("-shm: %w", err)
		}
		_ = os.Remove(*shmPath) // stale socket from a previous run
		uln, err := net.Listen("unix", *shmPath)
		if err != nil {
			srv.Close()
			return err
		}
		defer os.Remove(*shmPath)
		defer uln.Close()
		srv.SetShmAddr(*shmPath)
		fmt.Printf("SMB server shm control socket on unix %s\n", *shmPath)
		go func() { //lint:ignore goleak accept loop exits when the deferred uln.Close runs at shutdown
			for {
				conn, err := uln.Accept()
				if err != nil {
					return
				}
				go srv.ServeConn(conn)
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	if *rdsAddr != "" {
		ep, err := rds.ListenUDP(*rdsAddr)
		if err != nil {
			srv.Close()
			return err
		}
		// Join the accept loop on shutdown: Wait is registered before
		// Close so the deferred Close unblocks Accept first.
		var rdsWG sync.WaitGroup
		defer rdsWG.Wait()
		defer ep.Close()
		fmt.Printf("SMB server listening on rds/udp %s\n", ep.Addr())
		rdsWG.Add(1)
		go func() {
			defer rdsWG.Done()
			for {
				conn, err := ep.Accept()
				if err != nil {
					return
				}
				go srv.ServeConn(conn)
			}
		}()
	}

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *statsSec > 0 {
		ticker = time.NewTicker(time.Duration(*statsSec) * time.Second)
		tick = ticker.C
		defer ticker.Stop()
	}

	if *httpAddr != "" {
		httpSrv, err := startMetricsHTTP(store, srv, tracer, *httpAddr)
		if err != nil {
			srv.Close()
			return err
		}
		defer httpSrv.Close()
		fmt.Printf("SMB metrics on http://%s/metrics\n", httpSrv.Addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case <-sig:
			fmt.Println("\nshutting down")
			return srv.Close()
		case err := <-serveErr:
			if err == net.ErrClosed {
				return nil
			}
			return err
		case <-tick:
			s := store.Stats()
			fmt.Printf("segments: creates=%d attaches=%d | ops: reads=%d writes=%d accumulates=%d | bytes: read=%d written=%d\n",
				s.Creates, s.Attaches, s.Reads, s.Writes, s.Accumulates, s.BytesRead, s.BytesWrite)
		}
	}
}

// chaosOpts parameterizes the fault-injecting server mode.
type chaosOpts struct {
	drop         float64
	seed         uint64
	restartAfter time.Duration
	down         time.Duration
}

// runChaos serves the store behind the fault-injection toolkit: accepted
// connections get the seeded drop mix, and the whole serving plane can be
// crashed and rebound once mid-run. The Store persists across the cycle —
// this is the process-level drill for the supervised client's reconnect
// path (scripts/check.sh "fault_smoke"). -rds is not supported here: the
// datagram endpoint has no restartable listener seam.
func runChaos(store *smb.Store, addr, httpAddr, rdsAddr string, o chaosOpts, logf func(string, ...any)) error {
	if rdsAddr != "" {
		return fmt.Errorf("chaos mode does not support -rds")
	}
	var inj *faults.Injector
	if o.drop > 0 {
		inj = faults.New(faults.Config{DropRate: o.drop, Seed: o.seed})
	}
	// One tracer outlives the crash/restart cycles — every frontend
	// incarnation records into the same ring, so the merged fleet trace
	// shows spans on both sides of the outage.
	tracer := telemetry.NewTracer(1 << 16)
	factory := func(a string) (faults.Frontend, error) {
		ln, err := net.Listen("tcp", a)
		if err != nil {
			return nil, err
		}
		var accept net.Listener = ln
		if inj != nil {
			accept = inj.WrapListener(ln)
		}
		fe := smb.NewServerFromListener(store, accept)
		fe.SetLogf(logf)
		fe.SetTracer(tracer)
		return fe, nil
	}
	rs, err := faults.NewRestartableServer(addr, factory)
	if err != nil {
		return err
	}
	// Every chaos crash snapshots the flight recorder — the readable
	// post-mortem of what led up to the outage (injected faults included).
	rs.SetDumpPath(eventDumpPath())
	fmt.Printf("SMB server (chaos: drop=%.2f restart-after=%s) listening on tcp %s\n",
		o.drop, o.restartAfter, rs.Addr())
	fmt.Printf("chaos: flight recorder dumps to %s on crash\n", eventDumpPath())

	if httpAddr != "" {
		// No Server handle: the frontend is recreated on restart, so only
		// the store-level families stay truthful.
		httpSrv, err := startMetricsHTTP(store, nil, tracer, httpAddr)
		if err != nil {
			rs.Close()
			return err
		}
		defer httpSrv.Close()
		fmt.Printf("SMB metrics on http://%s/metrics\n", httpSrv.Addr)
	}

	if o.restartAfter > 0 {
		timer := time.AfterFunc(o.restartAfter, func() {
			fmt.Printf("chaos: crashing serving plane for %s\n", o.down)
			if err := rs.CrashFor(o.down); err != nil {
				fmt.Println("chaos: restart failed:", err)
				return
			}
			fmt.Println("chaos: serving plane restarted")
		})
		defer timer.Stop()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nshutting down")
	return rs.Close()
}
