// Command smbserver runs a standalone Soft Memory Box server — the
// dedicated memory server of the paper's testbed. Distributed training
// processes (cmd/shmtrain with -smb, or library users dialing smb.Dial)
// allocate and share remote segments through it.
//
// Usage:
//
//	smbserver -addr 0.0.0.0:7700
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"shmcaffe/internal/rds"
	"shmcaffe/internal/smb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "smbserver:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:7700", "TCP listen address")
		rdsAddr  = flag.String("rds", "", "additionally serve the RDS datagram transport on this UDP address")
		httpAddr = flag.String("http", "", "serve Prometheus metrics on this HTTP address (GET /metrics; JSON at /metrics.json; liveness at /healthz)")
		statsSec = flag.Int("stats", 10, "seconds between traffic stat lines (0 disables)")
	)
	flag.Parse()

	store := smb.NewStore()
	srv, err := smb.NewServer(store, *addr)
	if err != nil {
		return err
	}
	fmt.Printf("SMB server listening on tcp %s\n", srv.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	if *rdsAddr != "" {
		ep, err := rds.ListenUDP(*rdsAddr)
		if err != nil {
			srv.Close()
			return err
		}
		// Join the accept loop on shutdown: Wait is registered before
		// Close so the deferred Close unblocks Accept first.
		var rdsWG sync.WaitGroup
		defer rdsWG.Wait()
		defer ep.Close()
		fmt.Printf("SMB server listening on rds/udp %s\n", ep.Addr())
		rdsWG.Add(1)
		go func() {
			defer rdsWG.Done()
			for {
				conn, err := ep.Accept()
				if err != nil {
					return
				}
				go srv.ServeConn(conn)
			}
		}()
	}

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *statsSec > 0 {
		ticker = time.NewTicker(time.Duration(*statsSec) * time.Second)
		tick = ticker.C
		defer ticker.Stop()
	}

	if *httpAddr != "" {
		httpSrv, err := startMetricsHTTP(store, *httpAddr)
		if err != nil {
			srv.Close()
			return err
		}
		defer httpSrv.Close()
		fmt.Printf("SMB metrics on http://%s/metrics\n", httpSrv.Addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case <-sig:
			fmt.Println("\nshutting down")
			return srv.Close()
		case err := <-serveErr:
			if err == net.ErrClosed {
				return nil
			}
			return err
		case <-tick:
			s := store.Stats()
			fmt.Printf("segments: creates=%d attaches=%d | ops: reads=%d writes=%d accumulates=%d | bytes: read=%d written=%d\n",
				s.Creates, s.Attaches, s.Reads, s.Writes, s.Accumulates, s.BytesRead, s.BytesWrite)
		}
	}
}
