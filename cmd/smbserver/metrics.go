package main

import (
	"encoding/json"
	"net"
	"net/http"

	"shmcaffe/internal/smb"
)

// metricsServer serves the SMB traffic counters as JSON, the operational
// endpoint a deployed memory server exposes to its monitoring.
type metricsServer struct {
	// Addr is the bound address (useful with port 0).
	Addr string
	srv  *http.Server
	ln   net.Listener
}

// metricsPayload is the GET /metrics response body.
type metricsPayload struct {
	Creates     int64 `json:"creates"`
	Attaches    int64 `json:"attaches"`
	Reads       int64 `json:"reads"`
	Writes      int64 `json:"writes"`
	Accumulates int64 `json:"accumulates"`
	BytesRead   int64 `json:"bytesRead"`
	BytesWrite  int64 `json:"bytesWritten"`
}

// startMetricsHTTP binds addr and serves /metrics from store's counters.
func startMetricsHTTP(store *smb.Store, addr string) (*metricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s := store.Stats()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(metricsPayload{
			Creates:     s.Creates,
			Attaches:    s.Attaches,
			Reads:       s.Reads,
			Writes:      s.Writes,
			Accumulates: s.Accumulates,
			BytesRead:   s.BytesRead,
			BytesWrite:  s.BytesWrite,
		})
	})
	ms := &metricsServer{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: mux},
		ln:   ln,
	}
	go ms.srv.Serve(ln)
	return ms, nil
}

// Close stops the HTTP server.
func (m *metricsServer) Close() error { return m.srv.Close() }
