package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"shmcaffe/internal/smb"
	"shmcaffe/internal/telemetry"
)

// promContentType is the Prometheus text exposition format version the
// registry writes.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// metricsServer serves the SMB traffic counters — Prometheus text on
// /metrics (the scrape endpoint a deployed memory server registers with its
// monitoring), the legacy JSON payload on /metrics.json, and a liveness
// probe on /healthz.
type metricsServer struct {
	// Addr is the bound address (useful with port 0).
	Addr string
	srv  *http.Server
	ln   net.Listener
}

// metricsPayload is the JSON metrics response body, kept for pre-Prometheus
// consumers.
type metricsPayload struct {
	Creates     int64 `json:"creates"`
	Attaches    int64 `json:"attaches"`
	Reads       int64 `json:"reads"`
	Writes      int64 `json:"writes"`
	Accumulates int64 `json:"accumulates"`
	BytesRead   int64 `json:"bytesRead"`
	BytesWrite  int64 `json:"bytesWritten"`
}

// wantsJSON reports whether the request's Accept header prefers JSON over
// the text exposition (compat switch for pre-Prometheus consumers that
// scrape /metrics directly).
func wantsJSON(r *http.Request) bool {
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "application/json")
}

// startMetricsHTTP binds addr and serves the store's operational surface.
// It installs the latency histograms on the store, so servers running with
// -http also export smb_*_seconds distributions. A non-nil srv additionally
// exports the connection-health counters (handler errors, reaped sequences,
// live connections); chaos mode passes nil because the frontend — and its
// counters — is recreated on every restart. A non-nil tracer is exported as
// a Chrome trace on /debug/trace (the server-side spans a fleet aggregator
// merges with the workers' traces); the flight recorder is always on
// /debug/events.
func startMetricsHTTP(store *smb.Store, srv *smb.Server, tracer *telemetry.Tracer, addr string) (*metricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	reg := telemetry.NewRegistry()
	store.Instrument(reg)
	if srv != nil {
		srv.Instrument(reg)
	}
	// Clock-offset sample for fleet aggregation (see shmtop): offset ≈
	// reported wallclock − scrape midpoint.
	reg.GaugeFunc("shm_wallclock_unix_nano",
		"this process's wall clock at scrape time (UnixNano)",
		func() float64 { return float64(time.Now().UnixNano()) })

	writeJSON := func(w http.ResponseWriter) {
		s := store.Stats()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(metricsPayload{
			Creates:     s.Creates,
			Attaches:    s.Attaches,
			Reads:       s.Reads,
			Writes:      s.Writes,
			Accumulates: s.Accumulates,
			BytesRead:   s.BytesRead,
			BytesWrite:  s.BytesWrite,
		})
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if wantsJSON(r) {
			writeJSON(w)
			return
		}
		w.Header().Set("Content-Type", promContentType)
		if err := reg.WritePrometheus(w); err != nil {
			// Headers are gone; the scraper sees a short body and retries.
			return
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		// SegmentCount takes the store lock: answering proves the store is
		// not wedged, not just that the HTTP goroutine is alive.
		n := store.SegmentCount()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ok segments=%d\n", n)
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = telemetry.FlightRecorder().WriteJSON(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = tracer.WriteChromeTrace(w)
	})

	ms := &metricsServer{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: mux},
		ln:   ln,
	}
	go ms.srv.Serve(ln)
	return ms, nil
}

// Close stops the HTTP server.
func (m *metricsServer) Close() error { return m.srv.Close() }
