package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"shmcaffe/internal/smb"
	"shmcaffe/internal/telemetry"
)

// traffic generates one create/attach/write/read against store.
func traffic(t *testing.T, store *smb.Store) {
	t.Helper()
	key, err := store.Create("seg", 16)
	if err != nil {
		t.Fatal(err)
	}
	h, err := store.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Write(h, 0, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if err := store.Read(h, 0, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsPrometheus(t *testing.T) {
	store := smb.NewStore()
	ms, err := startMetricsHTTP(store, nil, nil, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	traffic(t, store)

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", ms.Addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != promContentType {
		t.Fatalf("Content-Type %q, want %q", ct, promContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE smb_reads_total counter",
		"smb_reads_total 1",
		"smb_writes_total 1",
		"smb_creates_total 1",
		"smb_segments 1",
		"smb_read_seconds_bucket",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestMetricsJSONCompat: the legacy JSON payload stays reachable both via
// the dedicated path and via content negotiation on /metrics.
func TestMetricsJSONCompat(t *testing.T) {
	store := smb.NewStore()
	ms, err := startMetricsHTTP(store, nil, nil, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	traffic(t, store)

	check := func(resp *http.Response) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("Content-Type %q", ct)
		}
		var payload metricsPayload
		if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
			t.Fatal(err)
		}
		if payload.Creates != 1 || payload.Writes != 1 || payload.Reads != 1 {
			t.Fatalf("payload %+v", payload)
		}
		if payload.BytesRead != 16 || payload.BytesWrite != 16 {
			t.Fatalf("byte counters %+v", payload)
		}
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics.json", ms.Addr))
	if err != nil {
		t.Fatal(err)
	}
	check(resp)

	req, err := http.NewRequest(http.MethodGet, fmt.Sprintf("http://%s/metrics", ms.Addr), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/json")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	check(resp)

	// Non-GET rejected.
	post, err := http.Post(fmt.Sprintf("http://%s/metrics", ms.Addr), "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d", post.StatusCode)
	}
}

// TestMetricsServerCounters: a non-nil server adds the connection-health
// families to the exposition.
func TestMetricsServerCounters(t *testing.T) {
	store := smb.NewStore()
	srv, err := smb.NewServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()
	ms, err := startMetricsHTTP(store, srv, nil, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", ms.Addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"smb_server_conn_errors_total",
		"smb_server_reaped_sequences_total",
		"smb_server_connections",
		"smb_seq_duplicates_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestDebugEndpoints: the observability surface exposes the flight recorder
// as JSON, the server tracer as a loadable Chrome trace, and the wallclock
// gauge shmtop uses for clock-offset estimation.
func TestDebugEndpoints(t *testing.T) {
	store := smb.NewStore()
	tracer := telemetry.NewTracer(256)
	tracer.Begin(1, telemetry.PhaseSrvDispatch).End()
	telemetry.RecordEvent(telemetry.EvConnError, 7, 0, 0)
	ms, err := startMetricsHTTP(store, nil, tracer, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", ms.Addr, path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var events []map[string]any
	if err := json.Unmarshal(get("/debug/events"), &events); err != nil {
		t.Fatalf("/debug/events not a JSON array: %v", err)
	}
	found := false
	for _, ev := range events {
		if ev["kind"] == "conn_error" {
			found = true
		}
	}
	if !found {
		t.Errorf("/debug/events missing the recorded conn_error (got %d events)", len(events))
	}

	trace, err := telemetry.ParseChromeTrace(get("/debug/trace"))
	if err != nil {
		t.Fatalf("/debug/trace not a Chrome trace: %v", err)
	}
	if telemetry.TraceEpochUnixNano(trace) == 0 {
		t.Error("/debug/trace missing clock_epoch metadata")
	}
	spans := 0
	for _, ev := range trace {
		if ev.Ph == "X" && ev.Name == "srv.dispatch" {
			spans++
		}
	}
	if spans != 1 {
		t.Errorf("/debug/trace has %d srv.dispatch spans, want 1", spans)
	}

	if !strings.Contains(string(get("/metrics")), "shm_wallclock_unix_nano") {
		t.Error("exposition missing shm_wallclock_unix_nano")
	}
}

func TestHealthz(t *testing.T) {
	store := smb.NewStore()
	ms, err := startMetricsHTTP(store, nil, nil, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	if _, err := store.Create("seg", 16); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", ms.Addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(body); got != "ok segments=1\n" {
		t.Fatalf("healthz body %q", got)
	}
}
