package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"shmcaffe/internal/smb"
)

func TestMetricsEndpoint(t *testing.T) {
	store := smb.NewStore()
	ms, err := startMetricsHTTP(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	// Generate some traffic.
	key, _ := store.Create("seg", 16)
	h, _ := store.Attach(key)
	store.Write(h, 0, make([]byte, 16))
	store.Read(h, 0, make([]byte, 16))

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", ms.Addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var payload metricsPayload
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.Creates != 1 || payload.Writes != 1 || payload.Reads != 1 {
		t.Fatalf("payload %+v", payload)
	}
	if payload.BytesRead != 16 || payload.BytesWrite != 16 {
		t.Fatalf("byte counters %+v", payload)
	}

	// Non-GET rejected.
	post, err := http.Post(fmt.Sprintf("http://%s/metrics", ms.Addr), "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d", post.StatusCode)
	}
}
