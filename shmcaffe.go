// Package shmcaffe is the public API of the ShmCaffe reproduction: a
// distributed deep-learning platform that shares training parameters
// through a remote shared memory buffer (the Soft Memory Box) instead of a
// parameter server, implementing the SEASGD and Hybrid SGD algorithms of
//
//	Ahn, Kim, Lim, Choi, Mohaisen, Kang.
//	"ShmCaffe: A Distributed Deep Learning Platform with Shared Memory
//	Buffer for HPC Architecture." ICDCS 2018.
//
// The package re-exports the stable surface of the internal packages:
//
//   - The SMB substrate: Store / Server / Client (in-process and TCP).
//   - The SEASGD/HSGD core: Worker, HybridGroup, the elastic update math,
//     and the termination-alignment policies.
//   - The four evaluation platforms behind one Trainer interface.
//   - The performance models that regenerate the paper's timing exhibits.
//   - The neural-network and dataset substrates the functional
//     experiments train on.
//
// Quick start (see examples/quickstart for the runnable version):
//
//	store := shmcaffe.NewStore()
//	world, _ := shmcaffe.NewWorld(4)
//	// one goroutine per worker: NewWorker(...) then Run()
//
// or at the platform level:
//
//	res, err := shmcaffe.Platforms()["shmcaffe-h"].Train(cfg)
package shmcaffe

import (
	"io"

	"shmcaffe/internal/core"
	"shmcaffe/internal/dataset"
	"shmcaffe/internal/mpi"
	"shmcaffe/internal/nn"
	"shmcaffe/internal/perfmodel"
	"shmcaffe/internal/platform"
	"shmcaffe/internal/rds"
	"shmcaffe/internal/smb"
	"shmcaffe/internal/tensor"
)

// ---- Soft Memory Box (paper Sec. III-B) ----

type (
	// Store is the server-side SMB segment table.
	Store = smb.Store
	// SMBServer serves a Store over TCP.
	SMBServer = smb.Server
	// SMBClient is the SMB API: segment lifecycle, Read/Write, Accumulate.
	SMBClient = smb.Client
	// SHMKey identifies a segment for attachment (broadcast by the master).
	SHMKey = smb.SHMKey
	// Handle is an attached client's access key (the RDMA rkey analogue).
	Handle = smb.Handle
	// SegmentNames builds the conventional Fig. 5 segment names.
	SegmentNames = smb.SegmentNames
	// SMBStats counts server-side traffic.
	SMBStats = smb.Stats
)

// NewStore returns an empty SMB segment store.
func NewStore() *Store { return smb.NewStore() }

// NewLocalClient returns an in-process SMB client over store.
func NewLocalClient(store *Store) SMBClient { return smb.NewLocalClient(store) }

// NewSMBServer returns a TCP server around store on addr.
func NewSMBServer(store *Store, addr string) (*SMBServer, error) {
	return smb.NewServer(store, addr)
}

// DialSMB connects to a TCP SMB server.
func DialSMB(addr string) (SMBClient, error) { return smb.Dial(addr) }

// ---- SEASGD / HSGD core (paper Sec. III) ----

type (
	// Worker is one SEASGD training process (Fig. 6).
	Worker = core.Worker
	// WorkerConfig configures a Worker.
	WorkerConfig = core.WorkerConfig
	// RunStats is a worker's outcome with the Eq. (8) timing breakdown.
	RunStats = core.RunStats
	// HybridGroup runs HSGD for one intra-node worker group (Fig. 4).
	HybridGroup = core.HybridGroup
	// HybridGroupConfig configures a HybridGroup.
	HybridGroupConfig = core.HybridGroupConfig
	// GroupStats is a hybrid group's outcome.
	GroupStats = core.GroupStats
	// ElasticConfig carries moving_rate and update_interval.
	ElasticConfig = core.ElasticConfig
	// TerminationPolicy aligns worker end times (Sec. III-E).
	TerminationPolicy = core.TerminationPolicy
	// JobBuffers is a worker's view of the SMB segment layout (Fig. 5).
	JobBuffers = core.JobBuffers
)

// Termination-alignment criteria (paper Sec. III-E).
const (
	StopOnMaster      = core.StopOnMaster
	StopOnFirst       = core.StopOnFirst
	StopOnAverage     = core.StopOnAverage
	StopIndependently = core.StopIndependently
)

// NewWorker bootstraps one SEASGD worker (collective across the MPI world).
func NewWorker(cfg WorkerConfig) (*Worker, error) { return core.NewWorker(cfg) }

// NewHybridGroup bootstraps one HSGD worker group.
func NewHybridGroup(cfg HybridGroupConfig) (*HybridGroup, error) {
	return core.NewHybridGroup(cfg)
}

// DefaultElasticConfig returns the paper's hyper-parameters (α=0.2, k=1).
func DefaultElasticConfig() ElasticConfig { return core.DefaultElasticConfig() }

// ---- MPI runtime ----

type (
	// World is an in-process MPI communicator.
	World = mpi.World
	// Comm is one rank's endpoint.
	Comm = mpi.Comm
)

// NewWorld creates an n-rank communicator.
func NewWorld(n int) (*World, error) { return mpi.NewWorld(n) }

// ---- Platforms (paper Sec. IV-C) ----

type (
	// Trainer is one deep-learning platform.
	Trainer = platform.Trainer
	// TrainConfig describes one training run.
	TrainConfig = platform.Config
	// TrainResult is one run's outcome (convergence curve).
	TrainResult = platform.Result
	// EpochPoint is one point of a convergence curve.
	EpochPoint = platform.EpochPoint
	// ModelBuilder constructs a model replica.
	ModelBuilder = platform.ModelBuilder
)

// Platforms returns the five platforms keyed by short name: caffe,
// caffe-mpi, mpicaffe, shmcaffe-a, shmcaffe-h.
func Platforms() map[string]Trainer { return platform.Registry() }

// ---- Neural networks & solver (the Caffe stand-in) ----

type (
	// Network is a sequential model with Caffe-style flat weight vectors.
	Network = nn.Network
	// SolverConfig mirrors the Caffe SGD hyper-parameters.
	SolverConfig = nn.SolverConfig
	// SGDSolver applies momentum SGD (Eq. 2).
	SGDSolver = nn.SGDSolver
	// ModelProfile carries a paper model's size and compute time.
	ModelProfile = nn.Profile
)

// MLP builds a two-hidden-layer perceptron.
func MLP(name string, features, hidden, classes int) (*Network, error) {
	return nn.MLP(name, features, hidden, classes)
}

// SmallCNN builds a LeNet-style CNN for c×size×size inputs.
func SmallCNN(name string, channels, size, classes int, seed uint64) (*Network, error) {
	return nn.SmallCNN(name, channels, size, classes, seed)
}

// DefaultSolverConfig returns the paper's solver settings scaled for the
// functional models.
func DefaultSolverConfig() SolverConfig { return nn.DefaultSolverConfig() }

// ParseNetSpec builds a network from the declarative netspec format (the
// prototxt stand-in); see internal/nn.ParseNetSpec for the grammar.
func ParseNetSpec(src string) (*Network, error) { return nn.ParseNetSpec(src) }

// SaveCheckpoint writes a network's weights as a Caffe-style snapshot.
func SaveCheckpoint(w io.Writer, net *Network) error { return nn.SaveCheckpoint(w, net) }

// LoadCheckpoint restores a snapshot into a same-architecture replica.
func LoadCheckpoint(r io.Reader, net *Network) (string, error) {
	return nn.LoadCheckpoint(r, net)
}

// PaperModels returns the four evaluation model profiles (Table IV).
func PaperModels() []ModelProfile { return nn.PaperModels() }

// ---- Datasets ----

type (
	// Dataset is a finite labeled corpus.
	Dataset = dataset.Dataset
	// GaussianConfig parameterizes the Gaussian-cluster corpus.
	GaussianConfig = dataset.GaussianConfig
	// Loader draws shuffled minibatches.
	Loader = dataset.Loader
	// Batch is one minibatch.
	Batch = dataset.Batch
)

// NewGaussianDataset builds the synthetic classification corpus.
func NewGaussianDataset(cfg GaussianConfig) (Dataset, error) { return dataset.NewGaussian(cfg) }

// NewPatternDataset builds the patterned image corpus (CNN workloads).
func NewPatternDataset(classes, perClass, channels, size int, noise float64, seed uint64) (Dataset, error) {
	return dataset.NewPatternImages(classes, perClass, channels, size, noise, seed)
}

// SplitDataset divides a corpus into train/validation.
func SplitDataset(ds Dataset, trainFrac float64) (train, val Dataset, err error) {
	return dataset.Split(ds, trainFrac)
}

// ShardDataset returns worker rank's disjoint partition out of n.
func ShardDataset(ds Dataset, rank, n int) (Dataset, error) { return dataset.NewShard(ds, rank, n) }

// NewLoader returns a shuffling minibatch loader.
func NewLoader(ds Dataset, batchSize int, seed uint64) (*Loader, error) {
	return dataset.NewLoader(ds, batchSize, seed)
}

// NewRNG returns a deterministic random generator for weight init.
func NewRNG(seed uint64) *tensor.RNG { return tensor.NewRNG(seed) }

// AugmentConfig selects train-time image augmentations.
type AugmentConfig = dataset.AugmentConfig

// NewAugmentedDataset wraps an image corpus with random train-time
// transforms (flip/shift/noise).
func NewAugmentedDataset(base Dataset, cfg AugmentConfig) (Dataset, error) {
	return dataset.NewAugmented(base, cfg)
}

// SaveCorpus writes a dataset as a file-backed record store (the LMDB
// pipeline stand-in); OpenCorpus serves samples from such a file.
func SaveCorpus(ds Dataset, path string) error { return dataset.SaveToDB(ds, path) }

// OpenCorpus opens a corpus written by SaveCorpus. The returned dataset
// must be closed by the caller.
func OpenCorpus(path string) (*dataset.DBDataset, error) { return dataset.OpenDB(path) }

// ---- RDS transport (the paper's communication module stand-in) ----

type (
	// RDSEndpoint multiplexes reliable datagram connections over one UDP
	// socket.
	RDSEndpoint = rds.Endpoint
	// RDSConn is one reliable ordered stream (io.ReadWriteCloser).
	RDSConn = rds.Conn
)

// ListenRDS binds a reliable-datagram endpoint on a UDP address.
func ListenRDS(addr string) (*RDSEndpoint, error) { return rds.ListenUDP(addr) }

// NewSMBStreamClient wraps any established stream connection (e.g. an
// RDSConn) as an SMB client.
func NewSMBStreamClient(rwc io.ReadWriteCloser) SMBClient { return smb.NewStreamClient(rwc) }

// ---- Performance models (paper Sec. IV timing exhibits) ----

type (
	// Hardware models the paper's testbed.
	Hardware = perfmodel.Hardware
	// IterBreakdown is the Eq. (8) per-iteration decomposition.
	IterBreakdown = perfmodel.IterBreakdown
	// SEASGDOptions select design-point ablations.
	SEASGDOptions = perfmodel.SEASGDOptions
)

// DefaultHardware returns the calibrated testbed model.
func DefaultHardware() Hardware { return perfmodel.DefaultHardware() }

// SimulateSEASGD models a ShmCaffe-A configuration's iteration time.
func SimulateSEASGD(p ModelProfile, workers, iters int, hw Hardware) (IterBreakdown, error) {
	return perfmodel.SimulateSEASGD(p, workers, iters, hw)
}

// SimulateHSGD models a ShmCaffe-H configuration's iteration time.
func SimulateHSGD(p ModelProfile, groupSizes []int, iters int, hw Hardware) (IterBreakdown, error) {
	return perfmodel.SimulateHSGD(p, groupSizes, iters, hw)
}

// SimulateCaffe models single-node multi-GPU Caffe.
func SimulateCaffe(p ModelProfile, gpus, iters int, hw Hardware) (IterBreakdown, error) {
	return perfmodel.SimulateCaffe(p, gpus, iters, hw)
}

// SimulateCaffeMPI models Inspur Caffe-MPI's star topology.
func SimulateCaffeMPI(p ModelProfile, workers, iters int, hw Hardware) (IterBreakdown, error) {
	return perfmodel.SimulateCaffeMPI(p, workers, iters, hw)
}

// SimulateMPICaffe models the MPI_Allreduce SSGD baseline.
func SimulateMPICaffe(p ModelProfile, workers, iters int, hw Hardware) (IterBreakdown, error) {
	return perfmodel.SimulateMPICaffe(p, workers, iters, hw)
}

// SimulateSMBBandwidth reproduces the Fig. 7 bandwidth experiment.
func SimulateSMBBandwidth(n int, totalBytes, opBytes float64, hw Hardware) (float64, error) {
	return perfmodel.SimulateSMBBandwidth(n, totalBytes, opBytes, hw)
}
