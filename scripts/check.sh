#!/bin/sh
# check.sh — the repo's verification gate, in two tiers.
#
#   Tier 1 (correctness): build + full test suite + shmlint against the
#   committed baseline (.shmlint-baseline.json — only NEW findings fail).
#   Must always pass; CI and the growth driver treat a tier-1 failure as
#   a broken tree.
#
#   Tier 2 (analysis): go vet, the -race stress suite over the
#   concurrency core, and a short deterministic smoke run of every fuzz
#   target (replays testdata/fuzz corpora plus 100 fresh execs each).
#
# Usage: scripts/check.sh [tier1|tier2|all]   (default: all)
set -eu

cd "$(dirname "$0")/.."

tier="${1:-all}"

tier1() {
	echo "== tier 1: build =="
	go build ./...
	echo "== tier 1: tests =="
	go test ./...
	echo "== tier 1: build (noasm) =="
	go build -tags noasm ./...
	echo "== tier 1: tests (noasm — portable float32 kernels) =="
	# Second pass with the assembly backend compiled out: the portable
	# unrolled kernels must pass the same suite bitwise (DESIGN.md §14).
	go test -tags noasm ./...
	echo "== tier 1: shmlint (baseline-aware) =="
	go run ./cmd/shmlint -baseline .shmlint-baseline.json ./...
}

tier2() {
	echo "== tier 2: go vet =="
	go vet ./...
	echo "== tier 2: race stress (smb, ps, core, rds, telemetry) =="
	go test -race ./internal/smb ./internal/ps ./internal/core ./internal/rds ./internal/telemetry
	echo "== tier 2: fuzz smoke (100 execs per target) =="
	# go test accepts exactly one -fuzz pattern per invocation.
	for target in FuzzDispatch FuzzFrameRoundTrip FuzzReadFrame; do
		go test -run='^$' -fuzz="^${target}\$" -fuzztime=100x ./internal/smb
	done
	for target in FuzzParseNetSpec FuzzLoadCheckpoint; do
		go test -run='^$' -fuzz="^${target}\$" -fuzztime=100x ./internal/nn
	done
	go test -run='^$' -fuzz='^FuzzFusedKernels$' -fuzztime=100x ./internal/tensor
	echo "== tier 2: bench smoke (1 iteration per benchmark) =="
	go test -run='^$' -bench=. -benchtime=1x -benchmem \
		./internal/parallel ./internal/tensor ./internal/smb
	echo "== tier 2: allocation regression guard =="
	# Pins the zero-alloc contract of the SMB hot path (Store and
	# StreamClient Read/Write/Accumulate, the chunked WRITE+ACCUMULATE
	# sequence, pooled wire scratch), the fused worker exchange step, and
	# the pooled parallel.For/ForRanger dispatch.
	go test -run='TestSteadyStateZeroAlloc|TestReadInt64Slots' -count=1 ./internal/smb
	go test -run='TestRecordingZeroAlloc|TestSpanZeroAlloc|TestEventRecordZeroAlloc' -count=1 ./internal/telemetry
	go test -run='TestFusedStepAndStreamZeroAlloc' -count=1 ./internal/core
	go test -run='TestForRangerZeroAlloc|TestForZeroAlloc|TestFreelist' -count=1 ./internal/parallel
	go test -run='ZeroAllocAcrossGC|TestDispatchedKernelsZeroAlloc' -count=1 ./internal/tensor
	echo "== tier 2: pipelined-transfer smoke (chunked WRITE+ACCUMULATE over TCP) =="
	go test -run='TestWriteAccumulateTCP|TestChunkedInterleavedClients' -count=1 ./internal/smb
	echo "== tier 2: telemetry smoke (2-worker -telemetry run) =="
	telemetry_smoke
	echo "== tier 2: fault-injection smoke (chaos server + reconnecting workers) =="
	fault_smoke
	echo "== tier 2: observability smoke (chaos cluster scraped by shmtop) =="
	obs_smoke
}

# telemetry_smoke runs a short 2-worker shmtrain with the telemetry surface
# enabled, scrapes /metrics during the linger window, and validates the
# emitted Chrome trace through benchtables -trace.
telemetry_smoke() {
	tmpdir="$(mktemp -d)"
	trap 'rm -rf "$tmpdir"' EXIT
	go build -o "$tmpdir/shmtrain" ./cmd/shmtrain
	go build -o "$tmpdir/benchtables" ./cmd/benchtables
	"$tmpdir/shmtrain" -platform shmcaffe-a -workers 2 -epochs 2 -per-class 40 \
		-telemetry 127.0.0.1:0 -trace-out "$tmpdir/trace.json" \
		-telemetry-linger 8s >"$tmpdir/train.log" 2>&1 &
	train_pid=$!

	# Wait for the telemetry URL to appear in the log.
	url=""
	for _ in $(seq 1 100); do
		url="$(sed -n 's#.*telemetry listening on http://\([^ ]*\).*#\1#p' "$tmpdir/train.log" | head -1)"
		[ -n "$url" ] && break
		sleep 0.1
	done
	if [ -z "$url" ]; then
		echo "telemetry smoke: no listening URL in shmtrain output" >&2
		cat "$tmpdir/train.log" >&2
		kill "$train_pid" 2>/dev/null || true
		return 1
	fi

	# Scrape until the run has recorded both acceptance families.
	ok=""
	for _ in $(seq 1 100); do
		if curl -fsS "http://$url/metrics" >"$tmpdir/metrics.txt" 2>/dev/null &&
			grep -q 'smb_accumulate_seconds_bucket' "$tmpdir/metrics.txt" &&
			grep -q 'seasgd_t1_staleness_iterations_count' "$tmpdir/metrics.txt"; then
			ok=1
			break
		fi
		sleep 0.1
	done
	if [ -z "$ok" ]; then
		echo "telemetry smoke: /metrics never carried the acceptance series" >&2
		cat "$tmpdir/metrics.txt" >&2 || true
		kill "$train_pid" 2>/dev/null || true
		return 1
	fi

	wait "$train_pid"
	# The trace must parse and contain compute spans.
	"$tmpdir/benchtables" -trace "$tmpdir/trace.json" | grep -q 'T4+T5'
	echo "telemetry smoke: OK"
}

# clean_smoke removes whichever smoke tmpdirs exist; EXIT-trap safe under
# set -u even when only one smoke ran.
clean_smoke() {
	[ -n "${tmpdir:-}" ] && rm -rf "$tmpdir"
	[ -n "${tmpdir2:-}" ] && rm -rf "$tmpdir2"
	[ -n "${tmpdir3:-}" ] && rm -rf "$tmpdir3"
	:
}

# fault_smoke is the ISSUE's acceptance drill at process level: the in-repo
# fault-injection tests first, then a real smbserver in chaos mode (seeded
# connection drops + one crash/restart of the serving plane) with two
# shmtrain worker processes training through it. Survival criteria: the
# server logs the restart, both workers reconnect and run to completion.
fault_smoke() {
	go test -run 'TestFaultyTrainingRunAcceptance|TestMasterCrashSurvivorsReElect|TestHybridGroupShrinksPastFailedMember' -count=1 ./internal/core
	go test -run 'TestSupervisedExactlyOnceUnderDrops|TestSupervisedReconnectAcrossRestart|TestWaitUpdateServerDiesMidWait' -count=1 ./internal/smb

	tmpdir2="$(mktemp -d)"
	trap 'clean_smoke' EXIT
	go build -o "$tmpdir2/smbserver" ./cmd/smbserver
	go build -o "$tmpdir2/shmtrain" ./cmd/shmtrain

	"$tmpdir2/smbserver" -addr 127.0.0.1:0 -stats 0 \
		-chaos-drop 0.005 -chaos-seed 11 \
		-chaos-restart-after 500ms -chaos-down 250ms \
		>"$tmpdir2/server.log" 2>&1 &
	server_pid=$!

	smb=""
	for _ in $(seq 1 100); do
		smb="$(sed -n 's/.*listening on tcp \([0-9.:]*\).*/\1/p' "$tmpdir2/server.log" | head -1)"
		[ -n "$smb" ] && break
		sleep 0.1
	done
	if [ -z "$smb" ]; then
		echo "fault smoke: smbserver never reported its address" >&2
		cat "$tmpdir2/server.log" >&2
		kill "$server_pid" 2>/dev/null || true
		return 1
	fi

	"$tmpdir2/shmtrain" -rank 0 -world 2 -smb "$smb" -job faultdrill \
		-epochs 150 -smb-timeout 5s -liveness-timeout 10s \
		>"$tmpdir2/w0.log" 2>&1 &
	w0_pid=$!
	"$tmpdir2/shmtrain" -rank 1 -world 2 -smb "$smb" -job faultdrill \
		-epochs 150 -smb-timeout 5s -liveness-timeout 10s \
		>"$tmpdir2/w1.log" 2>&1 &
	w1_pid=$!

	fail=""
	wait "$w0_pid" || fail="worker 0 exited nonzero"
	wait "$w1_pid" || fail="worker 1 exited nonzero"
	kill "$server_pid" 2>/dev/null || true
	wait "$server_pid" 2>/dev/null || true

	if [ -n "$fail" ]; then
		echo "fault smoke: $fail" >&2
		tail -n 5 "$tmpdir2/w0.log" "$tmpdir2/w1.log" "$tmpdir2/server.log" >&2
		return 1
	fi
	for r in 0 1; do
		if ! grep -q "worker $r finished" "$tmpdir2/w$r.log"; then
			echo "fault smoke: worker $r never reported completion" >&2
			cat "$tmpdir2/w$r.log" >&2
			return 1
		fi
	done
	if ! grep -q 'chaos: serving plane restarted' "$tmpdir2/server.log"; then
		echo "fault smoke: training finished before the chaos restart fired; nothing was proven" >&2
		cat "$tmpdir2/server.log" >&2
		return 1
	fi
	echo "fault smoke: OK (workers survived $(grep -c 'smb:' "$tmpdir2/server.log" || true) injected conn failures + 1 restart)"
}

# obs_smoke is ISSUE 8's acceptance drill: a 2-worker chaos cluster with the
# full observability surface up (server /metrics+/debug/trace via -http,
# workers via -telemetry), scraped by shmtop -snapshot. Proves (a) the merged
# cross-node trace stitches a worker push span to its server-side child —
# cross_node_chains >= 1 — and (b) the chaos crash dumped a readable flight
# record that includes the injected faults.
obs_smoke() {
	tmpdir3="$(mktemp -d)"
	trap 'clean_smoke' EXIT
	go build -o "$tmpdir3/smbserver" ./cmd/smbserver
	go build -o "$tmpdir3/shmtrain" ./cmd/shmtrain
	go build -o "$tmpdir3/shmtop" ./cmd/shmtop

	TMPDIR="$tmpdir3" "$tmpdir3/smbserver" -addr 127.0.0.1:0 -http 127.0.0.1:0 -stats 0 \
		-chaos-drop 0.02 -chaos-seed 7 \
		-chaos-restart-after 1s -chaos-down 250ms \
		>"$tmpdir3/server.log" 2>&1 &
	server_pid=$!

	smb="" http=""
	for _ in $(seq 1 100); do
		smb="$(sed -n 's/.*listening on tcp \([0-9.:]*\).*/\1/p' "$tmpdir3/server.log" | head -1)"
		http="$(sed -n 's#.*SMB metrics on http://\([0-9.:]*\)/metrics.*#\1#p' "$tmpdir3/server.log" | head -1)"
		[ -n "$smb" ] && [ -n "$http" ] && break
		sleep 0.1
	done
	if [ -z "$smb" ] || [ -z "$http" ]; then
		echo "obs smoke: smbserver never reported tcp + http addresses" >&2
		cat "$tmpdir3/server.log" >&2
		kill "$server_pid" 2>/dev/null || true
		return 1
	fi

	for r in 0 1; do
		"$tmpdir3/shmtrain" -rank "$r" -world 2 -smb "$smb" -job obsdrill \
			-epochs 150 -smb-timeout 5s -liveness-timeout 10s \
			-telemetry 127.0.0.1:0 -telemetry-linger 15s \
			>"$tmpdir3/w$r.log" 2>&1 &
		eval "w${r}_pid=\$!"
	done

	# Wait for both workers to finish training; their telemetry servers stay
	# up through the linger window, which is when shmtop scrapes.
	done_workers=""
	for _ in $(seq 1 600); do
		if grep -q 'worker 0 finished' "$tmpdir3/w0.log" &&
			grep -q 'worker 1 finished' "$tmpdir3/w1.log"; then
			done_workers=1
			break
		fi
		sleep 0.1
	done
	if [ -z "$done_workers" ]; then
		echo "obs smoke: workers never finished" >&2
		tail -n 5 "$tmpdir3/w0.log" "$tmpdir3/w1.log" "$tmpdir3/server.log" >&2
		kill "$w0_pid" "$w1_pid" "$server_pid" 2>/dev/null || true
		return 1
	fi

	w0url="$(sed -n 's#.*telemetry listening on http://\([^ ]*\).*#\1#p' "$tmpdir3/w0.log" | head -1)"
	w1url="$(sed -n 's#.*telemetry listening on http://\([^ ]*\).*#\1#p' "$tmpdir3/w1.log" | head -1)"
	if [ -z "$w0url" ] || [ -z "$w1url" ]; then
		echo "obs smoke: workers never reported telemetry URLs" >&2
		kill "$w0_pid" "$w1_pid" "$server_pid" 2>/dev/null || true
		return 1
	fi

	"$tmpdir3/shmtop" -nodes "server=$http,worker0=$w0url,worker1=$w1url" \
		-snapshot "$tmpdir3/fleet.json" -trace-out "$tmpdir3/fleet-trace.json" \
		>"$tmpdir3/shmtop.log" 2>&1 || {
		echo "obs smoke: shmtop failed" >&2
		cat "$tmpdir3/shmtop.log" >&2
		kill "$w0_pid" "$w1_pid" "$server_pid" 2>/dev/null || true
		return 1
	}

	wait "$w0_pid" "$w1_pid" || true
	kill "$server_pid" 2>/dev/null || true
	wait "$server_pid" 2>/dev/null || true

	# (a) The merged trace must contain at least one cross-process span chain.
	chains="$(sed -n 's/.*"cross_node_chains": \([0-9]*\).*/\1/p' "$tmpdir3/fleet.json" | head -1)"
	if [ -z "$chains" ] || [ "$chains" -lt 1 ]; then
		echo "obs smoke: merged trace has no cross-node span chains (got '${chains:-none}')" >&2
		cat "$tmpdir3/fleet.json" >&2
		return 1
	fi
	# The merged trace file must load as a trace and name both sides.
	grep -q '"worker0"' "$tmpdir3/fleet-trace.json" || {
		echo "obs smoke: merged trace missing worker0 process" >&2
		return 1
	}
	grep -q '"server"' "$tmpdir3/fleet-trace.json" || {
		echo "obs smoke: merged trace missing server process" >&2
		return 1
	}

	# (b) The chaos crash dumped a readable flight record with the injected
	# faults and the crash marker (smbserver wrote it under TMPDIR).
	dump="$(sed -n 's/.*flight recorder dumps to \([^ ]*\) on crash.*/\1/p' "$tmpdir3/server.log" | head -1)"
	if [ -z "$dump" ] || [ ! -r "$dump" ]; then
		echo "obs smoke: chaos crash left no readable dump at '${dump:-?}'" >&2
		cat "$tmpdir3/server.log" >&2
		return 1
	fi
	grep -q 'chaos_crash' "$dump" || {
		echo "obs smoke: dump missing the chaos_crash event" >&2
		cat "$dump" >&2
		return 1
	}
	grep -q 'fault_injected' "$dump" || {
		echo "obs smoke: dump missing injected-fault events" >&2
		cat "$dump" >&2
		return 1
	}
	echo "obs smoke: OK ($chains cross-node span chains; crash dump: $(grep -c 'fault_injected' "$dump") injected faults)"
}

case "$tier" in
tier1) tier1 ;;
tier2) tier2 ;;
all)
	tier1
	tier2
	;;
*)
	echo "usage: $0 [tier1|tier2|all]" >&2
	exit 2
	;;
esac

echo "check.sh: OK ($tier)"
