#!/bin/sh
# check.sh — the repo's verification gate, in two tiers.
#
#   Tier 1 (correctness): build + full test suite + shmlint against the
#   committed baseline (.shmlint-baseline.json — only NEW findings fail).
#   Must always pass; CI and the growth driver treat a tier-1 failure as
#   a broken tree.
#
#   Tier 2 (analysis): go vet, the -race stress suite over the
#   concurrency core, and a short deterministic smoke run of every fuzz
#   target (replays testdata/fuzz corpora plus 100 fresh execs each).
#
# Usage: scripts/check.sh [tier1|tier2|all]   (default: all)
set -eu

cd "$(dirname "$0")/.."

tier="${1:-all}"

tier1() {
	echo "== tier 1: build =="
	go build ./...
	echo "== tier 1: tests =="
	go test ./...
	echo "== tier 1: build (noasm) =="
	go build -tags noasm ./...
	echo "== tier 1: tests (noasm — portable float32 kernels) =="
	# Second pass with the assembly backend compiled out: the portable
	# unrolled kernels must pass the same suite bitwise (DESIGN.md §14).
	go test -tags noasm ./...
	echo "== tier 1: build (noshm) =="
	go build -tags noshm ./...
	echo "== tier 1: tests (noshm — shared-memory transport compiled out) =="
	# The smb suite must pass with the mmap transport stubbed: shm tests
	# skip, every wire path still works, and auto-negotiation falls back.
	go test -tags noshm ./internal/smb
	echo "== tier 1: shmlint (baseline-aware) =="
	go run ./cmd/shmlint -baseline .shmlint-baseline.json ./...
}

tier2() {
	echo "== tier 2: go vet =="
	go vet ./...
	echo "== tier 2: race stress (smb, ps, core, rds, telemetry) =="
	go test -race ./internal/smb ./internal/ps ./internal/core ./internal/rds ./internal/telemetry
	echo "== tier 2: fuzz smoke (100 execs per target) =="
	# go test accepts exactly one -fuzz pattern per invocation.
	for target in FuzzDispatch FuzzFrameRoundTrip FuzzReadFrame; do
		go test -run='^$' -fuzz="^${target}\$" -fuzztime=100x ./internal/smb
	done
	for target in FuzzParseNetSpec FuzzLoadCheckpoint; do
		go test -run='^$' -fuzz="^${target}\$" -fuzztime=100x ./internal/nn
	done
	go test -run='^$' -fuzz='^FuzzFusedKernels$' -fuzztime=100x ./internal/tensor
	echo "== tier 2: bench smoke (1 iteration per benchmark) =="
	go test -run='^$' -bench=. -benchtime=1x -benchmem \
		./internal/parallel ./internal/tensor ./internal/smb
	echo "== tier 2: allocation regression guard =="
	# Pins the zero-alloc contract of the SMB hot path (Store and
	# StreamClient Read/Write/Accumulate, the chunked WRITE+ACCUMULATE
	# sequence, pooled wire scratch), the fused worker exchange step, and
	# the pooled parallel.For/ForRanger dispatch.
	go test -run='TestSteadyStateZeroAlloc|TestReadInt64Slots|TestSnapReadZeroAlloc' -count=1 ./internal/smb
	go test -run='TestRecordingZeroAlloc|TestSpanZeroAlloc|TestEventRecordZeroAlloc' -count=1 ./internal/telemetry
	go test -run='TestFusedStepAndStreamZeroAlloc' -count=1 ./internal/core
	go test -run='TestForRangerZeroAlloc|TestForZeroAlloc|TestFreelist' -count=1 ./internal/parallel
	go test -run='ZeroAllocAcrossGC|TestDispatchedKernelsZeroAlloc' -count=1 ./internal/tensor
	echo "== tier 2: pipelined-transfer smoke (chunked WRITE+ACCUMULATE over TCP) =="
	go test -run='TestWriteAccumulateTCP|TestChunkedInterleavedClients' -count=1 ./internal/smb
	echo "== tier 2: telemetry smoke (2-worker -telemetry run) =="
	telemetry_smoke
	echo "== tier 2: fault-injection smoke (chaos server + reconnecting workers) =="
	fault_smoke
	echo "== tier 2: observability smoke (chaos cluster scraped by shmtop) =="
	obs_smoke
	echo "== tier 2: shm smoke (zero-copy transport negotiation + cross-transport determinism) =="
	shm_smoke
	echo "== tier 2: serve smoke (snapshot-fed inference frontend under a training run) =="
	serve_smoke
}

# telemetry_smoke runs a short 2-worker shmtrain with the telemetry surface
# enabled, scrapes /metrics during the linger window, and validates the
# emitted Chrome trace through benchtables -trace.
telemetry_smoke() {
	tmpdir="$(mktemp -d)"
	trap 'rm -rf "$tmpdir"' EXIT
	go build -o "$tmpdir/shmtrain" ./cmd/shmtrain
	go build -o "$tmpdir/benchtables" ./cmd/benchtables
	"$tmpdir/shmtrain" -platform shmcaffe-a -workers 2 -epochs 2 -per-class 40 \
		-telemetry 127.0.0.1:0 -trace-out "$tmpdir/trace.json" \
		-telemetry-linger 8s >"$tmpdir/train.log" 2>&1 &
	train_pid=$!

	# Wait for the telemetry URL to appear in the log.
	url=""
	for _ in $(seq 1 100); do
		url="$(sed -n 's#.*telemetry listening on http://\([^ ]*\).*#\1#p' "$tmpdir/train.log" | head -1)"
		[ -n "$url" ] && break
		sleep 0.1
	done
	if [ -z "$url" ]; then
		echo "telemetry smoke: no listening URL in shmtrain output" >&2
		cat "$tmpdir/train.log" >&2
		kill "$train_pid" 2>/dev/null || true
		return 1
	fi

	# Scrape until the run has recorded both acceptance families.
	ok=""
	for _ in $(seq 1 100); do
		if curl -fsS "http://$url/metrics" >"$tmpdir/metrics.txt" 2>/dev/null &&
			grep -q 'smb_accumulate_seconds_bucket' "$tmpdir/metrics.txt" &&
			grep -q 'seasgd_t1_staleness_iterations_count' "$tmpdir/metrics.txt"; then
			ok=1
			break
		fi
		sleep 0.1
	done
	if [ -z "$ok" ]; then
		echo "telemetry smoke: /metrics never carried the acceptance series" >&2
		cat "$tmpdir/metrics.txt" >&2 || true
		kill "$train_pid" 2>/dev/null || true
		return 1
	fi

	wait "$train_pid"
	# The trace must parse and contain compute spans.
	"$tmpdir/benchtables" -trace "$tmpdir/trace.json" | grep -q 'T4+T5'
	echo "telemetry smoke: OK"
}

# clean_smoke removes whichever smoke tmpdirs exist; EXIT-trap safe under
# set -u even when only one smoke ran.
clean_smoke() {
	[ -n "${tmpdir:-}" ] && rm -rf "$tmpdir"
	[ -n "${tmpdir2:-}" ] && rm -rf "$tmpdir2"
	[ -n "${tmpdir3:-}" ] && rm -rf "$tmpdir3"
	[ -n "${tmpdir4:-}" ] && rm -rf "$tmpdir4"
	[ -n "${tmpdir5:-}" ] && rm -rf "$tmpdir5"
	:
}

# fault_smoke is the ISSUE's acceptance drill at process level: the in-repo
# fault-injection tests first, then a real smbserver in chaos mode (seeded
# connection drops + one crash/restart of the serving plane) with two
# shmtrain worker processes training through it. Survival criteria: the
# server logs the restart, both workers reconnect and run to completion.
fault_smoke() {
	go test -run 'TestFaultyTrainingRunAcceptance|TestMasterCrashSurvivorsReElect|TestHybridGroupShrinksPastFailedMember' -count=1 ./internal/core
	go test -run 'TestSupervisedExactlyOnceUnderDrops|TestSupervisedReconnectAcrossRestart|TestWaitUpdateServerDiesMidWait' -count=1 ./internal/smb

	tmpdir2="$(mktemp -d)"
	trap 'clean_smoke' EXIT
	go build -o "$tmpdir2/smbserver" ./cmd/smbserver
	go build -o "$tmpdir2/shmtrain" ./cmd/shmtrain

	"$tmpdir2/smbserver" -addr 127.0.0.1:0 -stats 0 \
		-chaos-drop 0.005 -chaos-seed 11 \
		-chaos-restart-after 500ms -chaos-down 250ms \
		>"$tmpdir2/server.log" 2>&1 &
	server_pid=$!

	smb=""
	for _ in $(seq 1 100); do
		smb="$(sed -n 's/.*listening on tcp \([0-9.:]*\).*/\1/p' "$tmpdir2/server.log" | head -1)"
		[ -n "$smb" ] && break
		sleep 0.1
	done
	if [ -z "$smb" ]; then
		echo "fault smoke: smbserver never reported its address" >&2
		cat "$tmpdir2/server.log" >&2
		kill "$server_pid" 2>/dev/null || true
		return 1
	fi

	"$tmpdir2/shmtrain" -rank 0 -world 2 -smb "$smb" -job faultdrill \
		-epochs 150 -smb-timeout 5s -liveness-timeout 10s \
		>"$tmpdir2/w0.log" 2>&1 &
	w0_pid=$!
	"$tmpdir2/shmtrain" -rank 1 -world 2 -smb "$smb" -job faultdrill \
		-epochs 150 -smb-timeout 5s -liveness-timeout 10s \
		>"$tmpdir2/w1.log" 2>&1 &
	w1_pid=$!

	fail=""
	wait "$w0_pid" || fail="worker 0 exited nonzero"
	wait "$w1_pid" || fail="worker 1 exited nonzero"
	kill "$server_pid" 2>/dev/null || true
	wait "$server_pid" 2>/dev/null || true

	if [ -n "$fail" ]; then
		echo "fault smoke: $fail" >&2
		tail -n 5 "$tmpdir2/w0.log" "$tmpdir2/w1.log" "$tmpdir2/server.log" >&2
		return 1
	fi
	for r in 0 1; do
		if ! grep -q "worker $r finished" "$tmpdir2/w$r.log"; then
			echo "fault smoke: worker $r never reported completion" >&2
			cat "$tmpdir2/w$r.log" >&2
			return 1
		fi
	done
	if ! grep -q 'chaos: serving plane restarted' "$tmpdir2/server.log"; then
		echo "fault smoke: training finished before the chaos restart fired; nothing was proven" >&2
		cat "$tmpdir2/server.log" >&2
		return 1
	fi
	echo "fault smoke: OK (workers survived $(grep -c 'smb:' "$tmpdir2/server.log" || true) injected conn failures + 1 restart)"
}

# obs_smoke is ISSUE 8's acceptance drill: a 2-worker chaos cluster with the
# full observability surface up (server /metrics+/debug/trace via -http,
# workers via -telemetry), scraped by shmtop -snapshot. Proves (a) the merged
# cross-node trace stitches a worker push span to its server-side child —
# cross_node_chains >= 1 — and (b) the chaos crash dumped a readable flight
# record that includes the injected faults.
obs_smoke() {
	tmpdir3="$(mktemp -d)"
	trap 'clean_smoke' EXIT
	go build -o "$tmpdir3/smbserver" ./cmd/smbserver
	go build -o "$tmpdir3/shmtrain" ./cmd/shmtrain
	go build -o "$tmpdir3/shmtop" ./cmd/shmtop

	TMPDIR="$tmpdir3" "$tmpdir3/smbserver" -addr 127.0.0.1:0 -http 127.0.0.1:0 -stats 0 \
		-chaos-drop 0.02 -chaos-seed 7 \
		-chaos-restart-after 1s -chaos-down 250ms \
		>"$tmpdir3/server.log" 2>&1 &
	server_pid=$!

	smb="" http=""
	for _ in $(seq 1 100); do
		smb="$(sed -n 's/.*listening on tcp \([0-9.:]*\).*/\1/p' "$tmpdir3/server.log" | head -1)"
		http="$(sed -n 's#.*SMB metrics on http://\([0-9.:]*\)/metrics.*#\1#p' "$tmpdir3/server.log" | head -1)"
		[ -n "$smb" ] && [ -n "$http" ] && break
		sleep 0.1
	done
	if [ -z "$smb" ] || [ -z "$http" ]; then
		echo "obs smoke: smbserver never reported tcp + http addresses" >&2
		cat "$tmpdir3/server.log" >&2
		kill "$server_pid" 2>/dev/null || true
		return 1
	fi

	for r in 0 1; do
		"$tmpdir3/shmtrain" -rank "$r" -world 2 -smb "$smb" -job obsdrill \
			-epochs 150 -smb-timeout 5s -liveness-timeout 10s \
			-telemetry 127.0.0.1:0 -telemetry-linger 15s \
			>"$tmpdir3/w$r.log" 2>&1 &
		eval "w${r}_pid=\$!"
	done

	# Wait for both workers to finish training; their telemetry servers stay
	# up through the linger window, which is when shmtop scrapes.
	done_workers=""
	for _ in $(seq 1 600); do
		if grep -q 'worker 0 finished' "$tmpdir3/w0.log" &&
			grep -q 'worker 1 finished' "$tmpdir3/w1.log"; then
			done_workers=1
			break
		fi
		sleep 0.1
	done
	if [ -z "$done_workers" ]; then
		echo "obs smoke: workers never finished" >&2
		tail -n 5 "$tmpdir3/w0.log" "$tmpdir3/w1.log" "$tmpdir3/server.log" >&2
		kill "$w0_pid" "$w1_pid" "$server_pid" 2>/dev/null || true
		return 1
	fi

	w0url="$(sed -n 's#.*telemetry listening on http://\([^ ]*\).*#\1#p' "$tmpdir3/w0.log" | head -1)"
	w1url="$(sed -n 's#.*telemetry listening on http://\([^ ]*\).*#\1#p' "$tmpdir3/w1.log" | head -1)"
	if [ -z "$w0url" ] || [ -z "$w1url" ]; then
		echo "obs smoke: workers never reported telemetry URLs" >&2
		kill "$w0_pid" "$w1_pid" "$server_pid" 2>/dev/null || true
		return 1
	fi

	"$tmpdir3/shmtop" -nodes "server=$http,worker0=$w0url,worker1=$w1url" \
		-snapshot "$tmpdir3/fleet.json" -trace-out "$tmpdir3/fleet-trace.json" \
		>"$tmpdir3/shmtop.log" 2>&1 || {
		echo "obs smoke: shmtop failed" >&2
		cat "$tmpdir3/shmtop.log" >&2
		kill "$w0_pid" "$w1_pid" "$server_pid" 2>/dev/null || true
		return 1
	}

	wait "$w0_pid" "$w1_pid" || true
	kill "$server_pid" 2>/dev/null || true
	wait "$server_pid" 2>/dev/null || true

	# (a) The merged trace must contain at least one cross-process span chain.
	chains="$(sed -n 's/.*"cross_node_chains": \([0-9]*\).*/\1/p' "$tmpdir3/fleet.json" | head -1)"
	if [ -z "$chains" ] || [ "$chains" -lt 1 ]; then
		echo "obs smoke: merged trace has no cross-node span chains (got '${chains:-none}')" >&2
		cat "$tmpdir3/fleet.json" >&2
		return 1
	fi
	# The merged trace file must load as a trace and name both sides.
	grep -q '"worker0"' "$tmpdir3/fleet-trace.json" || {
		echo "obs smoke: merged trace missing worker0 process" >&2
		return 1
	}
	grep -q '"server"' "$tmpdir3/fleet-trace.json" || {
		echo "obs smoke: merged trace missing server process" >&2
		return 1
	}

	# (b) The chaos crash dumped a readable flight record with the injected
	# faults and the crash marker (smbserver wrote it under TMPDIR).
	dump="$(sed -n 's/.*flight recorder dumps to \([^ ]*\) on crash.*/\1/p' "$tmpdir3/server.log" | head -1)"
	if [ -z "$dump" ] || [ ! -r "$dump" ]; then
		echo "obs smoke: chaos crash left no readable dump at '${dump:-?}'" >&2
		cat "$tmpdir3/server.log" >&2
		return 1
	fi
	grep -q 'chaos_crash' "$dump" || {
		echo "obs smoke: dump missing the chaos_crash event" >&2
		cat "$dump" >&2
		return 1
	}
	grep -q 'fault_injected' "$dump" || {
		echo "obs smoke: dump missing injected-fault events" >&2
		cat "$dump" >&2
		return 1
	}
	echo "obs smoke: OK ($chains cross-node span chains; crash dump: $(grep -c 'fault_injected' "$dump") injected faults)"
}

# shm_smoke is ISSUE 9's acceptance drill for the zero-copy transport.
# Part (a): an shm-enabled server with two co-located -smb-transport auto
# workers — both must negotiate the mapped path and /metrics must report the
# passed segment fds. Part (b): three 1-worker runs of the same seed against
# fresh servers — auto (maps shm), forced tcp (clean fallback while shm is
# offered), and tcp_sg — must print bitwise-identical final Wg hashes
# (-no-overlap removes the one scheduling race so the comparison is exact).
shm_smoke() {
	tmpdir4="$(mktemp -d)"
	trap 'clean_smoke' EXIT
	go build -o "$tmpdir4/smbserver" ./cmd/smbserver
	go build -o "$tmpdir4/shmtrain" ./cmd/shmtrain

	# start_shm_server <dir-suffix>: launches a fresh shm-enabled server and
	# sets smb= (tcp addr), http= (metrics addr), server_pid=.
	start_shm_server() {
		"$tmpdir4/smbserver" -addr 127.0.0.1:0 -http 127.0.0.1:0 -stats 0 \
			-shm "$tmpdir4/smb$1.sock" >"$tmpdir4/server$1.log" 2>&1 &
		server_pid=$!
		smb="" http=""
		for _ in $(seq 1 100); do
			smb="$(sed -n 's/.*listening on tcp \([0-9.:]*\).*/\1/p' "$tmpdir4/server$1.log" | head -1)"
			http="$(sed -n 's#.*SMB metrics on http://\([0-9.:]*\)/metrics.*#\1#p' "$tmpdir4/server$1.log" | head -1)"
			[ -n "$smb" ] && [ -n "$http" ] && break
			sleep 0.1
		done
		if [ -z "$smb" ] || [ -z "$http" ]; then
			echo "shm smoke: smbserver never reported tcp + http addresses" >&2
			cat "$tmpdir4/server$1.log" >&2
			kill "$server_pid" 2>/dev/null || true
			return 1
		fi
	}

	# (a) Co-located 2-worker run: both auto-negotiate shm.
	start_shm_server a || return 1
	for r in 0 1; do
		"$tmpdir4/shmtrain" -rank "$r" -world 2 -smb "$smb" -job shmdrill \
			-epochs 40 -per-class 40 -smb-transport auto -smb-timeout 5s \
			>"$tmpdir4/w$r.log" 2>&1 &
		eval "w${r}_pid=\$!"
	done
	fail=""
	wait "$w0_pid" || fail="worker 0 exited nonzero"
	wait "$w1_pid" || fail="worker 1 exited nonzero"
	if [ -n "$fail" ]; then
		echo "shm smoke: $fail" >&2
		tail -n 5 "$tmpdir4/w0.log" "$tmpdir4/w1.log" "$tmpdir4/servera.log" >&2
		kill "$server_pid" 2>/dev/null || true
		return 1
	fi
	for r in 0 1; do
		if ! grep -q '(shm, auto-negotiated)' "$tmpdir4/w$r.log"; then
			echo "shm smoke: worker $r did not negotiate the shm transport" >&2
			cat "$tmpdir4/w$r.log" >&2
			kill "$server_pid" 2>/dev/null || true
			return 1
		fi
	done
	# The server's metrics must show segment fds crossing to mapping clients.
	curl -fsS "http://$http/metrics" >"$tmpdir4/metrics.txt" 2>/dev/null || {
		echo "shm smoke: /metrics scrape failed" >&2
		kill "$server_pid" 2>/dev/null || true
		return 1
	}
	fd_passed="$(sed -n 's/^smb_shm_fd_passed_total \([0-9]*\).*/\1/p' "$tmpdir4/metrics.txt" | head -1)"
	if [ -z "$fd_passed" ] || [ "$fd_passed" -lt 1 ]; then
		echo "shm smoke: smb_shm_fd_passed_total = '${fd_passed:-missing}', want >= 1" >&2
		grep 'smb_shm' "$tmpdir4/metrics.txt" >&2 || true
		kill "$server_pid" 2>/dev/null || true
		return 1
	fi
	grep -q 'smb_server_connections{transport="shm"}' "$tmpdir4/metrics.txt" || {
		echo "shm smoke: /metrics missing the transport-labeled connection gauge" >&2
		kill "$server_pid" 2>/dev/null || true
		return 1
	}
	kill "$server_pid" 2>/dev/null || true
	wait "$server_pid" 2>/dev/null || true

	# (b) Bitwise cross-transport determinism: same seed, fresh server per
	# run (reusing one server would trip the exactly-once dedup table, which
	# silently drops a new run's replayed sequence numbers).
	sha=""
	for t in auto tcp tcp_sg; do
		start_shm_server "$t" || return 1
		"$tmpdir4/shmtrain" -rank 0 -world 1 -smb "$smb" -job detdrill \
			-epochs 10 -per-class 40 -smb-transport "$t" -no-overlap \
			>"$tmpdir4/det-$t.log" 2>&1 || {
			echo "shm smoke: deterministic $t run failed" >&2
			cat "$tmpdir4/det-$t.log" >&2
			kill "$server_pid" 2>/dev/null || true
			return 1
		}
		kill "$server_pid" 2>/dev/null || true
		wait "$server_pid" 2>/dev/null || true
		h="$(sed -n 's/^Wg sha256: \([0-9a-f]*\)$/\1/p' "$tmpdir4/det-$t.log" | head -1)"
		if [ -z "$h" ]; then
			echo "shm smoke: $t run printed no Wg hash" >&2
			cat "$tmpdir4/det-$t.log" >&2
			return 1
		fi
		if [ "$t" = auto ] && ! grep -q '(shm, auto-negotiated)' "$tmpdir4/det-auto.log"; then
			echo "shm smoke: deterministic auto run did not negotiate shm" >&2
			cat "$tmpdir4/det-auto.log" >&2
			return 1
		fi
		if [ -z "$sha" ]; then
			sha="$h"
		elif [ "$h" != "$sha" ]; then
			echo "shm smoke: $t final Wg $h != shm run's $sha (transports diverged)" >&2
			return 1
		fi
	done
	echo "shm smoke: OK (2 workers mapped, $fd_passed fds passed; Wg $sha identical on shm/tcp/tcp_sg)"
}

# serve_smoke is ISSUE 10's acceptance drill for serve-from-live-buffer: an
# smbserver with metrics up, one shmtrain worker continuously accumulating
# into its Wg, and the shmserve frontend refreshing that Wg via snapshots
# while the built-in load generator hammers /infer. Proves (a) the frontend
# serves real inferences off consistent cuts while the segment is being
# stormed (latency histogram + fresh snapshot-age gauge), and (b) no
# snapshot read ever exhausted its seqlock retries and fell through
# inconsistently (smb_snap_retries_exhausted_total stays 0 server-side).
serve_smoke() {
	tmpdir5="$(mktemp -d)"
	trap 'clean_smoke' EXIT
	go build -o "$tmpdir5/smbserver" ./cmd/smbserver
	go build -o "$tmpdir5/shmtrain" ./cmd/shmtrain
	go build -o "$tmpdir5/shmserve" ./cmd/shmserve

	"$tmpdir5/smbserver" -addr 127.0.0.1:0 -http 127.0.0.1:0 -stats 0 \
		>"$tmpdir5/server.log" 2>&1 &
	server_pid=$!
	smb="" http=""
	for _ in $(seq 1 100); do
		smb="$(sed -n 's/.*listening on tcp \([0-9.:]*\).*/\1/p' "$tmpdir5/server.log" | head -1)"
		http="$(sed -n 's#.*SMB metrics on http://\([0-9.:]*\)/metrics.*#\1#p' "$tmpdir5/server.log" | head -1)"
		[ -n "$smb" ] && [ -n "$http" ] && break
		sleep 0.1
	done
	if [ -z "$smb" ] || [ -z "$http" ]; then
		echo "serve smoke: smbserver never reported tcp + http addresses" >&2
		cat "$tmpdir5/server.log" >&2
		kill "$server_pid" 2>/dev/null || true
		return 1
	fi

	# The trainer storms Wg with accumulates for the whole drill.
	"$tmpdir5/shmtrain" -rank 0 -world 1 -smb "$smb" -job servedrill \
		-epochs 3000 -per-class 40 -smb-timeout 5s \
		>"$tmpdir5/train.log" 2>&1 &
	train_pid=$!

	"$tmpdir5/shmserve" -addr "$smb" -transport tcp -job servedrill \
		-listen 127.0.0.1:0 -refresh 100ms >"$tmpdir5/serve.log" 2>&1 &
	serve_pid=$!
	url=""
	for _ in $(seq 1 150); do
		url="$(sed -n 's#.*listening on http://\([0-9.:]*\).*#\1#p' "$tmpdir5/serve.log" | head -1)"
		[ -n "$url" ] && break
		sleep 0.1
	done
	if [ -z "$url" ]; then
		echo "serve smoke: shmserve never reported its listen address" >&2
		cat "$tmpdir5/serve.log" >&2
		kill "$serve_pid" "$train_pid" "$server_pid" 2>/dev/null || true
		return 1
	fi

	"$tmpdir5/shmserve" -loadgen "http://$url" -concurrency 4 -duration 3s \
		>"$tmpdir5/loadgen.log" 2>&1 || {
		echo "serve smoke: load generator failed" >&2
		cat "$tmpdir5/loadgen.log" "$tmpdir5/serve.log" >&2
		kill "$serve_pid" "$train_pid" "$server_pid" 2>/dev/null || true
		return 1
	}

	# (a) Frontend metrics: inferences actually flowed through the batcher
	# and the served snapshot is fresh (age below ~10 refresh intervals).
	curl -fsS "http://$url/metrics" >"$tmpdir5/serve-metrics.txt" 2>/dev/null || {
		echo "serve smoke: frontend /metrics scrape failed" >&2
		kill "$serve_pid" "$train_pid" "$server_pid" 2>/dev/null || true
		return 1
	}
	infers="$(sed -n 's/^shmserve_infer_seconds_count \([0-9]*\).*/\1/p' "$tmpdir5/serve-metrics.txt" | head -1)"
	if [ -z "$infers" ] || [ "$infers" -lt 100 ]; then
		echo "serve smoke: shmserve_infer_seconds_count = '${infers:-missing}', want >= 100" >&2
		cat "$tmpdir5/loadgen.log" >&2
		kill "$serve_pid" "$train_pid" "$server_pid" 2>/dev/null || true
		return 1
	fi
	grep -q '^shmserve_batch_size_count' "$tmpdir5/serve-metrics.txt" || {
		echo "serve smoke: frontend /metrics missing the batch-size histogram" >&2
		kill "$serve_pid" "$train_pid" "$server_pid" 2>/dev/null || true
		return 1
	}
	age="$(sed -n 's/^shmserve_snapshot_age_seconds \([0-9.e+-]*\).*/\1/p' "$tmpdir5/serve-metrics.txt" | head -1)"
	if [ -z "$age" ] || ! awk "BEGIN{exit !($age >= 0 && $age < 1.0)}"; then
		echo "serve smoke: snapshot age gauge '$age' not in [0, 1.0) — refresh loop stalled?" >&2
		cat "$tmpdir5/serve.log" >&2
		kill "$serve_pid" "$train_pid" "$server_pid" 2>/dev/null || true
		return 1
	fi

	# (b) Server-side snapshot counters: cuts were taken and served, and no
	# snapshot read ever exhausted its retries (the consistency SLO).
	curl -fsS "http://$http/metrics" >"$tmpdir5/smb-metrics.txt" 2>/dev/null || {
		echo "serve smoke: server /metrics scrape failed" >&2
		kill "$serve_pid" "$train_pid" "$server_pid" 2>/dev/null || true
		return 1
	}
	kill "$serve_pid" "$train_pid" "$server_pid" 2>/dev/null || true
	wait "$serve_pid" "$train_pid" "$server_pid" 2>/dev/null || true
	snaps="$(sed -n 's/^smb_snapshots_total \([0-9]*\).*/\1/p' "$tmpdir5/smb-metrics.txt" | head -1)"
	if [ -z "$snaps" ] || [ "$snaps" -lt 2 ]; then
		echo "serve smoke: smb_snapshots_total = '${snaps:-missing}', want >= 2" >&2
		grep 'smb_snap' "$tmpdir5/smb-metrics.txt" >&2 || true
		return 1
	fi
	exhausted="$(sed -n 's/^smb_snap_retries_exhausted_total \([0-9]*\).*/\1/p' "$tmpdir5/smb-metrics.txt" | head -1)"
	if [ "${exhausted:-missing}" != "0" ]; then
		echo "serve smoke: smb_snap_retries_exhausted_total = '${exhausted:-missing}', want 0" >&2
		grep 'smb_snap' "$tmpdir5/smb-metrics.txt" >&2 || true
		return 1
	fi
	echo "serve smoke: OK ($infers inferences off $snaps snapshots, age ${age}s, 0 exhausted retries; $(cat "$tmpdir5/loadgen.log"))"
}

case "$tier" in
tier1) tier1 ;;
tier2) tier2 ;;
all)
	tier1
	tier2
	;;
*)
	echo "usage: $0 [tier1|tier2|all]" >&2
	exit 2
	;;
esac

echo "check.sh: OK ($tier)"
