#!/bin/sh
# check.sh — the repo's verification gate, in two tiers.
#
#   Tier 1 (correctness): build + full test suite. Must always pass;
#   CI and the growth driver treat a tier-1 failure as a broken tree.
#
#   Tier 2 (analysis): go vet, the project-specific shmlint analyzers,
#   the -race stress suite over the concurrency core, and a short
#   deterministic smoke run of every fuzz target (replays testdata/fuzz
#   corpora plus 100 fresh execs each).
#
# Usage: scripts/check.sh [tier1|tier2|all]   (default: all)
set -eu

cd "$(dirname "$0")/.."

tier="${1:-all}"

tier1() {
	echo "== tier 1: build =="
	go build ./...
	echo "== tier 1: tests =="
	go test ./...
}

tier2() {
	echo "== tier 2: go vet =="
	go vet ./...
	echo "== tier 2: shmlint =="
	go run ./cmd/shmlint ./...
	echo "== tier 2: race stress (smb, ps, core, rds) =="
	go test -race ./internal/smb ./internal/ps ./internal/core ./internal/rds
	echo "== tier 2: fuzz smoke (100 execs per target) =="
	# go test accepts exactly one -fuzz pattern per invocation.
	for target in FuzzDispatch FuzzFrameRoundTrip FuzzReadFrame; do
		go test -run='^$' -fuzz="^${target}\$" -fuzztime=100x ./internal/smb
	done
	for target in FuzzParseNetSpec FuzzLoadCheckpoint; do
		go test -run='^$' -fuzz="^${target}\$" -fuzztime=100x ./internal/nn
	done
	echo "== tier 2: bench smoke (1 iteration per benchmark) =="
	go test -run='^$' -bench=. -benchtime=1x -benchmem \
		./internal/parallel ./internal/tensor ./internal/smb
	echo "== tier 2: allocation regression guard =="
	# Pins the zero-alloc contract of the SMB hot path (Store and
	# StreamClient Read/Write/Accumulate, pooled wire scratch).
	go test -run='TestSteadyStateZeroAlloc|TestReadInt64Slots' -count=1 ./internal/smb
}

case "$tier" in
tier1) tier1 ;;
tier2) tier2 ;;
all)
	tier1
	tier2
	;;
*)
	echo "usage: $0 [tier1|tier2|all]" >&2
	exit 2
	;;
esac

echo "check.sh: OK ($tier)"
